//! The indexed slot pool: the [`SlotTable`] state machine plus
//! incrementally maintained indexes, so the scheduler hot path never
//! rescans the whole cluster.
//!
//! [`SlotPool`] keeps, updated at every state transition:
//!
//! * the set of **free** slots (globally, per node and per rack) — O(log n)
//!   membership updates, O(result) enumeration for candidate ranking,
//! * the set of **reserved** slots, globally and **per job** — O(result)
//!   `reserved_for`, `release_job_reservations` and stale-reservation
//!   cleanup,
//! * per-job **running counts** — O(log n) `running_for`,
//! * a **deadline index** over bounded reservations — O(log n)
//!   `next_deadline` and O(expired · log n) `expire_reservations`,
//! * the `(free, running, reserved)` **counts** — O(1) `counts()`.
//!
//! The unindexed [`SlotTable`] survives as the naive reference
//! implementation; a property test drives both through identical operation
//! sequences and asserts they agree (see `proptests` below).
//!
//! [`SlotTable`]: crate::slot::SlotTable

use std::collections::{BTreeMap, BTreeSet};

use ssr_dag::{JobId, Priority, TaskId};
use ssr_simcore::SimTime;

use crate::slot::{ClusterError, Reservation, SlotState};
use crate::topology::{ClusterSpec, NodeId, RackId, SlotId};

/// The state of every slot in the cluster with checked transitions and
/// incrementally maintained indexes (free/reserved/running sets, per-node
/// and per-rack free lists, per-job reservation sets, a reservation
/// deadline index and O(1) state counts).
///
/// Drop-in replacement for [`SlotTable`](crate::slot::SlotTable) where the
/// caller also needs fast queries: the transition API (`assign`, `finish`,
/// `reserve`, `release`, `expire_reservations`,
/// `release_job_reservations`) behaves identically, and every enumeration
/// (`free_slots`, `reserved_for`, expiry results) yields slots in the same
/// ascending-id order the naive scan produced.
///
/// # Example
///
/// ```
/// use ssr_cluster::{ClusterSpec, SlotPool, Reservation};
/// use ssr_dag::{JobId, Priority, StageId, TaskId};
///
/// let spec = ClusterSpec::new(2, 2)?;
/// let mut pool = SlotPool::new(&spec);
/// assert_eq!(pool.counts(), (4, 0, 0));
///
/// let slot = pool.free_slots().next().expect("all free initially");
/// pool.assign(slot, TaskId::new(JobId::new(1), StageId::new(0), 0))?;
/// assert_eq!(pool.counts(), (3, 1, 0));
/// assert_eq!(pool.running_for(JobId::new(1)), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SlotPool {
    states: Vec<SlotState>,
    sizes: Vec<u32>,
    /// `slot -> node` (dense), avoiding per-query arithmetic in hot loops.
    node_of: Vec<NodeId>,
    /// `slot -> rack` (dense).
    rack_of: Vec<RackId>,
    /// `true` when every slot has the same size (the common homogeneous
    /// case): demand filters reduce to a single comparison.
    uniform_size: bool,
    free: BTreeSet<SlotId>,
    free_by_node: Vec<BTreeSet<SlotId>>,
    free_by_rack: Vec<BTreeSet<SlotId>>,
    reserved: BTreeSet<SlotId>,
    reserved_by_job: BTreeMap<JobId, BTreeSet<SlotId>>,
    /// Reserved-slot count per `(owner, priority)` group — the unit at
    /// which priority-based ApprovalLogic verdicts are uniform, letting
    /// the scheduler approve once per group instead of once per slot.
    reserved_groups: BTreeMap<(JobId, Priority), usize>,
    running_by_job: BTreeMap<JobId, usize>,
    /// `(deadline, slot)` for every reservation with a bounded deadline.
    deadlines: BTreeSet<(SimTime, SlotId)>,
    running_count: usize,
    /// Slots currently out of service (crashed node, revoked slot,
    /// partitioned executor). Orthogonal to [`SlotState`]: an offline slot
    /// may still be `Running` (network partition — the task survives), but
    /// it never appears in the free indexes, so it receives no offers or
    /// pre-reservation fills until [`SlotPool::bring_online`].
    offline: Vec<bool>,
}

impl SlotPool {
    /// Creates a pool with every slot free, recording each slot's size and
    /// topology position from the cluster spec.
    pub fn new(spec: &ClusterSpec) -> Self {
        let total = spec.total_slots() as usize;
        let sizes: Vec<u32> = spec.iter_slots().map(|s| spec.slot_size(s)).collect();
        let node_of: Vec<NodeId> = spec.iter_slots().map(|s| spec.node_of(s)).collect();
        let rack_of: Vec<RackId> =
            node_of.iter().map(|&n| spec.rack_of(n)).collect();
        let free: BTreeSet<SlotId> = spec.iter_slots().collect();
        let mut free_by_node = vec![BTreeSet::new(); spec.nodes() as usize];
        let mut free_by_rack = vec![BTreeSet::new(); spec.racks() as usize];
        for &slot in &free {
            free_by_node[node_of[slot.index()].as_u32() as usize].insert(slot);
            free_by_rack[rack_of[slot.index()].as_u32() as usize].insert(slot);
        }
        let uniform_size = sizes.windows(2).all(|w| w[0] == w[1]);
        SlotPool {
            states: vec![SlotState::Free; total],
            sizes,
            node_of,
            rack_of,
            uniform_size,
            free,
            free_by_node,
            free_by_rack,
            reserved: BTreeSet::new(),
            reserved_by_job: BTreeMap::new(),
            reserved_groups: BTreeMap::new(),
            running_by_job: BTreeMap::new(),
            deadlines: BTreeSet::new(),
            running_count: 0,
            offline: vec![false; total],
        }
    }

    // ------------------------------------------------------------------
    // Index maintenance
    // ------------------------------------------------------------------

    fn index_free(&mut self, slot: SlotId) {
        // Offline slots never enter the free indexes, no matter which
        // transition frees them (finish during a partition, release,
        // expiry); `bring_online` re-indexes them when the fault heals.
        if self.offline[slot.index()] {
            return;
        }
        self.free.insert(slot);
        self.free_by_node[self.node_of[slot.index()].as_u32() as usize].insert(slot);
        self.free_by_rack[self.rack_of[slot.index()].as_u32() as usize].insert(slot);
    }

    fn unindex_free(&mut self, slot: SlotId) {
        self.free.remove(&slot);
        self.free_by_node[self.node_of[slot.index()].as_u32() as usize].remove(&slot);
        self.free_by_rack[self.rack_of[slot.index()].as_u32() as usize].remove(&slot);
    }

    fn index_reservation(&mut self, slot: SlotId, r: &Reservation) {
        self.reserved.insert(slot);
        self.reserved_by_job.entry(r.job()).or_default().insert(slot);
        *self.reserved_groups.entry((r.job(), r.priority())).or_insert(0) += 1;
        if let Some(d) = r.deadline() {
            self.deadlines.insert((d, slot));
        }
    }

    fn unindex_group(&mut self, r: &Reservation) {
        let key = (r.job(), r.priority());
        if let Some(c) = self.reserved_groups.get_mut(&key) {
            *c -= 1;
            if *c == 0 {
                self.reserved_groups.remove(&key);
            }
        }
    }

    fn unindex_reservation(&mut self, slot: SlotId, r: &Reservation) {
        self.reserved.remove(&slot);
        if let Some(set) = self.reserved_by_job.get_mut(&r.job()) {
            set.remove(&slot);
            if set.is_empty() {
                self.reserved_by_job.remove(&r.job());
            }
        }
        self.unindex_group(r);
        if let Some(d) = r.deadline() {
            self.deadlines.remove(&(d, slot));
        }
    }

    /// Moves `slot` out of whatever non-running state it is in, dropping
    /// its index entries. Returns an error for running slots.
    fn unindex_current(&mut self, slot: SlotId) -> Result<(), ClusterError> {
        match self.states[slot.index()] {
            SlotState::Running(_) => Err(ClusterError::CannotReserveBusy { slot }),
            SlotState::Free => {
                self.unindex_free(slot);
                Ok(())
            }
            SlotState::Reserved(r) => {
                self.unindex_reservation(slot, &r);
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Transitions (same contract as SlotTable)
    // ------------------------------------------------------------------

    /// Assigns `task` to `slot`. The slot may be free or reserved (the
    /// caller is responsible for having applied the ApprovalLogic); a
    /// reservation is consumed by the assignment.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::SlotBusy`] if the slot is running a task.
    pub fn assign(&mut self, slot: SlotId, task: TaskId) -> Result<(), ClusterError> {
        if let SlotState::Running(occupant) = self.states[slot.index()] {
            return Err(ClusterError::SlotBusy { slot, occupant });
        }
        self.unindex_current(slot).expect("checked not running");
        self.states[slot.index()] = SlotState::Running(task);
        self.running_count += 1;
        *self.running_by_job.entry(task.job).or_insert(0) += 1;
        Ok(())
    }

    /// Completes the task on `slot`, freeing it, and returns the task.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::NotRunning`] if the slot holds no task.
    pub fn finish(&mut self, slot: SlotId) -> Result<TaskId, ClusterError> {
        let SlotState::Running(task) = self.states[slot.index()] else {
            return Err(ClusterError::NotRunning { slot });
        };
        self.states[slot.index()] = SlotState::Free;
        self.running_count -= 1;
        if let Some(c) = self.running_by_job.get_mut(&task.job) {
            *c -= 1;
            if *c == 0 {
                self.running_by_job.remove(&task.job);
            }
        }
        self.index_free(slot);
        Ok(task)
    }

    /// Reserves `slot`. Overwrites an existing reservation (e.g. a
    /// higher-priority job re-reserving, or a deadline refresh).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::CannotReserveBusy`] if the slot is running.
    pub fn reserve(&mut self, slot: SlotId, reservation: Reservation) -> Result<(), ClusterError> {
        self.unindex_current(slot)?;
        self.states[slot.index()] = SlotState::Reserved(reservation);
        self.index_reservation(slot, &reservation);
        Ok(())
    }

    /// Releases `slot` unconditionally (reservation cancelled or task
    /// cleanup); running slots are left untouched and reported as an error.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::CannotReserveBusy`] if the slot is running.
    pub fn release(&mut self, slot: SlotId) -> Result<(), ClusterError> {
        self.unindex_current(slot)?;
        self.states[slot.index()] = SlotState::Free;
        self.index_free(slot);
        Ok(())
    }

    /// Frees every reservation whose deadline has passed at `now` and
    /// returns the freed slots in ascending id order (§IV-B: "beyond the
    /// deadline the reservation is expired, and the slot becomes free to
    /// use by other jobs").
    pub fn expire_reservations(&mut self, now: SimTime) -> Vec<SlotId> {
        self.expire_reservations_with(now, |_, _| {})
    }

    /// [`expire_reservations`](SlotPool::expire_reservations), additionally
    /// invoking `on_expire(slot, reservation)` for each lapsed reservation
    /// just before it is freed — the only point at which the owning job of
    /// an expired reservation is still known (used by decision tracing).
    /// Callbacks fire in deadline order; the returned vector is in
    /// ascending slot-id order as before.
    pub fn expire_reservations_with(
        &mut self,
        now: SimTime,
        mut on_expire: impl FnMut(SlotId, &Reservation),
    ) -> Vec<SlotId> {
        let mut expired: Vec<SlotId> = Vec::new();
        // `expired_at` is `deadline <= now`, so everything up to and
        // including (now, SlotId::MAX) has lapsed.
        while let Some(&(deadline, slot)) = self.deadlines.first() {
            if deadline > now {
                break;
            }
            let r = *self.states[slot.index()]
                .reservation()
                .expect("deadline index entries are reserved slots");
            on_expire(slot, &r);
            self.unindex_reservation(slot, &r);
            self.states[slot.index()] = SlotState::Free;
            self.index_free(slot);
            expired.push(slot);
        }
        // The deadline index yields (time, slot) order; the naive scan
        // yielded ascending slot ids.
        expired.sort_unstable();
        expired
    }

    /// Releases every reservation held by `job` (e.g. on job completion)
    /// and returns the freed slots in ascending id order.
    pub fn release_job_reservations(&mut self, job: JobId) -> Vec<SlotId> {
        let Some(set) = self.reserved_by_job.remove(&job) else { return Vec::new() };
        let freed: Vec<SlotId> = set.into_iter().collect();
        for &slot in &freed {
            let r = *self.states[slot.index()]
                .reservation()
                .expect("per-job index entries are reserved slots");
            self.reserved.remove(&slot);
            self.unindex_group(&r);
            if let Some(d) = r.deadline() {
                self.deadlines.remove(&(d, slot));
            }
            self.states[slot.index()] = SlotState::Free;
            self.index_free(slot);
        }
        freed
    }

    /// Takes `slot` out of service (fault injection). Idempotent.
    ///
    /// A free slot leaves the free indexes; a reserved slot's reservation
    /// is forcibly dropped (returned so the caller can trace the
    /// revocation); a running slot keeps its task — the caller decides
    /// whether the fault kills it (`finish` first) or lets it survive a
    /// partition (the slot then frees without re-entering the indexes).
    pub fn take_offline(&mut self, slot: SlotId) -> Option<Reservation> {
        if self.offline[slot.index()] {
            return None;
        }
        self.offline[slot.index()] = true;
        match self.states[slot.index()] {
            SlotState::Running(_) => None,
            SlotState::Free => {
                self.unindex_free(slot);
                None
            }
            SlotState::Reserved(r) => {
                self.unindex_reservation(slot, &r);
                self.states[slot.index()] = SlotState::Free;
                Some(r)
            }
        }
    }

    /// Returns `slot` to service after a fault heals. Idempotent; returns
    /// `true` when the slot was actually offline. A freed slot rejoins the
    /// free indexes immediately; a still-running slot (partition survivor)
    /// rejoins when its task finishes.
    pub fn bring_online(&mut self, slot: SlotId) -> bool {
        if !self.offline[slot.index()] {
            return false;
        }
        self.offline[slot.index()] = false;
        if matches!(self.states[slot.index()], SlotState::Free) {
            self.index_free(slot);
        }
        true
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// `true` when `slot` is out of service.
    pub fn is_offline(&self, slot: SlotId) -> bool {
        self.offline[slot.index()]
    }

    /// Number of slots currently out of service — O(slots).
    pub fn offline_count(&self) -> usize {
        self.offline.iter().filter(|&&o| o).count()
    }

    /// The resource size of `slot` (§III-C heterogeneous clusters; 1 in a
    /// homogeneous one).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn size(&self, slot: SlotId) -> u32 {
        self.sizes[slot.index()]
    }

    /// `true` when every slot has the same size: a demand of at most that
    /// size fits everywhere and per-slot size filters can be skipped.
    pub fn uniform_size(&self) -> bool {
        self.uniform_size
    }

    /// The machine hosting `slot` (precomputed).
    pub fn node_of(&self, slot: SlotId) -> NodeId {
        self.node_of[slot.index()]
    }

    /// The rack containing `slot`'s machine (precomputed).
    pub fn rack_of(&self, slot: SlotId) -> RackId {
        self.rack_of[slot.index()]
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` if the cluster has no slots (never true for a validated
    /// [`ClusterSpec`]).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The state of `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn get(&self, slot: SlotId) -> &SlotState {
        &self.states[slot.index()]
    }

    /// Iterator over free slots in ascending id order — O(result).
    pub fn free_slots(&self) -> impl Iterator<Item = SlotId> + '_ {
        self.free.iter().copied()
    }

    /// Free slots hosted by `node`, ascending — O(result).
    pub fn free_on_node(&self, node: NodeId) -> impl Iterator<Item = SlotId> + '_ {
        self.free_by_node[node.as_u32() as usize].iter().copied()
    }

    /// Free slots in `rack`, ascending — O(result).
    pub fn free_in_rack(&self, rack: RackId) -> impl Iterator<Item = SlotId> + '_ {
        self.free_by_rack[rack.as_u32() as usize].iter().copied()
    }

    /// Iterator over all reserved slots in ascending id order — O(result).
    pub fn reserved_slots(&self) -> impl Iterator<Item = SlotId> + '_ {
        self.reserved.iter().copied()
    }

    /// Iterator over slots reserved for `job`, ascending — O(result).
    pub fn reserved_for(&self, job: JobId) -> impl Iterator<Item = SlotId> + '_ {
        self.reserved_by_job.get(&job).into_iter().flatten().copied()
    }

    /// The jobs currently holding reservations, with their slot sets, in
    /// job-id order.
    pub fn reservations_by_job(
        &self,
    ) -> impl Iterator<Item = (JobId, &BTreeSet<SlotId>)> + '_ {
        self.reserved_by_job.iter().map(|(j, s)| (*j, s))
    }

    /// The distinct `(owner, priority)` reservation groups currently held,
    /// with their slot counts, in `(job, priority)` order — O(result).
    /// Priority-based ApprovalLogic verdicts are uniform within a group.
    pub fn reservation_groups(
        &self,
    ) -> impl Iterator<Item = (JobId, Priority, usize)> + '_ {
        self.reserved_groups.iter().map(|(&(j, p), &c)| (j, p, c))
    }

    /// `true` if `job` currently holds at least one reservation —
    /// O(log jobs).
    pub fn has_reservations(&self, job: JobId) -> bool {
        self.reserved_by_job.contains_key(&job)
    }

    /// Iterator over `(slot, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &SlotState)> + '_ {
        self.states.iter().enumerate().map(|(i, s)| (SlotId::new(i as u32), s))
    }

    /// Counts of (free, running, reserved) slots — O(1).
    pub fn counts(&self) -> (usize, usize, usize) {
        (self.free.len(), self.running_count, self.reserved.len())
    }

    /// Number of slots currently running tasks of `job` — O(log jobs).
    pub fn running_for(&self, job: JobId) -> usize {
        self.running_by_job.get(&job).copied().unwrap_or(0)
    }

    /// The earliest pending reservation deadline — O(1).
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.deadlines.first().map(|&(d, _)| d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_dag::{Priority, StageId};

    fn pool(nodes: u32, slots: u32) -> SlotPool {
        SlotPool::new(&ClusterSpec::new(nodes, slots).unwrap())
    }

    fn task(job: u64, part: u32) -> TaskId {
        TaskId::new(JobId::new(job), StageId::new(0), part)
    }

    #[test]
    fn fresh_pool_is_all_free_with_indexes() {
        let p = pool(2, 3);
        assert_eq!(p.len(), 6);
        assert!(!p.is_empty());
        assert_eq!(p.counts(), (6, 0, 0));
        assert_eq!(p.free_slots().count(), 6);
        assert_eq!(p.free_on_node(NodeId::new(0)).count(), 3);
        assert_eq!(p.free_in_rack(RackId::new(0)).count(), 6);
        assert!(p.uniform_size());
        assert_eq!(p.next_deadline(), None);
    }

    #[test]
    fn assign_finish_maintains_indexes() {
        let mut p = pool(2, 2);
        let s = SlotId::new(1);
        p.assign(s, task(1, 0)).unwrap();
        assert_eq!(p.counts(), (3, 1, 0));
        assert_eq!(p.running_for(JobId::new(1)), 1);
        assert!(!p.free_slots().any(|f| f == s));
        assert!(!p.free_on_node(NodeId::new(0)).any(|f| f == s));
        assert_eq!(p.finish(s).unwrap(), task(1, 0));
        assert_eq!(p.counts(), (4, 0, 0));
        assert_eq!(p.running_for(JobId::new(1)), 0);
        assert!(p.free_on_node(NodeId::new(0)).any(|f| f == s));
    }

    #[test]
    fn transition_errors_match_the_reference_table() {
        let mut p = pool(1, 1);
        let s = SlotId::new(0);
        assert_eq!(p.finish(s), Err(ClusterError::NotRunning { slot: s }));
        p.assign(s, task(1, 0)).unwrap();
        assert_eq!(
            p.assign(s, task(2, 0)),
            Err(ClusterError::SlotBusy { slot: s, occupant: task(1, 0) })
        );
        assert_eq!(
            p.reserve(s, Reservation::new(JobId::new(2), Priority::default())),
            Err(ClusterError::CannotReserveBusy { slot: s })
        );
        assert_eq!(p.release(s), Err(ClusterError::CannotReserveBusy { slot: s }));
    }

    #[test]
    fn reserve_overwrite_moves_job_and_deadline_index() {
        let mut p = pool(1, 2);
        let s = SlotId::new(0);
        let r1 = Reservation::new(JobId::new(1), Priority::new(1))
            .with_deadline(SimTime::from_secs(10));
        p.reserve(s, r1).unwrap();
        assert_eq!(p.reserved_for(JobId::new(1)).count(), 1);
        assert_eq!(p.next_deadline(), Some(SimTime::from_secs(10)));
        // Overwrite by another job with a later deadline: the old entries
        // must vanish from both the per-job and the deadline index.
        let r2 = Reservation::new(JobId::new(2), Priority::new(9))
            .with_deadline(SimTime::from_secs(20));
        p.reserve(s, r2).unwrap();
        assert_eq!(p.reserved_for(JobId::new(1)).count(), 0);
        assert_eq!(p.reserved_for(JobId::new(2)).count(), 1);
        assert_eq!(p.next_deadline(), Some(SimTime::from_secs(20)));
        assert!(p.expire_reservations(SimTime::from_secs(10)).is_empty());
        assert_eq!(p.expire_reservations(SimTime::from_secs(20)), vec![s]);
        assert_eq!(p.counts(), (2, 0, 0));
        assert_eq!(p.next_deadline(), None);
    }

    #[test]
    fn assignment_consumes_reservation_indexes() {
        let mut p = pool(1, 2);
        let s = SlotId::new(1);
        let r = Reservation::new(JobId::new(3), Priority::new(5))
            .with_deadline(SimTime::from_secs(7));
        p.reserve(s, r).unwrap();
        p.assign(s, task(3, 0)).unwrap();
        assert_eq!(p.reserved_for(JobId::new(3)).count(), 0);
        assert_eq!(p.next_deadline(), None);
        assert_eq!(p.counts(), (1, 1, 0));
    }

    #[test]
    fn release_job_reservations_returns_ascending() {
        let mut p = pool(1, 4);
        for i in [3u32, 0, 2] {
            p.reserve(SlotId::new(i), Reservation::new(JobId::new(1), Priority::default()))
                .unwrap();
        }
        p.reserve(SlotId::new(1), Reservation::new(JobId::new(2), Priority::default()))
            .unwrap();
        let freed = p.release_job_reservations(JobId::new(1));
        assert_eq!(freed, vec![SlotId::new(0), SlotId::new(2), SlotId::new(3)]);
        assert_eq!(p.counts(), (3, 0, 1));
        assert!(p.release_job_reservations(JobId::new(9)).is_empty());
    }

    #[test]
    fn expiry_returns_ascending_slot_order() {
        let mut p = pool(1, 3);
        // Deliberately reversed: later deadline on the smaller slot id.
        p.reserve(
            SlotId::new(0),
            Reservation::new(JobId::new(1), Priority::default())
                .with_deadline(SimTime::from_secs(9)),
        )
        .unwrap();
        p.reserve(
            SlotId::new(2),
            Reservation::new(JobId::new(1), Priority::default())
                .with_deadline(SimTime::from_secs(5)),
        )
        .unwrap();
        let expired = p.expire_reservations(SimTime::from_secs(9));
        assert_eq!(expired, vec![SlotId::new(0), SlotId::new(2)]);
    }

    #[test]
    fn reservation_groups_track_owner_priority_counts() {
        let mut p = pool(1, 4);
        let (j1, j2) = (JobId::new(1), JobId::new(2));
        p.reserve(SlotId::new(0), Reservation::new(j1, Priority::new(5))).unwrap();
        p.reserve(SlotId::new(1), Reservation::new(j1, Priority::new(5))).unwrap();
        p.reserve(SlotId::new(2), Reservation::new(j2, Priority::new(9))).unwrap();
        assert_eq!(
            p.reservation_groups().collect::<Vec<_>>(),
            vec![(j1, Priority::new(5), 2), (j2, Priority::new(9), 1)]
        );
        assert!(p.has_reservations(j1));
        assert!(!p.has_reservations(JobId::new(3)));
        // Consuming a reservation shrinks its group; the last member
        // removes the group entirely.
        p.assign(SlotId::new(0), task(1, 0)).unwrap();
        assert_eq!(
            p.reservation_groups().collect::<Vec<_>>(),
            vec![(j1, Priority::new(5), 1), (j2, Priority::new(9), 1)]
        );
        p.release_job_reservations(j1);
        assert!(!p.has_reservations(j1));
        assert_eq!(p.reservation_groups().collect::<Vec<_>>(), vec![(j2, Priority::new(9), 1)]);
    }

    #[test]
    fn offline_slots_leave_and_rejoin_the_free_indexes() {
        let mut p = pool(2, 2);
        let s = SlotId::new(1);
        // Free slot: vanishes from every index and from counts.
        assert_eq!(p.take_offline(s), None);
        assert!(p.is_offline(s));
        assert_eq!(p.offline_count(), 1);
        assert_eq!(p.counts(), (3, 0, 0));
        assert!(!p.free_slots().any(|f| f == s));
        assert!(!p.free_on_node(NodeId::new(0)).any(|f| f == s));
        // Idempotent.
        assert_eq!(p.take_offline(s), None);
        assert!(p.bring_online(s));
        assert!(!p.bring_online(s));
        assert_eq!(p.counts(), (4, 0, 0));
        assert!(p.free_on_node(NodeId::new(0)).any(|f| f == s));
    }

    #[test]
    fn offline_reserved_slot_returns_its_reservation() {
        let mut p = pool(1, 2);
        let s = SlotId::new(0);
        let r = Reservation::new(JobId::new(7), Priority::new(3))
            .with_deadline(SimTime::from_secs(10));
        p.reserve(s, r).unwrap();
        let revoked = p.take_offline(s).expect("reservation handed back");
        assert_eq!(revoked.job(), JobId::new(7));
        assert_eq!(p.counts(), (1, 0, 0));
        assert_eq!(p.next_deadline(), None);
        assert!(!p.has_reservations(JobId::new(7)));
        // Expiry at the old deadline is a no-op: the index entry is gone.
        assert!(p.expire_reservations(SimTime::from_secs(10)).is_empty());
    }

    #[test]
    fn offline_running_slot_survives_and_frees_out_of_service() {
        let mut p = pool(1, 2);
        let s = SlotId::new(0);
        p.assign(s, task(1, 0)).unwrap();
        // Partition: the task keeps running on the unreachable node.
        assert_eq!(p.take_offline(s), None);
        assert_eq!(p.counts(), (1, 1, 0));
        assert_eq!(p.running_for(JobId::new(1)), 1);
        // It finishes mid-partition: the slot frees but stays invisible.
        assert_eq!(p.finish(s).unwrap(), task(1, 0));
        assert_eq!(p.counts(), (1, 0, 0));
        assert!(!p.free_slots().any(|f| f == s));
        // Healing the partition restores it.
        assert!(p.bring_online(s));
        assert_eq!(p.counts(), (2, 0, 0));
    }

    #[test]
    fn heterogeneous_sizes_reported() {
        let spec = ClusterSpec::new(1, 4).unwrap().with_slot_sizing(1, 4, 4);
        let p = SlotPool::new(&spec);
        assert!(!p.uniform_size());
        assert_eq!(p.size(SlotId::new(0)), 4);
        assert_eq!(p.size(SlotId::new(1)), 1);
    }

    #[test]
    fn topology_lookups_match_spec() {
        let spec = ClusterSpec::with_racks(4, 2, 2).unwrap();
        let p = SlotPool::new(&spec);
        for slot in spec.iter_slots() {
            assert_eq!(p.node_of(slot), spec.node_of(slot));
            assert_eq!(p.rack_of(slot), spec.rack_of(spec.node_of(slot)));
        }
        assert_eq!(p.free_in_rack(RackId::new(1)).count(), 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::slot::SlotTable;
    use proptest::prelude::*;
    use ssr_dag::{Priority, StageId};

    #[derive(Debug, Clone)]
    enum Op {
        Assign(u32, u64),
        Finish(u32),
        Reserve(u32, u64, Option<u64>),
        Release(u32),
        Expire(u64),
        ReleaseJob(u64),
    }

    fn op_strategy(slots: u32) -> impl Strategy<Value = Op> {
        prop_oneof![
            (0..slots, 1u64..5).prop_map(|(s, j)| Op::Assign(s, j)),
            (0..slots).prop_map(Op::Finish),
            (0..slots, 1u64..5, 0u64..40)
                .prop_map(|(s, j, d)| Op::Reserve(s, j, (d > 0).then_some(d))),
            (0..slots).prop_map(Op::Release),
            (0u64..50).prop_map(Op::Expire),
            (1u64..5).prop_map(Op::ReleaseJob),
        ]
    }

    /// Applies one op to both implementations and asserts identical
    /// results; `SlotTable` is the naive rescan reference.
    fn apply(pool: &mut SlotPool, table: &mut SlotTable, op: Op) {
        match op {
            Op::Assign(s, j) => {
                let slot = SlotId::new(s);
                let t = TaskId::new(JobId::new(j), StageId::new(0), 0);
                prop_assert_eq!(pool.assign(slot, t), table.assign(slot, t));
            }
            Op::Finish(s) => {
                let slot = SlotId::new(s);
                prop_assert_eq!(pool.finish(slot), table.finish(slot));
            }
            Op::Reserve(s, j, d) => {
                let slot = SlotId::new(s);
                let mut r = Reservation::new(JobId::new(j), Priority::new(j as i32));
                if let Some(d) = d {
                    r = r.with_deadline(SimTime::from_secs(d));
                }
                prop_assert_eq!(pool.reserve(slot, r), table.reserve(slot, r));
            }
            Op::Release(s) => {
                let slot = SlotId::new(s);
                prop_assert_eq!(pool.release(slot), table.release(slot));
            }
            Op::Expire(at) => {
                let now = SimTime::from_secs(at);
                prop_assert_eq!(pool.expire_reservations(now), table.expire_reservations(now));
            }
            Op::ReleaseJob(j) => {
                let job = JobId::new(j);
                prop_assert_eq!(
                    pool.release_job_reservations(job),
                    table.release_job_reservations(job)
                );
            }
        }
    }

    proptest! {
        /// The indexed pool and the naive rescan table agree on every
        /// query after any operation sequence.
        #[test]
        fn pool_agrees_with_rescan_reference(
            ops in proptest::collection::vec(op_strategy(8), 0..300)
        ) {
            let spec = ClusterSpec::with_racks(4, 2, 2).unwrap();
            let mut pool = SlotPool::new(&spec);
            let mut table = SlotTable::new(&spec);
            for op in ops {
                apply(&mut pool, &mut table, op);
                prop_assert_eq!(pool.counts(), table.counts());
                prop_assert_eq!(
                    pool.free_slots().collect::<Vec<_>>(),
                    table.free_slots().collect::<Vec<_>>()
                );
                for j in 1..5u64 {
                    let job = JobId::new(j);
                    prop_assert_eq!(
                        pool.reserved_for(job).collect::<Vec<_>>(),
                        table.reserved_for(job).collect::<Vec<_>>()
                    );
                    prop_assert_eq!(pool.running_for(job), table.running_for(job));
                }
                for (slot, state) in pool.iter() {
                    prop_assert_eq!(state, table.get(slot));
                }
                // The derived indexes are internally consistent too.
                let reserved_count = pool.reserved_slots().count();
                prop_assert_eq!(reserved_count, pool.counts().2);
                let per_node: usize = (0..spec.nodes())
                    .map(|n| pool.free_on_node(NodeId::new(n)).count())
                    .sum();
                prop_assert_eq!(per_node, pool.counts().0);
                let per_rack: usize = (0..spec.racks())
                    .map(|r| pool.free_in_rack(RackId::new(r)).count())
                    .sum();
                prop_assert_eq!(per_rack, pool.counts().0);
                prop_assert_eq!(
                    pool.next_deadline(),
                    pool.iter()
                        .filter_map(|(_, s)| s.reservation().and_then(|r| r.deadline()))
                        .min()
                );
                // The (owner, priority) group index matches a naive
                // recount over all slot states.
                let mut naive_groups: BTreeMap<(JobId, Priority), usize> = BTreeMap::new();
                for (_, state) in pool.iter() {
                    if let Some(r) = state.reservation() {
                        *naive_groups.entry((r.job(), r.priority())).or_insert(0) += 1;
                    }
                }
                prop_assert_eq!(
                    pool.reservation_groups().collect::<Vec<_>>(),
                    naive_groups.into_iter().map(|((j, p), c)| (j, p, c)).collect::<Vec<_>>()
                );
                for j in 1..5u64 {
                    let job = JobId::new(j);
                    prop_assert_eq!(
                        pool.has_reservations(job),
                        table.reserved_for(job).next().is_some()
                    );
                }
            }
        }
    }
}
