//! Data-locality levels, the delay-scheduling wait, and locality slowdown.
//!
//! Spark's locality levels are reproduced: a task prefers the slot holding
//! its input (`PROCESS_LOCAL`), then the same node, the same rack, and
//! finally anywhere (`ANY`). A task that cannot get its preferred level
//! waits (`spark.locality.wait`, 3 s in the paper's simulation) before
//! accepting the next level down. Running below `PROCESS_LOCAL` multiplies
//! the task duration by a level-dependent slowdown factor — remote reads
//! plus the "cold JVM" penalty of §II-B, which the paper measured at up to
//! two orders of magnitude (Fig. 6) and modelled as a conservative 5× (10×
//! in the amplified setting) in simulation (§VI-B).

use std::collections::BTreeSet;
use std::fmt;

use ssr_simcore::dist::{constant, DynDistribution};
use ssr_simcore::rng::SimRng;
use ssr_simcore::SimDuration;

use crate::topology::{ClusterSpec, SlotId};

/// A Spark-style locality level, best first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LocalityLevel {
    /// The slot holds the task's input data (and a warm JVM).
    ProcessLocal,
    /// Another slot on the node holding the input.
    NodeLocal,
    /// A slot in the rack holding the input.
    RackLocal,
    /// Anywhere in the cluster.
    Any,
}

impl LocalityLevel {
    /// All levels, best first.
    pub const ALL: [LocalityLevel; 4] = [
        LocalityLevel::ProcessLocal,
        LocalityLevel::NodeLocal,
        LocalityLevel::RackLocal,
        LocalityLevel::Any,
    ];

    /// How many wait periods must elapse before this level is acceptable
    /// under delay scheduling (0 for `ProcessLocal`).
    fn rank(self) -> u32 {
        match self {
            LocalityLevel::ProcessLocal => 0,
            LocalityLevel::NodeLocal => 1,
            LocalityLevel::RackLocal => 2,
            LocalityLevel::Any => 3,
        }
    }
}

impl fmt::Display for LocalityLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LocalityLevel::ProcessLocal => "PROCESS_LOCAL",
            LocalityLevel::NodeLocal => "NODE_LOCAL",
            LocalityLevel::RackLocal => "RACK_LOCAL",
            LocalityLevel::Any => "ANY",
        };
        f.write_str(s)
    }
}

/// Locality configuration: the delay-scheduling wait and per-level task
/// slowdown distributions.
///
/// # Example
///
/// ```
/// use ssr_cluster::{LocalityModel, LocalityLevel};
/// use ssr_simcore::{SimDuration, rng::SimRng};
///
/// let model = LocalityModel::paper_simulation();
/// assert_eq!(model.wait(), SimDuration::from_secs(3));
/// let mut rng = SimRng::seed_from_u64(1);
/// assert_eq!(model.sample_slowdown(LocalityLevel::ProcessLocal, &mut rng), 1.0);
/// assert_eq!(model.sample_slowdown(LocalityLevel::Any, &mut rng), 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct LocalityModel {
    wait: SimDuration,
    slowdown: [DynDistribution; 4],
}

impl LocalityModel {
    /// Creates a model with fixed slowdown factors per level.
    ///
    /// # Panics
    ///
    /// Panics if any factor is negative or non-finite.
    pub fn fixed(
        wait: SimDuration,
        process: f64,
        node: f64,
        rack: f64,
        any: f64,
    ) -> Self {
        LocalityModel {
            wait,
            slowdown: [constant(process), constant(node), constant(rack), constant(any)],
        }
    }

    /// The paper's simulation setting (§VI-B): 3 s locality wait and a
    /// conservative 5× runtime penalty without data locality.
    pub fn paper_simulation() -> Self {
        LocalityModel::fixed(SimDuration::from_secs(3), 1.0, 1.2, 1.8, 5.0)
    }

    /// The amplified setting of Fig. 15(c): 10× penalty at `ANY`.
    pub fn paper_simulation_amplified() -> Self {
        LocalityModel::fixed(SimDuration::from_secs(3), 1.0, 1.2, 1.8, 10.0)
    }

    /// Scales every slowdown factor above `PROCESS_LOCAL`; `amplified()` of
    /// the paper doubles the `ANY` factor, which this generalises.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn with_any_slowdown(mut self, factor: f64) -> Self {
        self.slowdown[3] = constant(factor);
        self
    }

    /// Overrides the slowdown distribution of one level — used by the
    /// Fig. 6 harness, which draws heavy-tailed `ANY` penalties mirroring
    /// the measured cold-JVM/remote-read slowdowns (up to two orders of
    /// magnitude).
    pub fn with_slowdown_dist(mut self, level: LocalityLevel, dist: DynDistribution) -> Self {
        self.slowdown[level.rank() as usize] = dist;
        self
    }

    /// Sets the delay-scheduling wait per level downgrade.
    pub fn with_wait(mut self, wait: SimDuration) -> Self {
        self.wait = wait;
        self
    }

    /// The delay-scheduling wait (`spark.locality.wait`).
    pub fn wait(&self) -> SimDuration {
        self.wait
    }

    /// Draws a task slowdown factor for running at `level`.
    pub fn sample_slowdown(&self, level: LocalityLevel, rng: &mut SimRng) -> f64 {
        self.slowdown[level.rank() as usize].sample(rng)
    }

    /// The mean slowdown factor at `level`, if known in closed form.
    pub fn mean_slowdown(&self, level: LocalityLevel) -> Option<f64> {
        self.slowdown[level.rank() as usize].mean()
    }

    /// The most relaxed level a task may accept after waiting `elapsed`
    /// since it became schedulable (delay scheduling: one level per wait
    /// period).
    ///
    /// A zero wait disables delay scheduling (everything allowed at once).
    pub fn max_allowed_level(&self, elapsed: SimDuration) -> LocalityLevel {
        if self.wait.is_zero() {
            return LocalityLevel::Any;
        }
        let periods = elapsed.as_micros() / self.wait.as_micros();
        match periods {
            0 => LocalityLevel::ProcessLocal,
            1 => LocalityLevel::NodeLocal,
            2 => LocalityLevel::RackLocal,
            _ => LocalityLevel::Any,
        }
    }

    /// The time after which a task waiting since `0` may accept `level`.
    pub fn unlock_time(&self, level: LocalityLevel) -> SimDuration {
        self.wait * level.rank() as u64
    }

    /// The next elapsed time (strictly greater than `elapsed`) at which a
    /// waiting task unlocks a more relaxed level, or `None` if `ANY` is
    /// already allowed.
    ///
    /// Simulators use this to schedule re-offer events under delay
    /// scheduling.
    pub fn next_unlock_after(&self, elapsed: SimDuration) -> Option<SimDuration> {
        if self.wait.is_zero() {
            return None;
        }
        let periods = elapsed.as_micros() / self.wait.as_micros();
        if periods >= 3 {
            None
        } else {
            Some(self.wait * (periods + 1))
        }
    }
}

impl Default for LocalityModel {
    /// The paper's simulation configuration.
    fn default() -> Self {
        LocalityModel::paper_simulation()
    }
}

/// Computes the best locality level `candidate` can offer for a task that
/// prefers `preferred` slots (the slots holding its upstream outputs).
///
/// The preference set is ordered (`BTreeSet`) so that every scan over it
/// is deterministic; the membership tests below are order-independent
/// either way, but the ordered type keeps the whole preference path
/// inside the replay contract (lint D001).
///
/// An empty preference means the task has no data affinity (e.g. a root
/// phase reading evenly from a distributed store) and runs at
/// `PROCESS_LOCAL` anywhere.
pub fn level_for(
    spec: &ClusterSpec,
    preferred: &BTreeSet<SlotId>,
    candidate: SlotId,
) -> LocalityLevel {
    if preferred.is_empty() || preferred.contains(&candidate) {
        return LocalityLevel::ProcessLocal;
    }
    let node = spec.node_of(candidate);
    if preferred.iter().any(|&s| spec.node_of(s) == node) {
        return LocalityLevel::NodeLocal;
    }
    let rack = spec.rack_of(node);
    if preferred.iter().any(|&s| spec.rack_of(spec.node_of(s)) == rack) {
        return LocalityLevel::RackLocal;
    }
    LocalityLevel::Any
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        // 4 nodes x 2 slots, racks of 2 nodes: slots 0-3 rack 0, 4-7 rack 1.
        ClusterSpec::with_racks(4, 2, 2).unwrap()
    }

    #[test]
    fn level_ordering_best_first() {
        assert!(LocalityLevel::ProcessLocal < LocalityLevel::NodeLocal);
        assert!(LocalityLevel::NodeLocal < LocalityLevel::RackLocal);
        assert!(LocalityLevel::RackLocal < LocalityLevel::Any);
    }

    #[test]
    fn level_for_each_distance() {
        let spec = spec();
        let preferred: BTreeSet<SlotId> = [SlotId::new(0)].into_iter().collect();
        assert_eq!(level_for(&spec, &preferred, SlotId::new(0)), LocalityLevel::ProcessLocal);
        assert_eq!(level_for(&spec, &preferred, SlotId::new(1)), LocalityLevel::NodeLocal);
        assert_eq!(level_for(&spec, &preferred, SlotId::new(2)), LocalityLevel::RackLocal);
        assert_eq!(level_for(&spec, &preferred, SlotId::new(4)), LocalityLevel::Any);
    }

    #[test]
    fn empty_preference_is_process_local() {
        let spec = spec();
        assert_eq!(
            level_for(&spec, &BTreeSet::new(), SlotId::new(5)),
            LocalityLevel::ProcessLocal
        );
    }

    #[test]
    fn delay_scheduling_unlocks_levels() {
        let m = LocalityModel::paper_simulation();
        let w = SimDuration::from_secs(3);
        assert_eq!(m.max_allowed_level(SimDuration::ZERO), LocalityLevel::ProcessLocal);
        assert_eq!(m.max_allowed_level(w - SimDuration::from_micros(1)), LocalityLevel::ProcessLocal);
        assert_eq!(m.max_allowed_level(w), LocalityLevel::NodeLocal);
        assert_eq!(m.max_allowed_level(w * 2), LocalityLevel::RackLocal);
        assert_eq!(m.max_allowed_level(w * 3), LocalityLevel::Any);
        assert_eq!(m.unlock_time(LocalityLevel::Any), SimDuration::from_secs(9));
    }

    #[test]
    fn next_unlock_progression() {
        let m = LocalityModel::paper_simulation();
        assert_eq!(m.next_unlock_after(SimDuration::ZERO), Some(SimDuration::from_secs(3)));
        assert_eq!(
            m.next_unlock_after(SimDuration::from_secs(3)),
            Some(SimDuration::from_secs(6))
        );
        assert_eq!(
            m.next_unlock_after(SimDuration::from_secs(8)),
            Some(SimDuration::from_secs(9))
        );
        assert_eq!(m.next_unlock_after(SimDuration::from_secs(9)), None);
        let zero = LocalityModel::paper_simulation().with_wait(SimDuration::ZERO);
        assert_eq!(zero.next_unlock_after(SimDuration::ZERO), None);
    }

    #[test]
    fn zero_wait_disables_delay_scheduling() {
        let m = LocalityModel::paper_simulation().with_wait(SimDuration::ZERO);
        assert_eq!(m.max_allowed_level(SimDuration::ZERO), LocalityLevel::Any);
    }

    #[test]
    fn paper_models_have_expected_factors() {
        let m = LocalityModel::paper_simulation();
        assert_eq!(m.mean_slowdown(LocalityLevel::ProcessLocal), Some(1.0));
        assert_eq!(m.mean_slowdown(LocalityLevel::Any), Some(5.0));
        let amp = LocalityModel::paper_simulation_amplified();
        assert_eq!(amp.mean_slowdown(LocalityLevel::Any), Some(10.0));
        let doubled = LocalityModel::paper_simulation().with_any_slowdown(10.0);
        assert_eq!(doubled.mean_slowdown(LocalityLevel::Any), Some(10.0));
    }

    #[test]
    fn custom_slowdown_distribution() {
        use ssr_simcore::dist::uniform;
        let m = LocalityModel::paper_simulation()
            .with_slowdown_dist(LocalityLevel::Any, uniform(2.0, 100.0));
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..100 {
            let f = m.sample_slowdown(LocalityLevel::Any, &mut rng);
            assert!((2.0..=100.0).contains(&f));
        }
    }

    #[test]
    fn display_matches_spark_names() {
        assert_eq!(format!("{}", LocalityLevel::ProcessLocal), "PROCESS_LOCAL");
        assert_eq!(format!("{}", LocalityLevel::Any), "ANY");
    }
}
