//! # ssr-cluster
//!
//! The cluster substrate for the speculative-slot-reservation (SSR)
//! reproduction: machines, racks and compute **slots**, the slot state
//! machine (free / running / reserved with priority and optional deadline),
//! the data-locality model, and the data-placement map that records where
//! each phase's outputs live.
//!
//! A *slot* is the unit the paper schedules — one Spark executor core. Slot
//! reservations carry the reserving job's [`Priority`](ssr_dag::Priority)
//! and an optional expiry deadline (§IV-B); the scheduler's ApprovalLogic
//! consults them before assigning tasks.
//!
//! # Example
//!
//! ```
//! use ssr_cluster::{ClusterSpec, SlotTable, Reservation};
//! use ssr_dag::{JobId, Priority, StageId, TaskId};
//!
//! let spec = ClusterSpec::new(2, 2)?; // 2 nodes x 2 slots
//! let mut slots = SlotTable::new(&spec);
//! assert_eq!(slots.len(), 4);
//!
//! let slot = slots.free_slots().next().expect("all free initially");
//! let task = TaskId::new(JobId::new(1), StageId::new(0), 0);
//! slots.assign(slot, task)?;
//! slots.finish(slot)?;
//! slots.reserve(slot, Reservation::new(JobId::new(1), Priority::new(5)))?;
//! assert!(slots.get(slot).is_reserved());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod locality;
pub mod placement;
pub mod pool;
pub mod slot;
pub mod topology;

pub use locality::{LocalityLevel, LocalityModel};
pub use placement::DataPlacement;
pub use pool::SlotPool;
pub use slot::{ClusterError, Reservation, SlotState, SlotTable};
pub use topology::{ClusterSpec, NodeId, RackId, SlotId, TopologyError};
