//! Cluster topology: racks contain nodes, nodes host compute slots.

use std::fmt;

/// A compute-slot identifier, dense in `0..ClusterSpec::total_slots()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(u32);

impl SlotId {
    /// Creates a slot id from a raw index.
    pub const fn new(raw: u32) -> Self {
        SlotId(raw)
    }

    /// The raw index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// The index as `usize`, for slice addressing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot-{}", self.0)
    }
}

/// A machine identifier, dense in `0..ClusterSpec::nodes()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    pub const fn new(raw: u32) -> Self {
        NodeId(raw)
    }

    /// The raw index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// A rack identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RackId(u32);

impl RackId {
    /// Creates a rack id from a raw index.
    pub const fn new(raw: u32) -> Self {
        RackId(raw)
    }

    /// The raw index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rack-{}", self.0)
    }
}

/// Error produced when a cluster specification is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// The cluster must contain at least one node.
    NoNodes,
    /// Every node must host at least one slot.
    NoSlotsPerNode,
    /// Racks must contain at least one node.
    NoNodesPerRack,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NoNodes => write!(f, "cluster requires at least one node"),
            TopologyError::NoSlotsPerNode => write!(f, "nodes require at least one slot"),
            TopologyError::NoNodesPerRack => write!(f, "racks require at least one node"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Heterogeneous slot sizing: every `large_every`-th slot has `large`
/// resource units, the rest have `small` (§III-C: frameworks like Tez run
/// tasks with differing resource demands across phases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotSizing {
    /// Size of ordinary slots (resource units).
    pub small: u32,
    /// Size of the large slots.
    pub large: u32,
    /// Every `large_every`-th slot (by index) is large; must be ≥ 1.
    pub large_every: u32,
}

/// An immutable description of a homogeneous (or §III-C heterogeneous)
/// cluster: `nodes` machines, each hosting `slots_per_node` compute
/// slots, grouped into racks of `nodes_per_rack` machines.
///
/// The paper's deployments map to `ClusterSpec::new(50, 2)` (EC2, two
/// Spark executors per m4.large) and `ClusterSpec::new(1000, 4)` (the
/// simulated 4000-slot cluster).
///
/// # Example
///
/// ```
/// use ssr_cluster::{ClusterSpec, SlotId};
///
/// let spec = ClusterSpec::with_racks(4, 2, 2)?;
/// assert_eq!(spec.total_slots(), 8);
/// assert_eq!(spec.racks(), 2);
/// let slot = SlotId::new(5);
/// let node = spec.node_of(slot);
/// assert_eq!(node.as_u32(), 2);
/// assert_eq!(spec.rack_of(node).as_u32(), 1);
///
/// // Heterogeneous: every 4th slot is large (4 units).
/// let het = ClusterSpec::new(4, 2)?.with_slot_sizing(1, 4, 4);
/// assert_eq!(het.slot_size(SlotId::new(0)), 4);
/// assert_eq!(het.slot_size(SlotId::new(1)), 1);
/// assert_eq!(het.max_slot_size(), 4);
/// # Ok::<(), ssr_cluster::TopologyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterSpec {
    nodes: u32,
    slots_per_node: u32,
    nodes_per_rack: u32,
    sizing: Option<SlotSizing>,
}

impl ClusterSpec {
    /// Creates a single-rack cluster of `nodes` machines with
    /// `slots_per_node` slots each.
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] if either argument is zero.
    pub fn new(nodes: u32, slots_per_node: u32) -> Result<Self, TopologyError> {
        ClusterSpec::with_racks(nodes, slots_per_node, nodes.max(1))
    }

    /// Creates a cluster grouped into racks of `nodes_per_rack` machines
    /// (the final rack may be partial).
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] if any argument is zero.
    pub fn with_racks(
        nodes: u32,
        slots_per_node: u32,
        nodes_per_rack: u32,
    ) -> Result<Self, TopologyError> {
        if nodes == 0 {
            return Err(TopologyError::NoNodes);
        }
        if slots_per_node == 0 {
            return Err(TopologyError::NoSlotsPerNode);
        }
        if nodes_per_rack == 0 {
            return Err(TopologyError::NoNodesPerRack);
        }
        Ok(ClusterSpec { nodes, slots_per_node, nodes_per_rack, sizing: None })
    }

    /// Makes the cluster heterogeneous (§III-C, Tez-style): every
    /// `large_every`-th slot has `large` resource units, the rest `small`.
    /// Tasks declare a demand ([`StageSpec::demand`]) and only fit slots
    /// of at least that size.
    ///
    /// [`StageSpec::demand`]: https://docs.rs/ssr-dag
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= small <= large` and `large_every >= 1`.
    pub fn with_slot_sizing(mut self, small: u32, large: u32, large_every: u32) -> Self {
        assert!(
            small >= 1 && large >= small && large_every >= 1,
            "slot sizing requires 1 <= small <= large and large_every >= 1"
        );
        self.sizing = Some(SlotSizing { small, large, large_every });
        self
    }

    /// The resource size of `slot` (1 for a homogeneous cluster).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range for this cluster.
    pub fn slot_size(&self, slot: SlotId) -> u32 {
        assert!(slot.as_u32() < self.total_slots(), "{slot} out of range");
        match self.sizing {
            Some(s) if slot.as_u32().is_multiple_of(s.large_every) => s.large,
            Some(s) => s.small,
            None => 1,
        }
    }

    /// The largest slot size in the cluster.
    pub fn max_slot_size(&self) -> u32 {
        match self.sizing {
            Some(s) => s.large,
            None => 1,
        }
    }

    /// Number of machines.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Slots hosted by each machine.
    pub fn slots_per_node(&self) -> u32 {
        self.slots_per_node
    }

    /// Total compute slots in the cluster.
    pub fn total_slots(&self) -> u32 {
        self.nodes * self.slots_per_node
    }

    /// Number of racks (ceiling division).
    pub fn racks(&self) -> u32 {
        self.nodes.div_ceil(self.nodes_per_rack)
    }

    /// The machine hosting `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range for this cluster.
    pub fn node_of(&self, slot: SlotId) -> NodeId {
        assert!(slot.as_u32() < self.total_slots(), "{slot} out of range");
        NodeId::new(slot.as_u32() / self.slots_per_node)
    }

    /// The rack containing `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for this cluster.
    pub fn rack_of(&self, node: NodeId) -> RackId {
        assert!(node.as_u32() < self.nodes, "{node} out of range");
        RackId::new(node.as_u32() / self.nodes_per_rack)
    }

    /// The slots hosted by `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for this cluster.
    pub fn slots_of(&self, node: NodeId) -> impl Iterator<Item = SlotId> {
        assert!(node.as_u32() < self.nodes, "{node} out of range");
        let start = node.as_u32() * self.slots_per_node;
        (start..start + self.slots_per_node).map(SlotId::new)
    }

    /// Iterator over all slot ids.
    pub fn iter_slots(&self) -> impl Iterator<Item = SlotId> {
        (0..self.total_slots()).map(SlotId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert_eq!(ClusterSpec::new(0, 2), Err(TopologyError::NoNodes));
        assert_eq!(ClusterSpec::new(2, 0), Err(TopologyError::NoSlotsPerNode));
        assert_eq!(ClusterSpec::with_racks(2, 2, 0), Err(TopologyError::NoNodesPerRack));
        assert!(ClusterSpec::new(1, 1).is_ok());
    }

    #[test]
    fn slot_to_node_mapping() {
        let spec = ClusterSpec::new(3, 4).unwrap();
        assert_eq!(spec.total_slots(), 12);
        assert_eq!(spec.node_of(SlotId::new(0)), NodeId::new(0));
        assert_eq!(spec.node_of(SlotId::new(3)), NodeId::new(0));
        assert_eq!(spec.node_of(SlotId::new(4)), NodeId::new(1));
        assert_eq!(spec.node_of(SlotId::new(11)), NodeId::new(2));
    }

    #[test]
    fn node_to_rack_mapping() {
        let spec = ClusterSpec::with_racks(5, 1, 2).unwrap();
        assert_eq!(spec.racks(), 3);
        assert_eq!(spec.rack_of(NodeId::new(0)), RackId::new(0));
        assert_eq!(spec.rack_of(NodeId::new(1)), RackId::new(0));
        assert_eq!(spec.rack_of(NodeId::new(4)), RackId::new(2));
    }

    #[test]
    fn slots_of_node_round_trip() {
        let spec = ClusterSpec::new(4, 3).unwrap();
        for node in 0..4 {
            for slot in spec.slots_of(NodeId::new(node)) {
                assert_eq!(spec.node_of(slot), NodeId::new(node));
            }
        }
        assert_eq!(spec.iter_slots().count(), 12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slot_panics() {
        ClusterSpec::new(1, 1).unwrap().node_of(SlotId::new(1));
    }

    #[test]
    fn single_rack_default() {
        let spec = ClusterSpec::new(50, 2).unwrap();
        assert_eq!(spec.racks(), 1);
        assert_eq!(spec.total_slots(), 100);
    }

    #[test]
    fn homogeneous_slots_have_unit_size() {
        let spec = ClusterSpec::new(2, 2).unwrap();
        for slot in spec.iter_slots() {
            assert_eq!(spec.slot_size(slot), 1);
        }
        assert_eq!(spec.max_slot_size(), 1);
    }

    #[test]
    fn heterogeneous_sizing_pattern() {
        let spec = ClusterSpec::new(2, 3).unwrap().with_slot_sizing(1, 4, 3);
        let sizes: Vec<u32> = spec.iter_slots().map(|s| spec.slot_size(s)).collect();
        assert_eq!(sizes, vec![4, 1, 1, 4, 1, 1]);
        assert_eq!(spec.max_slot_size(), 4);
    }

    #[test]
    #[should_panic(expected = "slot sizing requires")]
    fn invalid_sizing_panics() {
        let _ = ClusterSpec::new(1, 1).unwrap().with_slot_sizing(4, 2, 1);
    }

    #[test]
    fn displays() {
        assert_eq!(format!("{}", SlotId::new(3)), "slot-3");
        assert_eq!(format!("{}", NodeId::new(1)), "node-1");
        assert_eq!(format!("{}", RackId::new(0)), "rack-0");
        assert!(format!("{}", TopologyError::NoNodes).contains("node"));
    }
}
