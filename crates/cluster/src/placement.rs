//! The data-placement map: which slots hold each phase's output.
//!
//! When a task completes on a slot, that slot holds the task's output
//! partition (and a warm JVM with the job's classes loaded). A downstream
//! task therefore *prefers* the slots that ran its upstream phases — this
//! is exactly why the paper's Case-1 (§II-B) wants downstream computations
//! resumed on the same slots, and why losing those slots to a lower
//! priority job hurts so much.

use std::collections::{BTreeMap, BTreeSet};

use ssr_dag::{JobId, StageId};

use crate::topology::SlotId;

/// Records, per `(job, stage)`, the slot on which each partition ran.
///
/// # Example
///
/// ```
/// use ssr_cluster::{DataPlacement, SlotId};
/// use ssr_dag::{JobId, StageId};
///
/// let mut placement = DataPlacement::new();
/// let (job, map) = (JobId::new(1), StageId::new(0));
/// placement.record(job, map, 0, SlotId::new(3));
/// placement.record(job, map, 1, SlotId::new(5));
///
/// let preferred = placement.preferred_slots(job, &[map]);
/// assert!(preferred.contains(&SlotId::new(3)));
/// assert!(preferred.contains(&SlotId::new(5)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct DataPlacement {
    // Ordered map: iteration and clearing visit entries in key order, so
    // nothing downstream can observe a hash-seed-dependent order (D001).
    outputs: BTreeMap<(JobId, StageId), Vec<SlotId>>,
}

impl DataPlacement {
    /// Creates an empty placement map.
    pub fn new() -> Self {
        DataPlacement::default()
    }

    /// Records that partition `partition` of `(job, stage)` ran on `slot`.
    ///
    /// Re-recording a partition (a straggler copy finishing first on a
    /// different slot) replaces the previous slot.
    pub fn record(&mut self, job: JobId, stage: StageId, partition: u32, slot: SlotId) {
        let slots = self.outputs.entry((job, stage)).or_default();
        let idx = partition as usize;
        if slots.len() <= idx {
            slots.resize(idx + 1, SlotId::new(u32::MAX));
        }
        slots[idx] = slot;
    }

    /// The slots holding the outputs of the given upstream stages of
    /// `job` — the preferred slots of a downstream task, in ascending
    /// slot order so every consumer iterates deterministically.
    ///
    /// In Spark, a shuffle (wide) dependency reads from *all* upstream
    /// partitions, so the preference is the union over all parents;
    /// unknown partitions (never recorded) are skipped.
    pub fn preferred_slots(&self, job: JobId, parents: &[StageId]) -> BTreeSet<SlotId> {
        let mut preferred = BTreeSet::new();
        for &stage in parents {
            if let Some(slots) = self.outputs.get(&(job, stage)) {
                preferred.extend(slots.iter().copied().filter(|s| s.as_u32() != u32::MAX));
            }
        }
        preferred
    }

    /// The slot that ran one specific upstream partition, if recorded.
    pub fn partition_slot(&self, job: JobId, stage: StageId, partition: u32) -> Option<SlotId> {
        self.outputs
            .get(&(job, stage))
            .and_then(|slots| slots.get(partition as usize))
            .copied()
            .filter(|s| s.as_u32() != u32::MAX)
    }

    /// Drops all records of `job` (call on job completion).
    pub fn clear_job(&mut self, job: JobId) {
        self.outputs.retain(|(j, _), _| *j != job);
    }

    /// Number of `(job, stage)` entries currently tracked.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// `true` if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut p = DataPlacement::new();
        let job = JobId::new(1);
        p.record(job, StageId::new(0), 0, SlotId::new(2));
        p.record(job, StageId::new(0), 2, SlotId::new(4));
        assert_eq!(p.partition_slot(job, StageId::new(0), 0), Some(SlotId::new(2)));
        assert_eq!(p.partition_slot(job, StageId::new(0), 1), None); // gap
        assert_eq!(p.partition_slot(job, StageId::new(0), 2), Some(SlotId::new(4)));
        assert_eq!(p.partition_slot(job, StageId::new(9), 0), None);
    }

    #[test]
    fn preferred_slots_union_over_parents() {
        let mut p = DataPlacement::new();
        let job = JobId::new(1);
        p.record(job, StageId::new(0), 0, SlotId::new(1));
        p.record(job, StageId::new(1), 0, SlotId::new(7));
        let preferred = p.preferred_slots(job, &[StageId::new(0), StageId::new(1)]);
        assert_eq!(preferred.len(), 2);
        assert!(preferred.contains(&SlotId::new(1)));
        assert!(preferred.contains(&SlotId::new(7)));
    }

    #[test]
    fn jobs_are_isolated() {
        let mut p = DataPlacement::new();
        p.record(JobId::new(1), StageId::new(0), 0, SlotId::new(1));
        let other = p.preferred_slots(JobId::new(2), &[StageId::new(0)]);
        assert!(other.is_empty());
    }

    #[test]
    fn rerecord_replaces_slot() {
        let mut p = DataPlacement::new();
        let job = JobId::new(1);
        p.record(job, StageId::new(0), 0, SlotId::new(1));
        p.record(job, StageId::new(0), 0, SlotId::new(9));
        assert_eq!(p.partition_slot(job, StageId::new(0), 0), Some(SlotId::new(9)));
        assert_eq!(p.preferred_slots(job, &[StageId::new(0)]).len(), 1);
    }

    #[test]
    fn clear_job_drops_all_stages() {
        let mut p = DataPlacement::new();
        p.record(JobId::new(1), StageId::new(0), 0, SlotId::new(1));
        p.record(JobId::new(1), StageId::new(1), 0, SlotId::new(2));
        p.record(JobId::new(2), StageId::new(0), 0, SlotId::new(3));
        p.clear_job(JobId::new(1));
        assert_eq!(p.len(), 1);
        assert!(p.preferred_slots(JobId::new(1), &[StageId::new(0), StageId::new(1)]).is_empty());
        assert!(!p.preferred_slots(JobId::new(2), &[StageId::new(0)]).is_empty());
    }

    #[test]
    fn empty_map_behaviour() {
        let p = DataPlacement::new();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert!(p.preferred_slots(JobId::new(1), &[StageId::new(0)]).is_empty());
    }
}
