//! The compute-slot state machine and reservation bookkeeping.
//!
//! Every slot is always in exactly one of three states — free, running a
//! task, or reserved for a job. Reservations carry the reserving job's
//! priority (inherited by the slot, §III-B) and an optional expiry deadline
//! (§IV-B). State transitions are checked: the table returns an error on
//! any double-booking, which the property tests in higher layers rely on.

use std::fmt;

use ssr_dag::{JobId, Priority, StageId, TaskId};
use ssr_simcore::SimTime;

use crate::topology::{ClusterSpec, SlotId};

/// A slot reservation: the slot is held for `job` at `priority` until an
/// optional `deadline`, for an optional specific downstream `stage`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    job: JobId,
    priority: Priority,
    deadline: Option<SimTime>,
    stage: Option<StageId>,
}

impl Reservation {
    /// Creates an open-ended reservation for `job` at `priority`.
    pub fn new(job: JobId, priority: Priority) -> Self {
        Reservation { job, priority, deadline: None, stage: None }
    }

    /// Sets an expiry deadline (§IV-B): past this instant the reservation
    /// lapses and the slot becomes free for any job.
    pub fn with_deadline(mut self, deadline: SimTime) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Tags the downstream phase the slot is being held for.
    pub fn with_stage(mut self, stage: StageId) -> Self {
        self.stage = Some(stage);
        self
    }

    /// The reserving job.
    pub fn job(&self) -> JobId {
        self.job
    }

    /// The priority the slot inherits while reserved.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The expiry deadline, if bounded.
    pub fn deadline(&self) -> Option<SimTime> {
        self.deadline
    }

    /// The downstream phase the reservation targets, if tagged.
    pub fn stage(&self) -> Option<StageId> {
        self.stage
    }

    /// `true` if the reservation has lapsed at `now`.
    pub fn expired_at(&self, now: SimTime) -> bool {
        self.deadline.is_some_and(|d| d <= now)
    }
}

/// The state of one compute slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SlotState {
    /// Available to any job.
    #[default]
    Free,
    /// Executing `task`.
    Running(TaskId),
    /// Held for a job; only that job (or a strictly higher priority, via
    /// the ApprovalLogic) may use it.
    Reserved(Reservation),
}

impl SlotState {
    /// `true` if the slot is free.
    pub fn is_free(&self) -> bool {
        matches!(self, SlotState::Free)
    }

    /// `true` if the slot is executing a task.
    pub fn is_running(&self) -> bool {
        matches!(self, SlotState::Running(_))
    }

    /// `true` if the slot is reserved.
    pub fn is_reserved(&self) -> bool {
        matches!(self, SlotState::Reserved(_))
    }

    /// The reservation, if any.
    pub fn reservation(&self) -> Option<&Reservation> {
        match self {
            SlotState::Reserved(r) => Some(r),
            _ => None,
        }
    }

    /// The running task, if any.
    pub fn task(&self) -> Option<TaskId> {
        match self {
            SlotState::Running(t) => Some(*t),
            _ => None,
        }
    }
}

impl fmt::Display for SlotState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlotState::Free => write!(f, "free"),
            SlotState::Running(t) => write!(f, "running {t}"),
            SlotState::Reserved(r) => write!(f, "reserved for {}", r.job()),
        }
    }
}

/// Error produced by an invalid slot-state transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterError {
    /// A task was assigned to a slot already running another task.
    SlotBusy {
        /// The target slot.
        slot: SlotId,
        /// The task occupying it.
        occupant: TaskId,
    },
    /// `finish` was called on a slot that is not running.
    NotRunning {
        /// The target slot.
        slot: SlotId,
    },
    /// `reserve` was called on a slot that is running a task.
    CannotReserveBusy {
        /// The target slot.
        slot: SlotId,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::SlotBusy { slot, occupant } => {
                write!(f, "{slot} is busy running {occupant}")
            }
            ClusterError::NotRunning { slot } => write!(f, "{slot} is not running a task"),
            ClusterError::CannotReserveBusy { slot } => {
                write!(f, "{slot} is running a task and cannot be reserved")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// The state of every slot in the cluster, with checked transitions.
///
/// The table is purely mechanical: it enforces *physical* invariants (no
/// double-booking). *Policy* — whether a job may take a reserved slot — is
/// the ApprovalLogic's job in the scheduler layer.
#[derive(Debug, Clone)]
pub struct SlotTable {
    states: Vec<SlotState>,
    sizes: Vec<u32>,
}

impl SlotTable {
    /// Creates a table with every slot free, recording each slot's
    /// resource size from the cluster spec.
    pub fn new(spec: &ClusterSpec) -> Self {
        SlotTable {
            states: vec![SlotState::Free; spec.total_slots() as usize],
            sizes: spec.iter_slots().map(|s| spec.slot_size(s)).collect(),
        }
    }

    /// The resource size of `slot` (§III-C heterogeneous clusters; 1 in a
    /// homogeneous one).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn size(&self, slot: SlotId) -> u32 {
        self.sizes[slot.index()]
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` if the cluster has no slots (never true for a validated
    /// [`ClusterSpec`]).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The state of `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn get(&self, slot: SlotId) -> &SlotState {
        &self.states[slot.index()]
    }

    /// Assigns `task` to `slot`. The slot may be free or reserved (the
    /// caller is responsible for having applied the ApprovalLogic);
    /// a reservation is consumed by the assignment.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::SlotBusy`] if the slot is running a task.
    pub fn assign(&mut self, slot: SlotId, task: TaskId) -> Result<(), ClusterError> {
        match self.states[slot.index()] {
            SlotState::Running(occupant) => Err(ClusterError::SlotBusy { slot, occupant }),
            _ => {
                self.states[slot.index()] = SlotState::Running(task);
                Ok(())
            }
        }
    }

    /// Completes the task on `slot`, freeing it, and returns the task.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::NotRunning`] if the slot holds no task.
    pub fn finish(&mut self, slot: SlotId) -> Result<TaskId, ClusterError> {
        match self.states[slot.index()] {
            SlotState::Running(task) => {
                self.states[slot.index()] = SlotState::Free;
                Ok(task)
            }
            _ => Err(ClusterError::NotRunning { slot }),
        }
    }

    /// Reserves `slot`. Overwrites an existing reservation (e.g. a
    /// higher-priority job re-reserving, or a deadline refresh).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::CannotReserveBusy`] if the slot is running.
    pub fn reserve(&mut self, slot: SlotId, reservation: Reservation) -> Result<(), ClusterError> {
        match self.states[slot.index()] {
            SlotState::Running(_) => Err(ClusterError::CannotReserveBusy { slot }),
            _ => {
                self.states[slot.index()] = SlotState::Reserved(reservation);
                Ok(())
            }
        }
    }

    /// Releases `slot` unconditionally (reservation cancelled or task
    /// cleanup); running slots are left untouched and reported as an error.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::CannotReserveBusy`] if the slot is running.
    pub fn release(&mut self, slot: SlotId) -> Result<(), ClusterError> {
        match self.states[slot.index()] {
            SlotState::Running(_) => Err(ClusterError::CannotReserveBusy { slot }),
            _ => {
                self.states[slot.index()] = SlotState::Free;
                Ok(())
            }
        }
    }

    /// Frees every reservation whose deadline has passed at `now` and
    /// returns the freed slots (§IV-B: "beyond the deadline the reservation
    /// is expired, and the slot becomes free to use by other jobs").
    pub fn expire_reservations(&mut self, now: SimTime) -> Vec<SlotId> {
        let mut expired = Vec::new();
        for (i, state) in self.states.iter_mut().enumerate() {
            if let SlotState::Reserved(r) = state {
                if r.expired_at(now) {
                    *state = SlotState::Free;
                    expired.push(SlotId::new(i as u32));
                }
            }
        }
        expired
    }

    /// Releases every reservation held by `job` (e.g. on job completion)
    /// and returns the freed slots.
    pub fn release_job_reservations(&mut self, job: JobId) -> Vec<SlotId> {
        let mut freed = Vec::new();
        for (i, state) in self.states.iter_mut().enumerate() {
            if let SlotState::Reserved(r) = state {
                if r.job() == job {
                    *state = SlotState::Free;
                    freed.push(SlotId::new(i as u32));
                }
            }
        }
        freed
    }

    /// Iterator over free slots.
    pub fn free_slots(&self) -> impl Iterator<Item = SlotId> + '_ {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_free())
            .map(|(i, _)| SlotId::new(i as u32))
    }

    /// Iterator over slots reserved for `job`.
    pub fn reserved_for(&self, job: JobId) -> impl Iterator<Item = SlotId> + '_ {
        self.states
            .iter()
            .enumerate()
            .filter(move |(_, s)| s.reservation().is_some_and(|r| r.job() == job))
            .map(|(i, _)| SlotId::new(i as u32))
    }

    /// Iterator over `(slot, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &SlotState)> + '_ {
        self.states.iter().enumerate().map(|(i, s)| (SlotId::new(i as u32), s))
    }

    /// Counts of (free, running, reserved) slots.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut free = 0;
        let mut running = 0;
        let mut reserved = 0;
        for s in &self.states {
            match s {
                SlotState::Free => free += 1,
                SlotState::Running(_) => running += 1,
                SlotState::Reserved(_) => reserved += 1,
            }
        }
        (free, running, reserved)
    }

    /// Number of slots currently running tasks of `job`.
    pub fn running_for(&self, job: JobId) -> usize {
        self.states
            .iter()
            .filter(|s| s.task().is_some_and(|t| t.job == job))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(slots: u32) -> SlotTable {
        SlotTable::new(&ClusterSpec::new(1, slots).unwrap())
    }

    fn task(job: u64, part: u32) -> TaskId {
        TaskId::new(JobId::new(job), StageId::new(0), part)
    }

    #[test]
    fn fresh_table_is_all_free() {
        let t = table(4);
        assert_eq!(t.len(), 4);
        assert_eq!(t.counts(), (4, 0, 0));
        assert_eq!(t.free_slots().count(), 4);
    }

    #[test]
    fn assign_finish_cycle() {
        let mut t = table(2);
        let s = SlotId::new(0);
        t.assign(s, task(1, 0)).unwrap();
        assert!(t.get(s).is_running());
        assert_eq!(t.counts(), (1, 1, 0));
        assert_eq!(t.finish(s).unwrap(), task(1, 0));
        assert!(t.get(s).is_free());
    }

    #[test]
    fn double_assign_rejected() {
        let mut t = table(1);
        let s = SlotId::new(0);
        t.assign(s, task(1, 0)).unwrap();
        assert_eq!(
            t.assign(s, task(2, 0)),
            Err(ClusterError::SlotBusy { slot: s, occupant: task(1, 0) })
        );
    }

    #[test]
    fn finish_on_idle_rejected() {
        let mut t = table(1);
        assert_eq!(t.finish(SlotId::new(0)), Err(ClusterError::NotRunning { slot: SlotId::new(0) }));
    }

    #[test]
    fn reserve_and_consume() {
        let mut t = table(2);
        let s = SlotId::new(1);
        let r = Reservation::new(JobId::new(3), Priority::new(9)).with_stage(StageId::new(2));
        t.reserve(s, r).unwrap();
        assert_eq!(t.get(s).reservation().unwrap().priority(), Priority::new(9));
        assert_eq!(t.get(s).reservation().unwrap().stage(), Some(StageId::new(2)));
        assert_eq!(t.reserved_for(JobId::new(3)).count(), 1);
        // Assignment consumes the reservation.
        t.assign(s, task(3, 0)).unwrap();
        assert!(t.get(s).is_running());
    }

    #[test]
    fn cannot_reserve_running_slot() {
        let mut t = table(1);
        let s = SlotId::new(0);
        t.assign(s, task(1, 0)).unwrap();
        assert_eq!(
            t.reserve(s, Reservation::new(JobId::new(2), Priority::default())),
            Err(ClusterError::CannotReserveBusy { slot: s })
        );
        assert_eq!(t.release(s), Err(ClusterError::CannotReserveBusy { slot: s }));
    }

    #[test]
    fn reservation_expiry() {
        let mut t = table(3);
        let deadline = SimTime::from_secs(10);
        t.reserve(
            SlotId::new(0),
            Reservation::new(JobId::new(1), Priority::default()).with_deadline(deadline),
        )
        .unwrap();
        t.reserve(SlotId::new(1), Reservation::new(JobId::new(1), Priority::default()))
            .unwrap(); // open-ended
        assert!(t.expire_reservations(SimTime::from_secs(9)).is_empty());
        let expired = t.expire_reservations(SimTime::from_secs(10));
        assert_eq!(expired, vec![SlotId::new(0)]);
        assert!(t.get(SlotId::new(0)).is_free());
        assert!(t.get(SlotId::new(1)).is_reserved());
    }

    #[test]
    fn release_job_reservations() {
        let mut t = table(3);
        t.reserve(SlotId::new(0), Reservation::new(JobId::new(1), Priority::default())).unwrap();
        t.reserve(SlotId::new(1), Reservation::new(JobId::new(2), Priority::default())).unwrap();
        let freed = t.release_job_reservations(JobId::new(1));
        assert_eq!(freed, vec![SlotId::new(0)]);
        assert_eq!(t.counts(), (2, 0, 1));
    }

    #[test]
    fn running_for_counts_per_job() {
        let mut t = table(3);
        t.assign(SlotId::new(0), task(1, 0)).unwrap();
        t.assign(SlotId::new(1), task(1, 1)).unwrap();
        t.assign(SlotId::new(2), task(2, 0)).unwrap();
        assert_eq!(t.running_for(JobId::new(1)), 2);
        assert_eq!(t.running_for(JobId::new(2)), 1);
        assert_eq!(t.running_for(JobId::new(3)), 0);
    }

    #[test]
    fn reservation_expired_at_semantics() {
        let r = Reservation::new(JobId::new(1), Priority::default())
            .with_deadline(SimTime::from_secs(5));
        assert!(!r.expired_at(SimTime::from_secs(4)));
        assert!(r.expired_at(SimTime::from_secs(5)));
        let open = Reservation::new(JobId::new(1), Priority::default());
        assert!(!open.expired_at(SimTime::MAX));
    }

    #[test]
    fn state_display() {
        let mut t = table(1);
        assert_eq!(format!("{}", t.get(SlotId::new(0))), "free");
        t.assign(SlotId::new(0), task(1, 0)).unwrap();
        assert!(format!("{}", t.get(SlotId::new(0))).contains("running"));
        let err = ClusterError::NotRunning { slot: SlotId::new(0) };
        assert!(format!("{err}").contains("not running"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Assign(u32, u64),
        Finish(u32),
        Reserve(u32, u64),
        Release(u32),
        Expire(u64),
    }

    fn op_strategy(slots: u32) -> impl Strategy<Value = Op> {
        prop_oneof![
            (0..slots, 1u64..5).prop_map(|(s, j)| Op::Assign(s, j)),
            (0..slots).prop_map(Op::Finish),
            (0..slots, 1u64..5).prop_map(|(s, j)| Op::Reserve(s, j)),
            (0..slots).prop_map(Op::Release),
            (0u64..100).prop_map(Op::Expire),
        ]
    }

    proptest! {
        /// Under any operation sequence, slot counts always total the table
        /// size and a slot is never double-booked (errors instead).
        #[test]
        fn state_machine_is_safe(ops in proptest::collection::vec(op_strategy(6), 0..200)) {
            let mut t = SlotTable::new(&ClusterSpec::new(2, 3).unwrap());
            for op in ops {
                match op {
                    Op::Assign(s, j) => {
                        let slot = SlotId::new(s);
                        let was_running = t.get(slot).is_running();
                        let res = t.assign(slot, TaskId::new(JobId::new(j), StageId::new(0), 0));
                        prop_assert_eq!(res.is_err(), was_running);
                    }
                    Op::Finish(s) => {
                        let slot = SlotId::new(s);
                        let was_running = t.get(slot).is_running();
                        prop_assert_eq!(t.finish(slot).is_ok(), was_running);
                    }
                    Op::Reserve(s, j) => {
                        let slot = SlotId::new(s);
                        let was_running = t.get(slot).is_running();
                        let res = t.reserve(
                            slot,
                            Reservation::new(JobId::new(j), Priority::default())
                                .with_deadline(SimTime::from_secs(j)),
                        );
                        prop_assert_eq!(res.is_err(), was_running);
                    }
                    Op::Release(s) => {
                        let slot = SlotId::new(s);
                        let was_running = t.get(slot).is_running();
                        prop_assert_eq!(t.release(slot).is_err(), was_running);
                    }
                    Op::Expire(at) => {
                        let freed = t.expire_reservations(SimTime::from_secs(at));
                        for f in freed {
                            prop_assert!(t.get(f).is_free());
                        }
                    }
                }
                let (free, running, reserved) = t.counts();
                prop_assert_eq!(free + running + reserved, t.len());
            }
        }
    }
}
