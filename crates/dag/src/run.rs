//! Runtime execution tracking for one job: barrier clearing and the ready
//! frontier.

use std::fmt;

use crate::ids::{JobId, StageId};
use crate::spec::JobSpec;

/// Lifecycle of one phase inside a running job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageState {
    /// At least one upstream phase has not completed — the barrier holds.
    Blocked,
    /// All upstream phases completed; tasks may be submitted.
    Ready,
    /// Every task of the phase has completed.
    Completed,
}

impl fmt::Display for StageState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StageState::Blocked => "blocked",
            StageState::Ready => "ready",
            StageState::Completed => "completed",
        };
        f.write_str(s)
    }
}

/// Tracks the execution of one job's DAG: which phases are blocked behind a
/// barrier, which are ready, and how many tasks of each have completed.
///
/// This is the structure the paper's `DAGScheduler` maintains; the
/// scheduler submits a phase's task set exactly when the phase becomes
/// [`StageState::Ready`] (in Spark, downstream tasks are not submitted
/// before the barrier has cleared — §II-A).
///
/// # Example
///
/// ```
/// use ssr_dag::{JobId, JobRun, JobSpecBuilder, StageId, StageState};
/// use ssr_simcore::dist::constant;
///
/// let spec = JobSpecBuilder::new("two-phase")
///     .stage("map", 2, constant(1.0))
///     .stage("reduce", 2, constant(1.0))
///     .chain()
///     .build()?;
/// let mut run = JobRun::new(JobId::new(1), spec);
///
/// let map = StageId::new(0);
/// let reduce = StageId::new(1);
/// assert_eq!(run.state(reduce), StageState::Blocked);
///
/// assert!(run.on_task_completed(map).is_empty()); // barrier still holds
/// let ready = run.on_task_completed(map);          // second of two tasks
/// assert_eq!(ready, vec![reduce]);                 // barrier cleared
/// # Ok::<(), ssr_dag::DagError>(())
/// ```
#[derive(Debug, Clone)]
pub struct JobRun {
    id: JobId,
    spec: JobSpec,
    state: Vec<StageState>,
    completed: Vec<u32>,
}

impl JobRun {
    /// Starts tracking a job; root phases are immediately ready.
    pub fn new(id: JobId, spec: JobSpec) -> Self {
        let n = spec.stages().len();
        let mut state = vec![StageState::Blocked; n];
        for s in spec.roots() {
            state[s.index()] = StageState::Ready;
        }
        JobRun { id, spec, state, completed: vec![0; n] }
    }

    /// The job id this run tracks.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The underlying specification.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// Current lifecycle state of `stage`.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range for this job.
    pub fn state(&self, stage: StageId) -> StageState {
        self.state[stage.index()]
    }

    /// Number of completed tasks in `stage`.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range for this job.
    pub fn completed_tasks(&self, stage: StageId) -> u32 {
        self.completed[stage.index()]
    }

    /// Tasks of `stage` that have not yet completed.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range for this job.
    pub fn remaining_tasks(&self, stage: StageId) -> u32 {
        self.spec.stage(stage).parallelism() - self.completed[stage.index()]
    }

    /// Fraction of `stage`'s tasks that have completed, in `[0, 1]` — the
    /// quantity compared against the pre-reservation threshold `R` in
    /// Algorithm 1 (line 16).
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range for this job.
    pub fn finished_fraction(&self, stage: StageId) -> f64 {
        self.completed[stage.index()] as f64 / self.spec.stage(stage).parallelism() as f64
    }

    /// Records the completion of one task of `stage` and returns the phases
    /// whose barriers cleared as a result (now [`StageState::Ready`]).
    ///
    /// # Panics
    ///
    /// Panics if `stage` is not currently [`StageState::Ready`] (a task of
    /// a blocked or completed phase cannot finish) or if more completions
    /// are recorded than the phase has tasks.
    pub fn on_task_completed(&mut self, stage: StageId) -> Vec<StageId> {
        assert_eq!(
            self.state[stage.index()],
            StageState::Ready,
            "task completion recorded for {stage} which is not running"
        );
        let parallelism = self.spec.stage(stage).parallelism();
        assert!(
            self.completed[stage.index()] < parallelism,
            "{stage} already has all {parallelism} tasks completed"
        );
        self.completed[stage.index()] += 1;
        if self.completed[stage.index()] < parallelism {
            return Vec::new();
        }
        // Barrier source completed: unblock any child whose parents are all
        // complete.
        self.state[stage.index()] = StageState::Completed;
        let mut newly_ready = Vec::new();
        for &child in self.spec.children(stage) {
            let all_parents_done = self
                .spec
                .parents(child)
                .iter()
                .all(|p| self.state[p.index()] == StageState::Completed);
            if all_parents_done && self.state[child.index()] == StageState::Blocked {
                self.state[child.index()] = StageState::Ready;
                newly_ready.push(child);
            }
        }
        newly_ready
    }

    /// `true` once every phase has completed.
    pub fn is_complete(&self) -> bool {
        self.state.iter().all(|&s| s == StageState::Completed)
    }

    /// All phases currently ready but not completed.
    pub fn ready_stages(&self) -> Vec<StageId> {
        self.spec
            .iter_stage_ids()
            .filter(|&s| self.state[s.index()] == StageState::Ready)
            .collect()
    }

    /// Total tasks completed across all phases.
    pub fn total_completed(&self) -> u64 {
        self.completed.iter().map(|&c| c as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobSpecBuilder;
    use ssr_simcore::dist::constant;

    fn two_phase() -> JobRun {
        let spec = JobSpecBuilder::new("t")
            .stage("a", 3, constant(1.0))
            .stage("b", 2, constant(1.0))
            .chain()
            .build()
            .unwrap();
        JobRun::new(JobId::new(1), spec)
    }

    #[test]
    fn roots_start_ready() {
        let run = two_phase();
        assert_eq!(run.state(StageId::new(0)), StageState::Ready);
        assert_eq!(run.state(StageId::new(1)), StageState::Blocked);
        assert_eq!(run.ready_stages(), vec![StageId::new(0)]);
    }

    #[test]
    fn barrier_clears_only_after_all_tasks() {
        let mut run = two_phase();
        let a = StageId::new(0);
        assert!(run.on_task_completed(a).is_empty());
        assert!(run.on_task_completed(a).is_empty());
        assert_eq!(run.finished_fraction(a), 2.0 / 3.0);
        let ready = run.on_task_completed(a);
        assert_eq!(ready, vec![StageId::new(1)]);
        assert_eq!(run.state(a), StageState::Completed);
    }

    #[test]
    fn job_completes_after_final_stage() {
        let mut run = two_phase();
        let (a, b) = (StageId::new(0), StageId::new(1));
        for _ in 0..3 {
            run.on_task_completed(a);
        }
        assert!(!run.is_complete());
        run.on_task_completed(b);
        run.on_task_completed(b);
        assert!(run.is_complete());
        assert_eq!(run.total_completed(), 5);
    }

    #[test]
    fn diamond_join_waits_for_both_parents() {
        let spec = JobSpecBuilder::new("d")
            .stage("a", 1, constant(1.0))
            .stage("b", 1, constant(1.0))
            .stage("join", 1, constant(1.0))
            .edge(0, 2)
            .edge(1, 2)
            .build()
            .unwrap();
        let mut run = JobRun::new(JobId::new(2), spec);
        assert!(run.on_task_completed(StageId::new(0)).is_empty());
        assert_eq!(run.state(StageId::new(2)), StageState::Blocked);
        let ready = run.on_task_completed(StageId::new(1));
        assert_eq!(ready, vec![StageId::new(2)]);
    }

    #[test]
    #[should_panic(expected = "not running")]
    fn completion_on_blocked_stage_panics() {
        let mut run = two_phase();
        run.on_task_completed(StageId::new(1));
    }

    #[test]
    #[should_panic(expected = "not running")]
    fn over_completion_panics() {
        let spec = JobSpecBuilder::new("s")
            .stage("only", 1, constant(1.0))
            .build()
            .unwrap();
        let mut run = JobRun::new(JobId::new(3), spec);
        run.on_task_completed(StageId::new(0));
        // Stage is now Completed, so the state assertion fires first; build
        // a fresh single-stage run where the count assertion is reachable is
        // impossible by construction — the state machine protects it. This
        // test documents the panic path via the state check instead.
        run.on_task_completed(StageId::new(0));
    }

    #[test]
    fn remaining_tasks_counts_down() {
        let mut run = two_phase();
        let a = StageId::new(0);
        assert_eq!(run.remaining_tasks(a), 3);
        run.on_task_completed(a);
        assert_eq!(run.remaining_tasks(a), 2);
        assert_eq!(run.completed_tasks(a), 1);
    }

    #[test]
    fn multi_root_ready_from_start() {
        let spec = JobSpecBuilder::new("m")
            .stage("a", 1, constant(1.0))
            .stage("b", 1, constant(1.0))
            .build()
            .unwrap();
        let run = JobRun::new(JobId::new(4), spec);
        assert_eq!(run.ready_stages().len(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::spec::JobSpecBuilder;
    use proptest::prelude::*;
    use ssr_simcore::dist::constant;

    proptest! {
        /// Driving any forward-edge DAG to completion by repeatedly finishing
        /// tasks of ready stages always terminates with every stage complete,
        /// and a stage never becomes ready before all parents complete.
        #[test]
        fn any_dag_drains(
            n in 1usize..8,
            par in proptest::collection::vec(1u32..4, 8),
            edges in proptest::collection::vec((0u32..8, 0u32..8), 0..20),
        ) {
            let mut b = JobSpecBuilder::new("drain");
            for (i, &p) in par.iter().enumerate().take(n) {
                b = b.stage(format!("s{i}"), p, constant(1.0));
            }
            for (a, d) in edges {
                let (a, d) = (a % n as u32, d % n as u32);
                if a < d {
                    b = b.edge(a, d);
                }
            }
            let spec = b.build().unwrap();
            let mut run = JobRun::new(JobId::new(9), spec.clone());
            let mut safety = 0;
            while !run.is_complete() {
                safety += 1;
                prop_assert!(safety < 10_000, "run did not drain");
                let ready = run.ready_stages();
                prop_assert!(!ready.is_empty(), "deadlock: nothing ready but incomplete");
                let s = ready[0];
                // Invariant: all parents of a ready stage are complete.
                for &p in spec.parents(s) {
                    prop_assert_eq!(run.state(p), StageState::Completed);
                }
                run.on_task_completed(s);
            }
            prop_assert_eq!(run.total_completed(), spec.total_tasks());
        }
    }
}
