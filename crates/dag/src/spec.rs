//! Immutable job specifications: validated workflow DAGs of phases.

use std::fmt;
use std::sync::Arc;

use ssr_simcore::dist::DynDistribution;
use ssr_simcore::SimTime;

use crate::ids::{JobId, Priority, StageId};

/// Error produced when a job specification fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// The job declares no phases.
    Empty,
    /// A phase declares zero tasks.
    ZeroParallelism {
        /// The offending phase.
        stage: StageId,
    },
    /// An edge references a phase index that does not exist.
    EdgeOutOfRange {
        /// The out-of-range endpoint.
        stage: u32,
        /// Number of declared phases.
        stages: usize,
    },
    /// An edge connects a phase to itself.
    SelfLoop {
        /// The offending phase.
        stage: StageId,
    },
    /// The dependency graph contains a cycle.
    Cycle,
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::Empty => write!(f, "job must declare at least one phase"),
            DagError::ZeroParallelism { stage } => {
                write!(f, "{stage} declares zero tasks; parallelism must be at least 1")
            }
            DagError::EdgeOutOfRange { stage, stages } => {
                write!(f, "edge references stage index {stage}, but only {stages} stages exist")
            }
            DagError::SelfLoop { stage } => write!(f, "{stage} depends on itself"),
            DagError::Cycle => write!(f, "phase dependencies form a cycle"),
        }
    }
}

impl std::error::Error for DagError {}

/// One phase of a workflow job: a set of parallel tasks separated from its
/// downstream phases by a barrier.
#[derive(Debug, Clone)]
pub struct StageSpec {
    name: String,
    parallelism: u32,
    duration: DynDistribution,
    parallelism_known: bool,
    demand: u32,
}

impl StageSpec {
    /// Creates a phase with `parallelism` tasks whose intrinsic durations
    /// (in seconds, at best locality) are drawn from `duration`.
    ///
    /// By default the parallelism is *known a priori* to the scheduler
    /// (Algorithm 1, Case-2); see [`StageSpec::with_hidden_parallelism`].
    pub fn new(name: impl Into<String>, parallelism: u32, duration: DynDistribution) -> Self {
        StageSpec {
            name: name.into(),
            parallelism,
            duration,
            parallelism_known: true,
            demand: 1,
        }
    }

    /// Sets the per-task resource demand (§III-C): a task only fits slots
    /// of at least this size. Defaults to 1 (every slot fits).
    pub fn with_demand(mut self, demand: u32) -> Self {
        self.demand = demand;
        self
    }

    /// The per-task resource demand.
    pub fn demand(&self) -> u32 {
        self.demand
    }

    /// Marks the phase's degree of parallelism as *not* known to the
    /// scheduler ahead of time (Algorithm 1, Case-1: frameworks that decide
    /// parallelism at runtime). The simulator still knows the true value;
    /// only the reservation policy is blinded.
    pub fn with_hidden_parallelism(mut self) -> Self {
        self.parallelism_known = false;
        self
    }

    /// The phase name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of parallel tasks in the phase.
    pub fn parallelism(&self) -> u32 {
        self.parallelism
    }

    /// The intrinsic task-duration distribution (seconds at best locality).
    pub fn duration(&self) -> &DynDistribution {
        &self.duration
    }

    /// Whether the scheduler may read this phase's parallelism before it
    /// starts (paper §III-B, Case-2).
    pub fn parallelism_known(&self) -> bool {
        self.parallelism_known
    }
}

/// A validated, immutable workflow job specification.
///
/// Construct with [`JobSpecBuilder`]. Cheap to clone (stage table and
/// adjacency are shared).
#[derive(Debug, Clone)]
pub struct JobSpec {
    name: String,
    priority: Priority,
    arrival: SimTime,
    stages: Arc<[StageSpec]>,
    children: Arc<[Vec<StageId>]>,
    parents: Arc<[Vec<StageId>]>,
    topo: Arc<[StageId]>,
}

impl JobSpec {
    /// The job name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scheduling priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The submission time of the job.
    pub fn arrival(&self) -> SimTime {
        self.arrival
    }

    /// All phases, indexed by [`StageId::index`].
    pub fn stages(&self) -> &[StageSpec] {
        &self.stages
    }

    /// The phase with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range for this job.
    pub fn stage(&self, stage: StageId) -> &StageSpec {
        &self.stages[stage.index()]
    }

    /// Immediate downstream phases of `stage`.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range for this job.
    pub fn children(&self, stage: StageId) -> &[StageId] {
        &self.children[stage.index()]
    }

    /// Immediate upstream phases of `stage`.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range for this job.
    pub fn parents(&self, stage: StageId) -> &[StageId] {
        &self.parents[stage.index()]
    }

    /// Phases with no upstream dependencies (runnable at submission).
    pub fn roots(&self) -> Vec<StageId> {
        self.iter_stage_ids().filter(|&s| self.parents(s).is_empty()).collect()
    }

    /// `true` if `stage` has no downstream phases — Algorithm 1 releases
    /// slots of final phases unconditionally.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range for this job.
    pub fn is_final(&self, stage: StageId) -> bool {
        self.children(stage).is_empty()
    }

    /// Phases in a topological (execution-plan) order.
    ///
    /// The paper's `DAGScheduler` constructs this plan by backward DFS from
    /// the final vertex; any topological order is equivalent for
    /// scheduling, and ours is deterministic (stable by declaration index).
    pub fn execution_plan(&self) -> &[StageId] {
        &self.topo
    }

    /// Iterator over all stage ids in declaration order.
    pub fn iter_stage_ids(&self) -> impl Iterator<Item = StageId> + '_ {
        (0..self.stages.len() as u32).map(StageId::new)
    }

    /// Total number of tasks across all phases.
    pub fn total_tasks(&self) -> u64 {
        self.stages.iter().map(|s| s.parallelism() as u64).sum()
    }

    /// The combined parallelism of the phases immediately downstream of
    /// `stage` — the `n` of Algorithm 1 — or `None` if any of them hides
    /// its parallelism (Case-1) or if the stage is final.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range for this job.
    pub fn downstream_parallelism(&self, stage: StageId) -> Option<u64> {
        let children = self.children(stage);
        if children.is_empty() {
            return None;
        }
        let mut total = 0u64;
        for &c in children {
            let spec = self.stage(c);
            if !spec.parallelism_known() {
                return None;
            }
            total += spec.parallelism() as u64;
        }
        Some(total)
    }

    /// The largest per-task resource demand among the phases immediately
    /// downstream of `stage` — the "right size" of §III-C — or `None` if
    /// the stage is final.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range for this job.
    pub fn downstream_demand(&self, stage: StageId) -> Option<u32> {
        self.children(stage).iter().map(|&c| self.stage(c).demand()).max()
    }

    /// The length (in phases) of the longest dependency chain.
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.stages.len()];
        for &s in self.topo.iter() {
            let d = self
                .parents(s)
                .iter()
                .map(|p| depth[p.index()] + 1)
                .max()
                .unwrap_or(1);
            depth[s.index()] = d.max(1);
        }
        depth.into_iter().max().unwrap_or(0)
    }
}

/// Builder for [`JobSpec`] that validates the DAG at
/// [`build`](JobSpecBuilder::build) time.
///
/// # Example
///
/// ```
/// use ssr_dag::{JobSpecBuilder, StageId};
/// use ssr_simcore::dist::constant;
///
/// // A diamond: scan fans out to two filters that join.
/// let spec = JobSpecBuilder::new("diamond")
///     .stage("scan", 8, constant(1.0))    // stage 0
///     .stage("filter-a", 4, constant(1.0)) // stage 1
///     .stage("filter-b", 4, constant(1.0)) // stage 2
///     .stage("join", 8, constant(2.0))     // stage 3
///     .edge(0, 1)
///     .edge(0, 2)
///     .edge(1, 3)
///     .edge(2, 3)
///     .build()?;
/// assert_eq!(spec.downstream_parallelism(StageId::new(0)), Some(8));
/// assert!(spec.is_final(StageId::new(3)));
/// # Ok::<(), ssr_dag::DagError>(())
/// ```
#[derive(Debug)]
pub struct JobSpecBuilder {
    name: String,
    priority: Priority,
    arrival: SimTime,
    stages: Vec<StageSpec>,
    edges: Vec<(u32, u32)>,
}

impl JobSpecBuilder {
    /// Starts building a job with the given name, default priority 0 and
    /// arrival at time zero.
    pub fn new(name: impl Into<String>) -> Self {
        JobSpecBuilder {
            name: name.into(),
            priority: Priority::default(),
            arrival: SimTime::ZERO,
            stages: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Sets the scheduling priority.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the submission time.
    pub fn arrival(mut self, arrival: SimTime) -> Self {
        self.arrival = arrival;
        self
    }

    /// Appends a phase; phases are numbered in declaration order.
    pub fn stage(
        mut self,
        name: impl Into<String>,
        parallelism: u32,
        duration: DynDistribution,
    ) -> Self {
        self.stages.push(StageSpec::new(name, parallelism, duration));
        self
    }

    /// Appends a pre-built phase specification.
    pub fn stage_spec(mut self, stage: StageSpec) -> Self {
        self.stages.push(stage);
        self
    }

    /// Adds a dependency edge: `downstream` may only start after every task
    /// of `upstream` has completed (the barrier).
    pub fn edge(mut self, upstream: u32, downstream: u32) -> Self {
        self.edges.push((upstream, downstream));
        self
    }

    /// Connects all declared phases in a linear pipeline
    /// (`0 -> 1 -> … -> last`), the dominant shape in the paper's
    /// workloads.
    pub fn chain(mut self) -> Self {
        for i in 1..self.stages.len() as u32 {
            self.edges.push((i - 1, i));
        }
        self
    }

    /// Hides the parallelism of every declared phase from the scheduler
    /// (forces Algorithm 1 into Case-1 for the whole job).
    pub fn hide_parallelism(mut self) -> Self {
        for s in &mut self.stages {
            *s = s.clone().with_hidden_parallelism();
        }
        self
    }

    /// Validates and builds the [`JobSpec`].
    ///
    /// # Errors
    ///
    /// Returns a [`DagError`] if the job has no phases, a phase has zero
    /// parallelism, an edge is out of range or a self-loop, or the graph is
    /// cyclic. Duplicate edges are tolerated and deduplicated.
    pub fn build(self) -> Result<JobSpec, DagError> {
        if self.stages.is_empty() {
            return Err(DagError::Empty);
        }
        let n = self.stages.len();
        for (i, s) in self.stages.iter().enumerate() {
            if s.parallelism() == 0 {
                return Err(DagError::ZeroParallelism { stage: StageId::new(i as u32) });
            }
        }
        let mut children: Vec<Vec<StageId>> = vec![Vec::new(); n];
        let mut parents: Vec<Vec<StageId>> = vec![Vec::new(); n];
        for &(u, d) in &self.edges {
            if u as usize >= n {
                return Err(DagError::EdgeOutOfRange { stage: u, stages: n });
            }
            if d as usize >= n {
                return Err(DagError::EdgeOutOfRange { stage: d, stages: n });
            }
            if u == d {
                return Err(DagError::SelfLoop { stage: StageId::new(u) });
            }
            let (us, ds) = (StageId::new(u), StageId::new(d));
            if !children[u as usize].contains(&ds) {
                children[u as usize].push(ds);
                parents[d as usize].push(us);
            }
        }
        for list in children.iter_mut().chain(parents.iter_mut()) {
            list.sort_unstable();
        }

        // Kahn's algorithm, visiting lowest stage index first so the plan is
        // deterministic.
        let mut indegree: Vec<usize> = parents.iter().map(Vec::len).collect();
        let mut queue: Vec<StageId> = (0..n as u32)
            .map(StageId::new)
            .filter(|s| indegree[s.index()] == 0)
            .collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(&s) = queue.iter().min() {
            let pos = queue.iter().position(|&x| x == s).expect("s taken from queue");
            queue.swap_remove(pos);
            topo.push(s);
            for &c in &children[s.index()] {
                indegree[c.index()] -= 1;
                if indegree[c.index()] == 0 {
                    queue.push(c);
                }
            }
        }
        if topo.len() != n {
            return Err(DagError::Cycle);
        }

        Ok(JobSpec {
            name: self.name,
            priority: self.priority,
            arrival: self.arrival,
            stages: self.stages.into(),
            children: children.into(),
            parents: parents.into(),
            topo: topo.into(),
        })
    }
}

/// A job spec paired with the id it was admitted under; produced by the
/// scheduler when a job is submitted.
#[derive(Debug, Clone)]
pub struct SubmittedJob {
    /// The id assigned at submission.
    pub id: JobId,
    /// The job description.
    pub spec: JobSpec,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_simcore::dist::constant;

    fn pipeline(n: usize) -> JobSpec {
        let mut b = JobSpecBuilder::new("p");
        for i in 0..n {
            b = b.stage(format!("s{i}"), 4, constant(1.0));
        }
        b.chain().build().unwrap()
    }

    #[test]
    fn empty_job_rejected() {
        assert_eq!(JobSpecBuilder::new("e").build().unwrap_err(), DagError::Empty);
    }

    #[test]
    fn zero_parallelism_rejected() {
        let err = JobSpecBuilder::new("z").stage("s", 0, constant(1.0)).build().unwrap_err();
        assert_eq!(err, DagError::ZeroParallelism { stage: StageId::new(0) });
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let err = JobSpecBuilder::new("o")
            .stage("s", 1, constant(1.0))
            .edge(0, 5)
            .build()
            .unwrap_err();
        assert_eq!(err, DagError::EdgeOutOfRange { stage: 5, stages: 1 });
    }

    #[test]
    fn self_loop_rejected() {
        let err = JobSpecBuilder::new("l")
            .stage("s", 1, constant(1.0))
            .edge(0, 0)
            .build()
            .unwrap_err();
        assert_eq!(err, DagError::SelfLoop { stage: StageId::new(0) });
    }

    #[test]
    fn cycle_rejected() {
        let err = JobSpecBuilder::new("c")
            .stage("a", 1, constant(1.0))
            .stage("b", 1, constant(1.0))
            .edge(0, 1)
            .edge(1, 0)
            .build()
            .unwrap_err();
        assert_eq!(err, DagError::Cycle);
    }

    #[test]
    fn duplicate_edges_deduplicated() {
        let spec = JobSpecBuilder::new("d")
            .stage("a", 2, constant(1.0))
            .stage("b", 2, constant(1.0))
            .edge(0, 1)
            .edge(0, 1)
            .build()
            .unwrap();
        assert_eq!(spec.children(StageId::new(0)).len(), 1);
        assert_eq!(spec.parents(StageId::new(1)).len(), 1);
    }

    #[test]
    fn chain_builds_linear_pipeline() {
        let spec = pipeline(4);
        assert_eq!(spec.roots(), vec![StageId::new(0)]);
        assert!(spec.is_final(StageId::new(3)));
        assert!(!spec.is_final(StageId::new(0)));
        assert_eq!(spec.depth(), 4);
        assert_eq!(spec.total_tasks(), 16);
    }

    #[test]
    fn execution_plan_is_topological() {
        let spec = JobSpecBuilder::new("d")
            .stage("scan", 4, constant(1.0))
            .stage("fa", 2, constant(1.0))
            .stage("fb", 2, constant(1.0))
            .stage("join", 4, constant(1.0))
            .edge(0, 1)
            .edge(0, 2)
            .edge(1, 3)
            .edge(2, 3)
            .build()
            .unwrap();
        let plan = spec.execution_plan();
        let pos = |s: StageId| plan.iter().position(|&x| x == s).unwrap();
        for s in spec.iter_stage_ids() {
            for &c in spec.children(s) {
                assert!(pos(s) < pos(c), "{s} must precede {c}");
            }
        }
    }

    #[test]
    fn downstream_parallelism_sums_children() {
        let spec = JobSpecBuilder::new("d")
            .stage("a", 4, constant(1.0))
            .stage("b", 3, constant(1.0))
            .stage("c", 5, constant(1.0))
            .edge(0, 1)
            .edge(0, 2)
            .build()
            .unwrap();
        assert_eq!(spec.downstream_parallelism(StageId::new(0)), Some(8));
        assert_eq!(spec.downstream_parallelism(StageId::new(1)), None); // final
    }

    #[test]
    fn hidden_parallelism_yields_unknown_downstream() {
        let spec = JobSpecBuilder::new("h")
            .stage("a", 4, constant(1.0))
            .stage_spec(StageSpec::new("b", 4, constant(1.0)).with_hidden_parallelism())
            .chain()
            .build()
            .unwrap();
        assert_eq!(spec.downstream_parallelism(StageId::new(0)), None);
        assert!(!spec.stage(StageId::new(1)).parallelism_known());
    }

    #[test]
    fn hide_parallelism_blinds_all_stages() {
        let spec = JobSpecBuilder::new("h")
            .stage("a", 2, constant(1.0))
            .stage("b", 2, constant(1.0))
            .chain()
            .hide_parallelism()
            .build()
            .unwrap();
        assert!(spec.stages().iter().all(|s| !s.parallelism_known()));
    }

    #[test]
    fn multi_root_dag() {
        let spec = JobSpecBuilder::new("m")
            .stage("a", 1, constant(1.0))
            .stage("b", 1, constant(1.0))
            .stage("join", 1, constant(1.0))
            .edge(0, 2)
            .edge(1, 2)
            .build()
            .unwrap();
        assert_eq!(spec.roots(), vec![StageId::new(0), StageId::new(1)]);
        assert_eq!(spec.depth(), 2);
        assert_eq!(spec.parents(StageId::new(2)).len(), 2);
    }

    #[test]
    fn demands_default_and_propagate() {
        let spec = JobSpecBuilder::new("d")
            .stage("small", 4, constant(1.0))
            .stage_spec(StageSpec::new("big", 2, constant(1.0)).with_demand(4))
            .chain()
            .build()
            .unwrap();
        assert_eq!(spec.stage(StageId::new(0)).demand(), 1);
        assert_eq!(spec.stage(StageId::new(1)).demand(), 4);
        assert_eq!(spec.downstream_demand(StageId::new(0)), Some(4));
        assert_eq!(spec.downstream_demand(StageId::new(1)), None);
    }

    #[test]
    fn downstream_demand_takes_max_over_children() {
        let spec = JobSpecBuilder::new("d")
            .stage("root", 2, constant(1.0))
            .stage_spec(StageSpec::new("a", 1, constant(1.0)).with_demand(2))
            .stage_spec(StageSpec::new("b", 1, constant(1.0)).with_demand(5))
            .edge(0, 1)
            .edge(0, 2)
            .build()
            .unwrap();
        assert_eq!(spec.downstream_demand(StageId::new(0)), Some(5));
    }

    #[test]
    fn error_display_messages() {
        assert!(format!("{}", DagError::Empty).contains("at least one"));
        assert!(format!("{}", DagError::Cycle).contains("cycle"));
        assert!(
            format!("{}", DagError::ZeroParallelism { stage: StageId::new(1) }).contains("stage-1")
        );
    }

    #[test]
    fn builder_metadata_propagates() {
        let spec = JobSpecBuilder::new("meta")
            .priority(Priority::new(7))
            .arrival(SimTime::from_secs(30))
            .stage("only", 2, constant(1.0))
            .build()
            .unwrap();
        assert_eq!(spec.name(), "meta");
        assert_eq!(spec.priority(), Priority::new(7));
        assert_eq!(spec.arrival(), SimTime::from_secs(30));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use ssr_simcore::dist::constant;

    proptest! {
        /// Random forward-only edge sets always validate, and the plan is a
        /// topological order.
        #[test]
        fn forward_edges_always_acyclic(
            n in 1usize..12,
            edges in proptest::collection::vec((0u32..12, 0u32..12), 0..40),
        ) {
            let mut b = JobSpecBuilder::new("prop");
            for i in 0..n {
                b = b.stage(format!("s{i}"), 1, constant(1.0));
            }
            // Orient every in-range pair low -> high: guaranteed acyclic.
            for (a, d) in edges {
                let (a, d) = (a % n as u32, d % n as u32);
                if a < d {
                    b = b.edge(a, d);
                }
            }
            let spec = b.build().expect("forward-only DAG must validate");
            let plan = spec.execution_plan();
            prop_assert_eq!(plan.len(), n);
            let pos = |s: StageId| plan.iter().position(|&x| x == s).unwrap();
            for s in spec.iter_stage_ids() {
                for &c in spec.children(s) {
                    prop_assert!(pos(s) < pos(c));
                }
            }
        }

        /// children/parents are mutually consistent on random DAGs.
        #[test]
        fn adjacency_is_symmetric(
            n in 1usize..10,
            edges in proptest::collection::vec((0u32..10, 0u32..10), 0..30),
        ) {
            let mut b = JobSpecBuilder::new("sym");
            for i in 0..n {
                b = b.stage(format!("s{i}"), 1, constant(1.0));
            }
            for (a, d) in edges {
                let (a, d) = (a % n as u32, d % n as u32);
                if a < d {
                    b = b.edge(a, d);
                }
            }
            let spec = b.build().unwrap();
            for s in spec.iter_stage_ids() {
                for &c in spec.children(s) {
                    prop_assert!(spec.parents(c).contains(&s));
                }
                for &p in spec.parents(s) {
                    prop_assert!(spec.children(p).contains(&s));
                }
            }
        }
    }
}
