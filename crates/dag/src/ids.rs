//! Typed identifiers for jobs, phases and tasks, plus the scheduling
//! priority.

use std::fmt;

/// A cluster-unique job (application) identifier.
///
/// In the paper a *job* is an application (e.g. one KMeans run), not a
/// single Spark action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(u64);

impl JobId {
    /// Creates a job id from a raw value.
    pub const fn new(raw: u64) -> Self {
        JobId(raw)
    }

    /// The raw value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// A phase (stage) index within one job; phases are numbered in the order
/// they were declared to the builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StageId(u32);

impl StageId {
    /// Creates a stage id from a raw index.
    pub const fn new(raw: u32) -> Self {
        StageId(raw)
    }

    /// The raw index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// The index as `usize`, for slice addressing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stage-{}", self.0)
    }
}

/// A task identifier: job + phase + partition index within the phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId {
    /// The owning job.
    pub job: JobId,
    /// The phase this task belongs to.
    pub stage: StageId,
    /// The partition index within the phase, `0..parallelism`.
    pub partition: u32,
}

impl TaskId {
    /// Creates a task id.
    pub const fn new(job: JobId, stage: StageId, partition: u32) -> Self {
        TaskId { job, stage, partition }
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/task-{}", self.job, self.stage, self.partition)
    }
}

/// A scheduling priority; **larger is more important**.
///
/// The paper's foreground (latency-sensitive) jobs receive a higher
/// priority than background (batch) jobs. Reserved slots inherit the
/// priority of the reserving job and may only be overridden by a strictly
/// higher priority (§III-B, "Support of priority scheduling").
///
/// # Example
///
/// ```
/// use ssr_dag::Priority;
///
/// let fg = Priority::new(10);
/// let bg = Priority::new(0);
/// assert!(fg > bg);
/// assert_eq!(Priority::default(), Priority::new(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Priority(i32);

impl Priority {
    /// The lowest possible priority.
    pub const MIN: Priority = Priority(i32::MIN);
    /// The highest possible priority.
    pub const MAX: Priority = Priority(i32::MAX);

    /// Creates a priority from a raw level; larger is more important.
    pub const fn new(level: i32) -> Self {
        Priority(level)
    }

    /// The raw level.
    pub const fn level(self) -> i32 {
        self.0
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_round_trip() {
        assert_eq!(JobId::new(7).as_u64(), 7);
        assert_eq!(StageId::new(3).as_u32(), 3);
        assert_eq!(StageId::new(3).index(), 3);
    }

    #[test]
    fn display_formats() {
        let t = TaskId::new(JobId::new(1), StageId::new(2), 5);
        assert_eq!(format!("{t}"), "job-1/stage-2/task-5");
        assert_eq!(format!("{}", Priority::new(-3)), "prio(-3)");
    }

    #[test]
    fn priority_orders_by_level() {
        assert!(Priority::new(5) > Priority::new(4));
        assert!(Priority::MIN < Priority::default());
        assert!(Priority::default() < Priority::MAX);
    }

    #[test]
    fn task_ids_are_hashable_and_distinct() {
        let mut set = HashSet::new();
        for p in 0..4 {
            set.insert(TaskId::new(JobId::new(1), StageId::new(0), p));
        }
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn stage_ordering_follows_index() {
        assert!(StageId::new(0) < StageId::new(1));
    }
}
