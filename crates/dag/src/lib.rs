//! # ssr-dag
//!
//! The workflow model for the speculative-slot-reservation (SSR)
//! reproduction: jobs as DAGs of *phases* (Spark calls them stages), each
//! phase a set of parallel tasks, with a **barrier** between dependent
//! phases — a downstream phase cannot start until *all* tasks of every
//! upstream phase have completed (paper §II-A).
//!
//! The crate has three layers:
//!
//! * [`ids`] — typed identifiers ([`JobId`], [`StageId`], [`TaskId`]) and the
//!   scheduling [`Priority`],
//! * [`spec`] — immutable job descriptions ([`JobSpec`], [`StageSpec`]) with
//!   a validated-DAG builder ([`JobSpecBuilder`]),
//! * [`run`] — runtime execution tracking ([`JobRun`]) that clears barriers
//!   and exposes the ready frontier as tasks complete.
//!
//! # Example
//!
//! ```
//! use ssr_dag::{JobSpecBuilder, Priority};
//! use ssr_simcore::dist::constant;
//!
//! // A three-phase pipeline: map -> shuffle -> reduce.
//! let spec = JobSpecBuilder::new("etl")
//!     .priority(Priority::new(10))
//!     .stage("map", 8, constant(2.0))
//!     .stage("shuffle", 8, constant(1.0))
//!     .stage("reduce", 4, constant(3.0))
//!     .chain()
//!     .build()?;
//! assert_eq!(spec.stages().len(), 3);
//! assert_eq!(spec.total_tasks(), 20);
//! # Ok::<(), ssr_dag::DagError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ids;
pub mod run;
pub mod spec;

pub use ids::{JobId, Priority, StageId, TaskId};
pub use run::{JobRun, StageState};
pub use spec::{DagError, JobSpec, JobSpecBuilder, StageSpec};
