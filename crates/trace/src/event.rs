//! Typed scheduler decision-trace events.
//!
//! Every scheduling decision the engine makes — offer rounds, per-candidate
//! denials, reservation lifecycle transitions, speculation, barrier clears —
//! maps onto exactly one [`TraceEventKind`] variant. Events are timestamped
//! with simulated time only; the emit path never consults the wall clock, so
//! a trace is a pure function of (workload, seed, policy).

use ssr_dag::{JobId, Priority, StageId};
use ssr_simcore::SimTime;

/// Why an offer round declined to place a task for a candidate job.
///
/// The reason is computed by the engine only when tracing is enabled, by
/// re-examining the slot pool from the declined job's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DenyReason {
    /// The job has no task set with pending (unlaunched) tasks.
    NoPendingTasks,
    /// A fitting slot exists, but delay scheduling has not yet unlocked the
    /// locality level that would allow the job to take it.
    LocalityWait,
    /// The only fitting slots are reserved for other jobs and the active
    /// policy's `ApprovalLogic` denied the hand-over.
    ReservationDenied,
    /// No free or reserved slot in the cluster fits the job's minimum share.
    NoFittingSlot,
}

impl DenyReason {
    /// Stable kebab-case identifier used in the JSONL schema.
    pub fn as_str(self) -> &'static str {
        match self {
            DenyReason::NoPendingTasks => "no-pending-tasks",
            DenyReason::LocalityWait => "locality-wait",
            DenyReason::ReservationDenied => "reservation-denied",
            DenyReason::NoFittingSlot => "no-fitting-slot",
        }
    }
}

impl std::fmt::Display for DenyReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Static description of one stage of a submitted job, carried on
/// [`TraceEventKind::JobSubmitted`] (schema v2).
///
/// Together the per-stage entries reproduce the job's DAG shape, which is
/// what lets `ssr-explain` reconstruct pending-task counts and the stage
/// critical path from the trace alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageMeta {
    /// Partition (task) count of the stage.
    pub tasks: u32,
    /// Upstream stages that must complete before this stage can start.
    /// Empty for root stages.
    pub parents: Vec<StageId>,
}

/// One scheduler decision, without its timestamp.
///
/// Field names mirror the JSONL schema (see [`crate::JsonlSink`]); identifiers
/// are carried as raw ids (`JobId`, `StageId`, slot index) so sinks can decide
/// how to render them.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// A job entered the scheduler (`TaskScheduler::submit*`).
    JobSubmitted {
        /// Scheduler-assigned job id.
        job: JobId,
        /// Human-readable job name from the DAG.
        name: String,
        /// Submission priority.
        priority: Priority,
        /// Per-stage task counts and DAG edges, indexed by stage id
        /// (schema v2; empty when read from a v1 trace).
        stages: Vec<StageMeta>,
    },
    /// `resource_offers` began; counts are the pool state entering the round
    /// (after pre-reservation fill).
    OfferRoundStarted {
        /// Free slots at round start.
        free: usize,
        /// Running (occupied) slots at round start.
        running: usize,
        /// Reserved-idle slots at round start.
        reserved: usize,
    },
    /// `resource_offers` finished, having produced this many assignments.
    OfferRoundEnded {
        /// Number of task launches (incl. speculative) this round.
        assignments: usize,
    },
    /// A candidate job was dropped from the current offer round.
    OfferDeclined {
        /// The declined job.
        job: JobId,
        /// The policy/engine reason for the denial.
        reason: DenyReason,
        /// The lowest-id stage with pending tasks that failed to place
        /// (schema v2; `None` when the job had no pending stage or when
        /// read from a v1 trace).
        stage: Option<StageId>,
    },
    /// A task instance started running on a slot.
    TaskLaunched {
        /// Slot index the instance occupies.
        slot: u32,
        /// Owning job.
        job: JobId,
        /// Stage within the job.
        stage: StageId,
        /// Partition (task index) within the stage.
        partition: u32,
        /// Attempt number (0 = original, >0 = speculative copy).
        attempt: u32,
        /// Delay-scheduling locality level the placement satisfied.
        level: &'static str,
        /// Whether this launch is a speculative copy.
        speculative: bool,
        /// Whether the copy was seeded with the original's progress (warm).
        warm: bool,
    },
    /// A task instance finished and freed its slot.
    TaskFinished {
        /// Slot index the instance occupied.
        slot: u32,
        /// Owning job.
        job: JobId,
        /// Stage within the job.
        stage: StageId,
        /// Partition (task index) within the stage.
        partition: u32,
        /// Attempt number of the *winning* instance.
        attempt: u32,
        /// Simulated runtime of the instance, in seconds.
        duration_secs: f64,
    },
    /// A losing duplicate of a completed task was killed.
    CopyKilled {
        /// Slot index the loser occupied (now free).
        slot: u32,
        /// Owning job.
        job: JobId,
        /// Stage within the job.
        stage: StageId,
        /// Partition whose race resolved.
        partition: u32,
    },
    /// The policy reserved a slot on task completion (`SlotDisposition::Reserve`).
    ReservationGranted {
        /// Reserved slot.
        slot: u32,
        /// Job the slot is held for.
        job: JobId,
        /// Reservation priority.
        priority: Priority,
        /// Downstream stage the reservation is earmarked for, if any.
        stage: Option<StageId>,
        /// Expiry deadline in seconds, if the reservation is leased.
        deadline_secs: Option<f64>,
    },
    /// A pending pre-reservation claimed a free slot
    /// (`TaskScheduler::fill_prereservations`).
    PrereserveFilled {
        /// Newly reserved slot.
        slot: u32,
        /// Job the slot is held for.
        job: JobId,
        /// Downstream stage the reservation is earmarked for.
        stage: StageId,
        /// Reservation priority.
        priority: Priority,
        /// Expiry deadline in seconds, if the request carried one.
        deadline_secs: Option<f64>,
    },
    /// A leased reservation hit its deadline and was returned to the free pool.
    ReservationExpired {
        /// Freed slot.
        slot: u32,
        /// Job that held the reservation.
        job: JobId,
    },
    /// A reservation was released because its owning job completed.
    ReservationReleased {
        /// Freed slot.
        slot: u32,
        /// Job that held the reservation.
        job: JobId,
    },
    /// A reservation earmarked for a stage was released because that stage
    /// completed without consuming it.
    StaleReservationReleased {
        /// Freed slot.
        slot: u32,
        /// Job that held the reservation.
        job: JobId,
        /// The completed stage the reservation was earmarked for.
        stage: StageId,
    },
    /// All parents of a stage finished; the stage became schedulable.
    BarrierCleared {
        /// Owning job.
        job: JobId,
        /// The newly runnable stage.
        stage: StageId,
    },
    /// Every partition of a stage finished.
    StageCompleted {
        /// Owning job.
        job: JobId,
        /// The completed stage.
        stage: StageId,
    },
    /// Every stage of a job finished.
    JobCompleted {
        /// The completed job.
        job: JobId,
    },
    /// The delay-scheduling wait elapsed and the simulation woke the
    /// scheduler to retry placement at a relaxed locality level.
    LocalityUnlocked,
    /// A running task instance was lost to a fault (node crash, slot
    /// revocation, executor restart) before it could finish (schema v3).
    TaskCrashed {
        /// Slot index the instance occupied.
        slot: u32,
        /// Owning job.
        job: JobId,
        /// Stage within the job.
        stage: StageId,
        /// Partition (task index) within the stage.
        partition: u32,
        /// Attempt number of the lost instance.
        attempt: u32,
        /// Whether the partition went back onto the pending queue (false
        /// when a surviving duplicate is still running it, or the partition
        /// had already finished).
        requeued: bool,
    },
    /// A reservation was forcibly released because its slot was lost to a
    /// fault; distinct from expiry (deadline) and release (job completion)
    /// (schema v3).
    ReservationRevoked {
        /// The lost slot.
        slot: u32,
        /// Job that held the reservation.
        job: JobId,
    },
    /// A slot left service: it stops appearing in offers, pre-reservation
    /// fills, and pool counts until brought back online (schema v3).
    SlotOffline {
        /// The slot leaving service.
        slot: u32,
        /// Fault that took it down: `"crash"`, `"revocation"`,
        /// `"partition"`, or `"restart"`.
        cause: &'static str,
    },
    /// A slot returned to service after a fault healed (schema v3).
    SlotOnline {
        /// The slot rejoining the pool.
        slot: u32,
    },
}

impl TraceEventKind {
    /// Stable kebab-case event name used in the JSONL schema.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::JobSubmitted { .. } => "job-submitted",
            TraceEventKind::OfferRoundStarted { .. } => "offer-round-started",
            TraceEventKind::OfferRoundEnded { .. } => "offer-round-ended",
            TraceEventKind::OfferDeclined { .. } => "offer-declined",
            TraceEventKind::TaskLaunched { .. } => "task-launched",
            TraceEventKind::TaskFinished { .. } => "task-finished",
            TraceEventKind::CopyKilled { .. } => "copy-killed",
            TraceEventKind::ReservationGranted { .. } => "reservation-granted",
            TraceEventKind::PrereserveFilled { .. } => "prereserve-filled",
            TraceEventKind::ReservationExpired { .. } => "reservation-expired",
            TraceEventKind::ReservationReleased { .. } => "reservation-released",
            TraceEventKind::StaleReservationReleased { .. } => "stale-reservation-released",
            TraceEventKind::BarrierCleared { .. } => "barrier-cleared",
            TraceEventKind::StageCompleted { .. } => "stage-completed",
            TraceEventKind::JobCompleted { .. } => "job-completed",
            TraceEventKind::LocalityUnlocked => "locality-unlocked",
            TraceEventKind::TaskCrashed { .. } => "task-crashed",
            TraceEventKind::ReservationRevoked { .. } => "reservation-revoked",
            TraceEventKind::SlotOffline { .. } => "slot-offline",
            TraceEventKind::SlotOnline { .. } => "slot-online",
        }
    }
}

/// A timestamped scheduler decision.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulated time at which the decision was made.
    pub time: SimTime,
    /// The decision itself.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// Convenience constructor.
    pub fn new(time: SimTime, kind: TraceEventKind) -> Self {
        TraceEvent { time, kind }
    }
}
