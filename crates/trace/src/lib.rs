//! Scheduler decision tracing and metrics for the SSR simulator.
//!
//! The scheduler is otherwise a black box that emits only final job
//! completion times; this crate makes every decision observable. The engine
//! carries an optional [`TraceSink`]; when one is attached, each offer
//! round, per-candidate denial (with the policy's [`DenyReason`]),
//! reservation lifecycle transition (grant / pre-reserve fill / expire /
//! release / stale-release), speculation launch and loser-kill, delay
//! scheduling unlock, and barrier clear is reported as a typed
//! [`TraceEvent`]. With no sink attached, no event is constructed — tracing
//! is zero-overhead when disabled.
//!
//! Three sinks ship with the crate:
//!
//! - [`VecSink`] buffers events in memory (tests and ad-hoc inspection);
//! - [`JsonlSink`] streams a sorted, `schema_version`-ed, byte-stable JSON
//!   Lines document (`ssr-cli run --trace <path>`);
//! - [`MetricsSink`] folds the stream into a [`MetricsReport`] of counters
//!   and histograms (`ssr-cli run --metrics`).
//!
//! Everything here obeys the workspace determinism contract (see
//! EXPERIMENTS.md): simulated time only, `BTreeMap` state, no wall-clock —
//! two runs with the same seed yield byte-identical traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod metrics;
mod sink;

pub use event::{DenyReason, StageMeta, TraceEvent, TraceEventKind};
pub use metrics::{Histogram, MetricsReport, MetricsSink, HOLD_TIME_BOUNDS_SECS};
pub use sink::{JsonlSink, SplitSink, TraceSink, VecSink, SCHEMA_VERSION};

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_dag::{JobId, Priority, StageId};
    use ssr_simcore::SimTime;

    fn sample_events() -> Vec<TraceEvent> {
        let job = JobId::new(3);
        let t0 = SimTime::ZERO;
        let t1 = SimTime::from_secs_f64(1.5);
        let t2 = SimTime::from_secs_f64(4.0);
        vec![
            TraceEvent::new(
                t0,
                TraceEventKind::JobSubmitted {
                    job,
                    name: "fg".into(),
                    priority: Priority::new(10),
                    stages: vec![
                        StageMeta { tasks: 4, parents: vec![] },
                        StageMeta { tasks: 2, parents: vec![StageId::new(0)] },
                    ],
                },
            ),
            TraceEvent::new(
                t0,
                TraceEventKind::OfferRoundStarted { free: 4, running: 0, reserved: 0 },
            ),
            TraceEvent::new(
                t0,
                TraceEventKind::TaskLaunched {
                    slot: 0,
                    job,
                    stage: StageId::new(0),
                    partition: 0,
                    attempt: 0,
                    level: "node-local",
                    speculative: false,
                    warm: false,
                },
            ),
            TraceEvent::new(t0, TraceEventKind::OfferRoundEnded { assignments: 1 }),
            TraceEvent::new(
                t1,
                TraceEventKind::TaskFinished {
                    slot: 0,
                    job,
                    stage: StageId::new(0),
                    partition: 0,
                    attempt: 0,
                    duration_secs: 1.5,
                },
            ),
            TraceEvent::new(
                t1,
                TraceEventKind::ReservationGranted {
                    slot: 0,
                    job,
                    priority: Priority::new(10),
                    stage: Some(StageId::new(1)),
                    deadline_secs: Some(31.5),
                },
            ),
            TraceEvent::new(t2, TraceEventKind::ReservationExpired { slot: 0, job }),
            TraceEvent::new(t2, TraceEventKind::JobCompleted { job }),
        ]
    }

    #[test]
    fn vec_sink_keeps_emission_order() {
        let mut sink = VecSink::new();
        for e in sample_events() {
            sink.record(&e);
        }
        assert_eq!(sink.events().len(), 8);
        assert_eq!(sink.events()[0].kind.name(), "job-submitted");
        assert_eq!(sink.events()[7].kind.name(), "job-completed");
    }

    #[test]
    fn jsonl_output_is_byte_stable() {
        let render = || {
            let mut sink = JsonlSink::new();
            for e in sample_events() {
                sink.record(&e);
            }
            sink.finish()
        };
        let a = render();
        let b = render();
        assert_eq!(a, b);
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn jsonl_header_and_line_shape() {
        let mut sink = JsonlSink::new();
        for e in sample_events() {
            sink.record(&e);
        }
        let out = sink.finish();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 9);
        assert_eq!(
            lines[0],
            r#"{"event":"trace-start","fields":{"schema_version":3},"seq":0,"time_secs":0.0}"#
        );
        assert_eq!(
            lines[1],
            concat!(
                r#"{"event":"job-submitted","fields":{"job":3,"name":"fg","priority":10,"#,
                r#""stages":[{"parents":[],"tasks":4},{"parents":[0],"tasks":2}]},"seq":1,"time_secs":0.0}"#
            )
        );
        assert_eq!(
            lines[3],
            concat!(
                r#"{"event":"task-launched","fields":{"attempt":0,"job":3,"level":"node-local","#,
                r#""partition":0,"slot":0,"speculative":false,"stage":0,"warm":false},"seq":3,"time_secs":0.0}"#
            )
        );
        // Every line carries a strictly increasing seq.
        for (i, line) in lines.iter().enumerate() {
            assert!(line.contains(&format!("\"seq\":{i}")), "line {i}: {line}");
        }
    }

    #[test]
    fn metrics_sink_aggregates_counters_and_hold_times() {
        let mut sink = MetricsSink::new();
        for e in sample_events() {
            sink.record(&e);
        }
        let report = sink.into_report();
        assert_eq!(report.jobs_submitted, 1);
        assert_eq!(report.jobs_completed, 1);
        assert_eq!(report.offer_rounds, 1);
        assert_eq!(report.tasks_launched, 1);
        assert_eq!(report.reservations_granted, 1);
        assert_eq!(report.reservations_expired, 1);
        // One reservation held from t=1.5 to t=4.0.
        assert_eq!(report.reservation_hold_secs.count, 1);
        assert!((report.reservation_hold_secs.sum - 2.5).abs() < 1e-9);
        // One task busy on slot 0 from t=0 to t=1.5 for job 3.
        assert!((report.slot_seconds_per_job[&3] - 1.5).abs() < 1e-9);
        assert_eq!(report.speculation_win_rate(), None);
        let text = report.render_text();
        assert!(text.contains("jobs: 1 submitted, 1 completed"));
        assert!(text.contains("job-3: 1.5"));
    }

    #[test]
    fn histogram_buckets_cover_bounds_and_overflow() {
        let mut h = Histogram::default();
        h.record(0.25);
        h.record(0.5);
        h.record(0.75);
        h.record(1000.0);
        assert_eq!(h.buckets[0], 2); // <= 0.5
        assert_eq!(h.buckets[1], 1); // <= 1.0
        assert_eq!(h.buckets[HOLD_TIME_BOUNDS_SECS.len()], 1); // overflow
        assert_eq!(h.count, 4);
    }

    #[test]
    fn histogram_quantiles_interpolate_and_clamp() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        for _ in 0..50 {
            h.record(0.25); // bucket 0: (0, 0.5]
        }
        for _ in 0..40 {
            h.record(3.0); // bucket 3: (2, 4]
        }
        for _ in 0..9 {
            h.record(100.0); // bucket 8: (64, 128]
        }
        h.record(1000.0); // overflow
        let q = |q: f64| h.quantile(q).expect("non-empty");
        assert!((q(0.50) - 0.5).abs() < 1e-9, "p50 {}", q(0.50));
        assert!((q(0.90) - 4.0).abs() < 1e-9, "p90 {}", q(0.90));
        // p95 lands 5/9 of the way through the (64, 128] bucket.
        assert!((q(0.95) - (64.0 + 64.0 * 5.0 / 9.0)).abs() < 1e-9, "p95 {}", q(0.95));
        assert!((q(0.99) - 128.0).abs() < 1e-9, "p99 {}", q(0.99));
        // The overflow bucket clamps to the largest bound.
        assert!((q(1.0) - 256.0).abs() < 1e-9, "p100 {}", q(1.0));
    }

    #[test]
    fn histogram_quantile_edge_cases_are_pinned() {
        // Empty: no data, no estimate — pinned to None for every q.
        let empty = Histogram::default();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(empty.quantile(q), None, "empty histogram, q={q}");
        }

        // Single occupied bucket: every quantile is the mean, not a
        // q-dependent interpolation fabricated inside the bucket.
        let mut single = Histogram::default();
        single.record(2.5); // bucket 3: (2, 4]
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(single.quantile(q), Some(2.5), "single sample, q={q}");
        }
        single.record(3.5); // same bucket; mean 3.0
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(single.quantile(q), Some(3.0), "single bucket, q={q}");
        }

        // Single occupied *overflow* bucket still clamps to the largest
        // bound — the histogram has no upper edge to interpolate against.
        let mut overflow = Histogram::default();
        overflow.record(1000.0);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(overflow.quantile(q), Some(256.0), "overflow, q={q}");
        }

        // Two occupied buckets fall back to interpolation as before.
        let mut two = Histogram::default();
        two.record(2.5);
        two.record(100.0);
        assert_ne!(two.quantile(0.0), two.quantile(1.0), "spread is real");
    }

    #[test]
    fn metrics_json_is_sorted_pinned_and_byte_stable() {
        let render = || {
            let mut sink = MetricsSink::new();
            for e in sample_events() {
                sink.record(&e);
            }
            sink.into_report().render_json()
        };
        let json = render();
        assert_eq!(json, render(), "metrics JSON must be byte-stable");
        // Root keys appear in sorted order.
        let mut last = 0;
        for key in [
            "\"barriers_cleared\"",
            "\"jobs_completed\"",
            "\"offers_declined\"",
            "\"reservation_hold_secs\"",
            "\"slot_seconds_per_job\"",
            "\"tasks_launched\"",
        ] {
            let at = json.find(key).unwrap_or_else(|| panic!("missing {key}"));
            assert!(at > last || last == 0, "{key} out of order");
            last = at;
        }
        // Pinned summary values for the sample stream: one reservation held
        // 2.5s (bucket (2, 4]), one task busy 1.5 slot-seconds for job 3.
        // A single occupied bucket pins every quantile to the mean — the
        // exact hold time here — not an interpolated spread.
        assert!(json.contains("\"count\": 1"), "{json}");
        assert!(json.contains("\"mean_secs\": 2.5"), "{json}");
        assert!(json.contains("\"p50_secs\": 2.5"), "{json}");
        assert!(json.contains("\"p99_secs\": 2.5"), "{json}");
        assert!(json.contains("\"3\": 1.5"), "{json}");
        assert!(json.contains("\"speculation_win_rate\": null"), "{json}");
    }

    #[test]
    fn split_sink_feeds_both_outputs() {
        let mut sink = SplitSink {
            jsonl: Some(JsonlSink::new()),
            metrics: Some(MetricsSink::new()),
        };
        for e in sample_events() {
            sink.record(&e);
        }
        let any = (Box::new(sink) as Box<dyn TraceSink>).into_any();
        let split = any.downcast::<SplitSink>().expect("concrete type recovered");
        assert_eq!(split.jsonl.unwrap().finish().lines().count(), 9);
        assert_eq!(split.metrics.unwrap().into_report().offer_rounds, 1);
    }

    #[test]
    fn deny_reason_strings_are_kebab_case() {
        assert_eq!(DenyReason::NoPendingTasks.as_str(), "no-pending-tasks");
        assert_eq!(DenyReason::LocalityWait.to_string(), "locality-wait");
        assert_eq!(DenyReason::ReservationDenied.as_str(), "reservation-denied");
        assert_eq!(DenyReason::NoFittingSlot.as_str(), "no-fitting-slot");
    }
}
