//! Counters/histograms aggregated from the decision-event stream.
//!
//! [`MetricsSink`] folds events into a [`MetricsReport`] without retaining
//! the stream, so it is cheap enough to leave on for large runs where a full
//! JSONL trace would be unwieldy.

use std::any::Any;
use std::collections::BTreeMap;

use crate::event::{TraceEvent, TraceEventKind};
use crate::sink::TraceSink;

/// Bucket upper bounds (seconds) for the reservation hold-time histogram.
/// Log2-spaced from sub-second holds to multi-minute leases; anything above
/// the last bound lands in the overflow bucket.
pub const HOLD_TIME_BOUNDS_SECS: [f64; 10] =
    [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

/// Fixed-bucket histogram over non-negative seconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    /// Count per bucket; `buckets[i]` covers values `<= HOLD_TIME_BOUNDS_SECS[i]`
    /// (and above the previous bound). The final slot counts overflow.
    pub buckets: [u64; HOLD_TIME_BOUNDS_SECS.len() + 1],
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
}

impl Histogram {
    /// Records one value.
    pub fn record(&mut self, value: f64) {
        let mut idx = HOLD_TIME_BOUNDS_SECS.len();
        for (i, bound) in HOLD_TIME_BOUNDS_SECS.iter().enumerate() {
            if value <= *bound {
                idx = i;
                break;
            }
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Mean of recorded values, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) from the bucket counts by
    /// linear interpolation within the containing bucket, the same estimator
    /// Prometheus' `histogram_quantile` uses.
    ///
    /// Edge cases are pinned rather than left to the interpolation:
    ///
    /// - Empty histogram: `None` — there is no data to estimate from.
    /// - Exactly one occupied bucket: every quantile returns the mean,
    ///   clamped to the bucket's range. Interpolating would fabricate a
    ///   q-dependent spread out of a distribution the buckets know nothing
    ///   about; the mean is the one statistic the histogram tracks exactly
    ///   (and equals the recorded value when `count == 1`).
    /// - Values in the overflow bucket clamp to the largest bound, including
    ///   the single-occupied-bucket mean.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let last_bound = HOLD_TIME_BOUNDS_SECS[HOLD_TIME_BOUNDS_SECS.len() - 1];
        if let Some(i) = self.single_occupied_bucket() {
            let hi = HOLD_TIME_BOUNDS_SECS.get(i).copied().unwrap_or(last_bound);
            let lo = if i == 0 { 0.0 } else { HOLD_TIME_BOUNDS_SECS[i - 1] };
            return Some(self.mean().clamp(lo, hi));
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut below = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if (below + n) as f64 >= target {
                let Some(&hi) = HOLD_TIME_BOUNDS_SECS.get(i) else {
                    return Some(last_bound); // overflow bucket
                };
                let lo = if i == 0 { 0.0 } else { HOLD_TIME_BOUNDS_SECS[i - 1] };
                let frac = ((target - below as f64) / n as f64).clamp(0.0, 1.0);
                return Some(lo + (hi - lo) * frac);
            }
            below += n;
        }
        Some(last_bound)
    }

    /// Index of the only non-empty bucket, or `None` when zero or more than
    /// one bucket holds samples.
    fn single_occupied_bucket(&self) -> Option<usize> {
        let mut occupied = None;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                if occupied.is_some() {
                    return None;
                }
                occupied = Some(i);
            }
        }
        occupied
    }
}

/// Aggregated view of one traced run.
///
/// Produced by [`MetricsSink::into_report`]; rendered for humans by
/// [`MetricsReport::render_text`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// Jobs submitted to the scheduler.
    pub jobs_submitted: u64,
    /// Jobs that ran to completion.
    pub jobs_completed: u64,
    /// Offer rounds executed.
    pub offer_rounds: u64,
    /// Tasks launched (including speculative copies).
    pub tasks_launched: u64,
    /// Speculative copies among `tasks_launched`.
    pub speculative_launched: u64,
    /// Speculative races won by the copy (a non-zero attempt finished first).
    pub copy_wins: u64,
    /// Losing duplicates killed after a race resolved.
    pub copy_kills: u64,
    /// Offer declines, keyed by kebab-case [`DenyReason`](crate::DenyReason).
    pub offers_declined: BTreeMap<String, u64>,
    /// Reservations granted by the policy on task completion.
    pub reservations_granted: u64,
    /// Free slots claimed by pending pre-reservations.
    pub prereserves_filled: u64,
    /// Reservations that hit their lease deadline.
    pub reservations_expired: u64,
    /// Reservations released on job completion.
    pub reservations_released: u64,
    /// Stage-earmarked reservations released after their stage completed.
    pub stale_reservations_released: u64,
    /// Running instances lost to injected faults.
    pub tasks_crashed: u64,
    /// Reservations forcibly released because their slot was lost to a fault.
    pub reservations_revoked: u64,
    /// Barrier clears (stages becoming runnable).
    pub barriers_cleared: u64,
    /// Delay-scheduling locality unlock wakeups.
    pub locality_unlocks: u64,
    /// Time from reservation grant/fill to consumption, expiry, or release.
    pub reservation_hold_secs: Histogram,
    /// Busy slot-seconds per job id (sum over that job's task instances).
    pub slot_seconds_per_job: BTreeMap<u64, f64>,
}

impl MetricsReport {
    /// Fraction of speculative launches whose copy won the race, or `None`
    /// when no copy was launched.
    pub fn speculation_win_rate(&self) -> Option<f64> {
        if self.speculative_launched == 0 {
            None
        } else {
            Some(self.copy_wins as f64 / self.speculative_launched as f64)
        }
    }

    /// Renders the report as indented plain text for terminal output.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut line = |s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        line("metrics report".into());
        line(format!("  jobs: {} submitted, {} completed", self.jobs_submitted, self.jobs_completed));
        line(format!(
            "  offer rounds: {} ({} tasks launched, {} speculative)",
            self.offer_rounds, self.tasks_launched, self.speculative_launched
        ));
        if self.offers_declined.is_empty() {
            line("  offers declined: none".into());
        } else {
            line("  offers declined:".into());
            for (reason, n) in &self.offers_declined {
                line(format!("    {reason}: {n}"));
            }
        }
        line(format!(
            "  reservations: {} granted, {} prereserve-filled, {} expired, {} released, {} stale-released",
            self.reservations_granted,
            self.prereserves_filled,
            self.reservations_expired,
            self.reservations_released,
            self.stale_reservations_released
        ));
        if self.tasks_crashed > 0 || self.reservations_revoked > 0 {
            line(format!(
                "  faults: {} tasks crashed, {} reservations revoked",
                self.tasks_crashed, self.reservations_revoked
            ));
        }
        let h = &self.reservation_hold_secs;
        line(format!(
            "  reservation hold time: {} closed, mean {:.3}s",
            h.count,
            h.mean()
        ));
        for (i, n) in h.buckets.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            match HOLD_TIME_BOUNDS_SECS.get(i) {
                Some(bound) => line(format!("    <= {bound}s: {n}")),
                None => line(format!(
                    "    > {}s: {n}",
                    HOLD_TIME_BOUNDS_SECS[HOLD_TIME_BOUNDS_SECS.len() - 1]
                )),
            }
        }
        match self.speculation_win_rate() {
            Some(rate) => line(format!(
                "  speculation: {} copies, {} wins, {} kills (win rate {:.2})",
                self.speculative_launched, self.copy_wins, self.copy_kills, rate
            )),
            None => line("  speculation: no copies launched".into()),
        }
        line(format!(
            "  barriers cleared: {}, locality unlocks: {}",
            self.barriers_cleared, self.locality_unlocks
        ));
        if !self.slot_seconds_per_job.is_empty() {
            line("  slot occupancy (busy slot-seconds per job):".into());
            for (job, secs) in &self.slot_seconds_per_job {
                line(format!("    job-{job}: {secs:.1}"));
            }
        }
        out
    }

    /// Renders the report as pretty-printed JSON with keys in sorted
    /// (ASCII) order at every nesting level — the same byte-stability
    /// contract as the JSONL trace — including p50/p90/p99 summaries of
    /// the reservation hold-time histogram.
    pub fn render_json(&self) -> String {
        use serde::Value;
        let obj = |entries: Vec<(&str, Value)>| {
            Value::Object(entries.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
        };
        let uint = Value::UInt;
        let opt = |v: Option<f64>| v.map(Value::Float).unwrap_or(Value::Null);

        let h = &self.reservation_hold_secs;
        let hold = obj(vec![
            (
                "bounds_secs",
                Value::Array(HOLD_TIME_BOUNDS_SECS.iter().copied().map(Value::Float).collect()),
            ),
            ("buckets", Value::Array(h.buckets.iter().copied().map(Value::UInt).collect())),
            ("count", uint(h.count)),
            ("mean_secs", Value::Float(h.mean())),
            ("p50_secs", opt(h.quantile(0.50))),
            ("p90_secs", opt(h.quantile(0.90))),
            ("p99_secs", opt(h.quantile(0.99))),
            ("sum_secs", Value::Float(h.sum)),
        ]);
        let declined = Value::Object(
            self.offers_declined.iter().map(|(k, &n)| (k.clone(), uint(n))).collect(),
        );
        // Job-id keys must re-sort as strings: numeric order "9" < "10"
        // violates the ASCII-sorted-keys contract.
        let mut per_job: Vec<(String, Value)> = self
            .slot_seconds_per_job
            .iter()
            .map(|(job, &secs)| (job.to_string(), Value::Float(secs)))
            .collect();
        per_job.sort_by(|a, b| a.0.cmp(&b.0));

        let root = obj(vec![
            ("barriers_cleared", uint(self.barriers_cleared)),
            ("copy_kills", uint(self.copy_kills)),
            ("copy_wins", uint(self.copy_wins)),
            ("jobs_completed", uint(self.jobs_completed)),
            ("jobs_submitted", uint(self.jobs_submitted)),
            ("locality_unlocks", uint(self.locality_unlocks)),
            ("offer_rounds", uint(self.offer_rounds)),
            ("offers_declined", declined),
            ("prereserves_filled", uint(self.prereserves_filled)),
            ("reservation_hold_secs", hold),
            ("reservations_expired", uint(self.reservations_expired)),
            ("reservations_granted", uint(self.reservations_granted)),
            ("reservations_released", uint(self.reservations_released)),
            ("reservations_revoked", uint(self.reservations_revoked)),
            ("slot_seconds_per_job", Value::Object(per_job)),
            ("speculation_win_rate", opt(self.speculation_win_rate())),
            ("speculative_launched", uint(self.speculative_launched)),
            ("stale_reservations_released", uint(self.stale_reservations_released)),
            ("tasks_crashed", uint(self.tasks_crashed)),
            ("tasks_launched", uint(self.tasks_launched)),
        ]);
        debug_assert!(crate::sink::sorted_keys(&root), "metrics JSON keys must be sorted");
        serde_json::to_string_pretty(&crate::sink::Raw(root)).expect("serializer is total")
    }
}

/// Sink that folds the event stream into a [`MetricsReport`].
#[derive(Debug, Default)]
pub struct MetricsSink {
    report: MetricsReport,
    /// Open reservation per slot: grant/fill time in seconds.
    open_reservations: BTreeMap<u32, f64>,
    /// Running instance per slot: (job id, launch time in seconds).
    open_tasks: BTreeMap<u32, (u64, f64)>,
}

impl MetricsSink {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the sink, returning the aggregated report.
    pub fn into_report(self) -> MetricsReport {
        self.report
    }

    /// The report aggregated so far.
    pub fn report(&self) -> &MetricsReport {
        &self.report
    }

    fn close_reservation(&mut self, slot: u32, now_secs: f64) {
        if let Some(start) = self.open_reservations.remove(&slot) {
            self.report.reservation_hold_secs.record(now_secs - start);
        }
    }

    fn close_task(&mut self, slot: u32, now_secs: f64) {
        if let Some((job, start)) = self.open_tasks.remove(&slot) {
            *self.report.slot_seconds_per_job.entry(job).or_insert(0.0) += now_secs - start;
        }
    }
}

impl TraceSink for MetricsSink {
    fn record(&mut self, event: &TraceEvent) {
        use TraceEventKind as K;
        let now = event.time.as_secs_f64();
        match &event.kind {
            K::JobSubmitted { .. } => self.report.jobs_submitted += 1,
            K::JobCompleted { .. } => self.report.jobs_completed += 1,
            K::OfferRoundStarted { .. } => self.report.offer_rounds += 1,
            K::OfferRoundEnded { .. } => {}
            K::OfferDeclined { reason, .. } => {
                *self.report.offers_declined.entry(reason.as_str().to_owned()).or_insert(0) += 1;
            }
            K::TaskLaunched { slot, job, speculative, .. } => {
                self.report.tasks_launched += 1;
                if *speculative {
                    self.report.speculative_launched += 1;
                }
                // A launch onto a reserved slot consumes the reservation.
                self.close_reservation(*slot, now);
                self.open_tasks.insert(*slot, (job.as_u64(), now));
            }
            K::TaskFinished { slot, attempt, .. } => {
                if *attempt > 0 {
                    self.report.copy_wins += 1;
                }
                self.close_task(*slot, now);
            }
            K::CopyKilled { slot, .. } => {
                self.report.copy_kills += 1;
                self.close_task(*slot, now);
            }
            K::ReservationGranted { slot, .. } => {
                self.report.reservations_granted += 1;
                self.open_reservations.insert(*slot, now);
            }
            K::PrereserveFilled { slot, .. } => {
                self.report.prereserves_filled += 1;
                self.open_reservations.insert(*slot, now);
            }
            K::ReservationExpired { slot, .. } => {
                self.report.reservations_expired += 1;
                self.close_reservation(*slot, now);
            }
            K::ReservationReleased { slot, .. } => {
                self.report.reservations_released += 1;
                self.close_reservation(*slot, now);
            }
            K::StaleReservationReleased { slot, .. } => {
                self.report.stale_reservations_released += 1;
                self.close_reservation(*slot, now);
            }
            K::BarrierCleared { .. } => self.report.barriers_cleared += 1,
            K::StageCompleted { .. } => {}
            K::LocalityUnlocked => self.report.locality_unlocks += 1,
            K::TaskCrashed { slot, .. } => {
                self.report.tasks_crashed += 1;
                self.close_task(*slot, now);
            }
            K::ReservationRevoked { slot, .. } => {
                self.report.reservations_revoked += 1;
                self.close_reservation(*slot, now);
            }
            // Going offline follows the kill/revocation events, so there is
            // nothing left open on the slot; coming back online starts fresh.
            K::SlotOffline { .. } | K::SlotOnline { .. } => {}
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}
