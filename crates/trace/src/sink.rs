//! Pluggable trace sinks: where decision events go.
//!
//! The engine holds an `Option<Box<dyn TraceSink>>`; when it is `None` no
//! event is even constructed, so tracing is zero-overhead when disabled.

use std::any::Any;
use std::fmt;

use serde::Value;

use crate::event::{TraceEvent, TraceEventKind};
use crate::metrics::MetricsSink;

/// JSONL schema version emitted in the `trace-start` header line.
///
/// Bump whenever an event's name or field set changes shape.
///
/// # History
///
/// - **v1** — initial 16-event schema.
/// - **v2** — `job-submitted` gained `stages` (per-stage task counts and
///   parent edges); `offer-declined` gained `stage` (the blocked stage).
///   Readers accepting v1 treat the missing fields as empty/absent.
/// - **v3** — four fault-lifecycle events: `task-crashed`,
///   `reservation-revoked`, `slot-offline`, `slot-online`. Traces from
///   runs with an empty `FaultPlan` contain none of them, so v2 readers
///   still parse fault-free v3 output.
pub const SCHEMA_VERSION: u32 = 3;

/// Receiver for scheduler decision events.
///
/// Implementations must be deterministic: `record` may only depend on the
/// event stream itself (no wall-clock, no ambient randomness), so that two
/// runs with the same seed produce byte-identical sink output.
pub trait TraceSink: fmt::Debug {
    /// Observes one decision event. Events arrive in emission order, with
    /// monotonically non-decreasing `time`.
    fn record(&mut self, event: &TraceEvent);

    /// Recovers the concrete sink type after the run (`Box<dyn TraceSink>`
    /// cannot be downcast directly). Implementations return `self`.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// In-memory sink that keeps every event; intended for tests.
#[derive(Debug, Default)]
pub struct VecSink {
    events: Vec<TraceEvent>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The events recorded so far, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the sink, returning the recorded events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Streams events as byte-stable JSON Lines.
///
/// # Format
///
/// The first line is a header identifying the schema; every subsequent line
/// is one event. Each line is a compact JSON object with its keys — at both
/// the top level and inside `"fields"` — in sorted (ASCII) order, the same
/// discipline as `ssr-lint --format json`, so equal traces are equal bytes:
///
/// ```text
/// {"event":"trace-start","fields":{"schema_version":3},"seq":0,"time_secs":0.0}
/// {"event":"job-submitted","fields":{"job":0,"name":"fg","priority":10,"stages":[{"parents":[],"tasks":4}]},"seq":1,"time_secs":0.0}
/// ```
///
/// `seq` is a per-trace monotone counter that pins the relative order of
/// same-timestamp decisions. Ids are rendered as raw integers (`job` as u64,
/// `stage`/`slot`/`partition`/`attempt` as unsigned, `priority` as signed);
/// optional deadlines are seconds or `null`.
#[derive(Debug)]
pub struct JsonlSink {
    out: String,
    seq: u64,
}

impl Default for JsonlSink {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonlSink {
    /// Creates a sink and writes the `trace-start` header line.
    pub fn new() -> Self {
        let mut sink = JsonlSink { out: String::new(), seq: 0 };
        let header = Value::Object(vec![(
            "schema_version".into(),
            Value::UInt(u64::from(SCHEMA_VERSION)),
        )]);
        sink.write_line("trace-start", 0.0, header);
        sink
    }

    /// Consumes the sink, returning the complete JSONL document
    /// (newline-terminated).
    pub fn finish(self) -> String {
        self.out
    }

    /// The JSONL document rendered so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    fn write_line(&mut self, event: &str, time_secs: f64, fields: Value) {
        debug_assert!(sorted_keys(&fields), "JSONL field keys must be sorted: {fields:?}");
        let line = Value::Object(vec![
            ("event".into(), Value::Str(event.into())),
            ("fields".into(), fields),
            ("seq".into(), Value::UInt(self.seq)),
            ("time_secs".into(), Value::Float(time_secs)),
        ]);
        self.out.push_str(&serde_json::to_string(&Raw(line)).expect("serializer is total"));
        self.out.push('\n');
        self.seq += 1;
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, event: &TraceEvent) {
        let fields = event_fields(&event.kind);
        self.write_line(event.kind.name(), event.time.as_secs_f64(), fields);
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Fans one event stream out to an optional JSONL sink and an optional
/// metrics aggregator; used by `ssr-cli run` when both `--trace` and
/// `--metrics` are requested.
#[derive(Debug, Default)]
pub struct SplitSink {
    /// JSONL stream, if requested.
    pub jsonl: Option<JsonlSink>,
    /// Metrics aggregator, if requested.
    pub metrics: Option<MetricsSink>,
}

impl TraceSink for SplitSink {
    fn record(&mut self, event: &TraceEvent) {
        if let Some(j) = self.jsonl.as_mut() {
            j.record(event);
        }
        if let Some(m) = self.metrics.as_mut() {
            m.record(event);
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Lowers an event's payload into a `Value::Object` with sorted keys.
fn event_fields(kind: &TraceEventKind) -> Value {
    use TraceEventKind as K;
    let obj = |entries: Vec<(&str, Value)>| {
        Value::Object(entries.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    };
    let uint = |n: u32| Value::UInt(u64::from(n));
    let opt_secs = |d: Option<f64>| d.map(Value::Float).unwrap_or(Value::Null);
    match kind {
        K::JobSubmitted { job, name, priority, stages } => obj(vec![
            ("job", Value::UInt(job.as_u64())),
            ("name", Value::Str(name.clone())),
            ("priority", Value::Int(i64::from(priority.level()))),
            (
                "stages",
                Value::Array(
                    stages
                        .iter()
                        .map(|s| {
                            Value::Object(vec![
                                (
                                    "parents".to_owned(),
                                    Value::Array(
                                        s.parents
                                            .iter()
                                            .map(|p| Value::UInt(u64::from(p.as_u32())))
                                            .collect(),
                                    ),
                                ),
                                ("tasks".to_owned(), Value::UInt(u64::from(s.tasks))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        K::OfferRoundStarted { free, running, reserved } => obj(vec![
            ("free", Value::UInt(*free as u64)),
            ("reserved", Value::UInt(*reserved as u64)),
            ("running", Value::UInt(*running as u64)),
        ]),
        K::OfferRoundEnded { assignments } => {
            obj(vec![("assignments", Value::UInt(*assignments as u64))])
        }
        K::OfferDeclined { job, reason, stage } => obj(vec![
            ("job", Value::UInt(job.as_u64())),
            ("reason", Value::Str(reason.as_str().into())),
            ("stage", stage.map(|s| uint(s.as_u32())).unwrap_or(Value::Null)),
        ]),
        K::TaskLaunched { slot, job, stage, partition, attempt, level, speculative, warm } => {
            obj(vec![
                ("attempt", uint(*attempt)),
                ("job", Value::UInt(job.as_u64())),
                ("level", Value::Str((*level).into())),
                ("partition", uint(*partition)),
                ("slot", uint(*slot)),
                ("speculative", Value::Bool(*speculative)),
                ("stage", uint(stage.as_u32())),
                ("warm", Value::Bool(*warm)),
            ])
        }
        K::TaskFinished { slot, job, stage, partition, attempt, duration_secs } => obj(vec![
            ("attempt", uint(*attempt)),
            ("duration_secs", Value::Float(*duration_secs)),
            ("job", Value::UInt(job.as_u64())),
            ("partition", uint(*partition)),
            ("slot", uint(*slot)),
            ("stage", uint(stage.as_u32())),
        ]),
        K::CopyKilled { slot, job, stage, partition } => obj(vec![
            ("job", Value::UInt(job.as_u64())),
            ("partition", uint(*partition)),
            ("slot", uint(*slot)),
            ("stage", uint(stage.as_u32())),
        ]),
        K::ReservationGranted { slot, job, priority, stage, deadline_secs } => obj(vec![
            ("deadline_secs", opt_secs(*deadline_secs)),
            ("job", Value::UInt(job.as_u64())),
            ("priority", Value::Int(i64::from(priority.level()))),
            ("slot", uint(*slot)),
            ("stage", stage.map(|s| uint(s.as_u32())).unwrap_or(Value::Null)),
        ]),
        K::PrereserveFilled { slot, job, stage, priority, deadline_secs } => obj(vec![
            ("deadline_secs", opt_secs(*deadline_secs)),
            ("job", Value::UInt(job.as_u64())),
            ("priority", Value::Int(i64::from(priority.level()))),
            ("slot", uint(*slot)),
            ("stage", uint(stage.as_u32())),
        ]),
        K::ReservationExpired { slot, job } | K::ReservationReleased { slot, job } => obj(vec![
            ("job", Value::UInt(job.as_u64())),
            ("slot", uint(*slot)),
        ]),
        K::StaleReservationReleased { slot, job, stage } => obj(vec![
            ("job", Value::UInt(job.as_u64())),
            ("slot", uint(*slot)),
            ("stage", uint(stage.as_u32())),
        ]),
        K::BarrierCleared { job, stage } | K::StageCompleted { job, stage } => obj(vec![
            ("job", Value::UInt(job.as_u64())),
            ("stage", uint(stage.as_u32())),
        ]),
        K::JobCompleted { job } => obj(vec![("job", Value::UInt(job.as_u64()))]),
        K::LocalityUnlocked => obj(vec![]),
        K::TaskCrashed { slot, job, stage, partition, attempt, requeued } => obj(vec![
            ("attempt", uint(*attempt)),
            ("job", Value::UInt(job.as_u64())),
            ("partition", uint(*partition)),
            ("requeued", Value::Bool(*requeued)),
            ("slot", uint(*slot)),
            ("stage", uint(stage.as_u32())),
        ]),
        K::ReservationRevoked { slot, job } => obj(vec![
            ("job", Value::UInt(job.as_u64())),
            ("slot", uint(*slot)),
        ]),
        K::SlotOffline { slot, cause } => obj(vec![
            ("cause", Value::Str((*cause).into())),
            ("slot", uint(*slot)),
        ]),
        K::SlotOnline { slot } => obj(vec![("slot", uint(*slot))]),
    }
}

/// Checks that an object tree's keys are in sorted order (debug builds only).
pub(crate) fn sorted_keys(v: &Value) -> bool {
    match v {
        Value::Object(entries) => {
            entries.windows(2).all(|w| w[0].0 < w[1].0) && entries.iter().all(|(_, v)| sorted_keys(v))
        }
        Value::Array(items) => items.iter().all(sorted_keys),
        _ => true,
    }
}

/// Forwards an already-built `Value` through the `Serialize` entry point.
pub(crate) struct Raw(pub(crate) Value);

impl serde::Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}
