//! Deterministic fault plans for the SSR simulator.
//!
//! A [`FaultPlan`] is a fixed, explicit list of timestamped [`FaultEvent`]s
//! that the simulation injects into a run: node crashes, single-slot
//! revocations, offer-delaying network partitions, cluster-wide straggler
//! storms, and executor restarts with a cold ramp-up window. The plan is
//! data, not randomness: it draws nothing from the trial RNG stream, so a
//! run with an **empty** plan is byte-identical to a run built before this
//! crate existed, and a run with a non-empty plan is still a pure function
//! of (workload, seed, plan).
//!
//! Fault semantics (enforced by `ssr-sim` / the scheduler recovery paths):
//!
//! - [`FaultKind::NodeCrash`] — every slot on the node goes offline; running
//!   instances are killed (`task-crashed`) and their partitions re-queued,
//!   reservations are forcibly released (`reservation-revoked`). With a
//!   `down` duration the node later rejoins (`slot-online`).
//! - [`FaultKind::SlotRevocation`] — one slot is permanently taken away
//!   (e.g. preempted by another tenant); same kill/revoke semantics.
//! - [`FaultKind::NetworkPartition`] — the node stops receiving offers and
//!   pre-reservation fills for `secs`; running instances keep running and
//!   may finish during the partition, but their slots stay out of service
//!   until it heals. Idle reservations on the node are revoked (the master
//!   cannot refresh their leases).
//! - [`FaultKind::StragglerStorm`] — every task *dispatched* during the
//!   window runs `factor`× longer than its sampled duration.
//! - [`FaultKind::ExecutorRestart`] — crash semantics, then the node
//!   rejoins after `down` seconds; tasks dispatched onto it within the
//!   `rampup` window after rejoin run `cold_factor`× slower (cold caches).
//!
//! The plan's invariant surface is checked by `ssr-check`: no double-grant,
//! no reservation outliving its owner, fill-order preserved across
//! recovery, and per-job running-count conservation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ssr_simcore::{SimDuration, SimTime};

/// What goes wrong.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// A whole node drops out of the cluster, killing its running tasks.
    NodeCrash {
        /// The node (index into the cluster spec) that crashes.
        node: u32,
        /// How long the node stays down; `None` means it never returns.
        down: Option<SimDuration>,
    },
    /// A single slot is permanently revoked (external preemption).
    SlotRevocation {
        /// The revoked slot index.
        slot: u32,
    },
    /// A node is unreachable for offers for a bounded window; running tasks
    /// survive but the node's slots stay out of service until it heals.
    NetworkPartition {
        /// The partitioned node.
        node: u32,
        /// Partition length.
        secs: SimDuration,
    },
    /// Cluster-wide slowdown: tasks dispatched during the window take
    /// `factor`× their sampled duration.
    StragglerStorm {
        /// Duration multiplier (> 1 slows tasks down).
        factor: f64,
        /// Storm length.
        secs: SimDuration,
    },
    /// A node's executor restarts: crash, rejoin after `down`, and run cold
    /// for a ramp-up window.
    ExecutorRestart {
        /// The restarting node.
        node: u32,
        /// Outage length before the node rejoins.
        down: SimDuration,
        /// Window after rejoin during which dispatches run cold.
        rampup: SimDuration,
        /// Duration multiplier for cold dispatches.
        cold_factor: f64,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Simulated time at which the fault strikes.
    pub at: SimTime,
    /// The fault itself.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults for one run.
///
/// The default plan is empty; an empty plan injects no events and leaves
/// simulation output byte-identical to a fault-free build.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// The scheduled faults, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds a fault to the plan (builder style).
    pub fn with(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.push(at, kind);
        self
    }

    /// Adds a fault to the plan.
    pub fn push(&mut self, at: SimTime, kind: FaultKind) {
        self.events.push(FaultEvent { at, kind });
    }

    /// Parses the `--faults` CLI spec: `;`-separated fault clauses, each
    /// `kind:key=value,...`. Recognised clauses:
    ///
    /// ```text
    /// crash:node=N,at=SECS[,down=SECS]
    /// revoke:slot=N,at=SECS
    /// partition:node=N,at=SECS,secs=SECS
    /// storm:at=SECS,secs=SECS,factor=F
    /// restart:node=N,at=SECS,down=SECS,rampup=SECS,cold=F
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let (kind, rest) = clause
                .split_once(':')
                .ok_or_else(|| format!("fault clause `{clause}` missing `kind:`"))?;
            let mut at = None;
            let mut node = None;
            let mut slot = None;
            let mut secs = None;
            let mut down = None;
            let mut rampup = None;
            let mut factor = None;
            let mut cold = None;
            for pair in rest.split(',').map(str::trim).filter(|p| !p.is_empty()) {
                let (key, value) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("fault arg `{pair}` is not key=value"))?;
                let num: f64 = value
                    .parse()
                    .map_err(|_| format!("fault arg `{pair}`: `{value}` is not a number"))?;
                match key {
                    "at" => at = Some(num),
                    "node" => node = Some(num as u32),
                    "slot" => slot = Some(num as u32),
                    "secs" => secs = Some(num),
                    "down" => down = Some(num),
                    "rampup" => rampup = Some(num),
                    "factor" => factor = Some(num),
                    "cold" => cold = Some(num),
                    other => return Err(format!("unknown fault arg `{other}` in `{clause}`")),
                }
            }
            let at = SimTime::from_secs_f64(
                at.ok_or_else(|| format!("fault clause `{clause}` missing at=SECS"))?,
            );
            let need = |opt: Option<f64>, name: &str| {
                opt.ok_or_else(|| format!("fault clause `{clause}` missing {name}="))
            };
            let need_node =
                |opt: Option<u32>| need(opt.map(f64::from), "node").map(|n| n as u32);
            let kind = match kind {
                "crash" => FaultKind::NodeCrash {
                    node: need_node(node)?,
                    down: down.map(SimDuration::from_secs_f64),
                },
                "revoke" => FaultKind::SlotRevocation {
                    slot: need(slot.map(f64::from), "slot")? as u32,
                },
                "partition" => FaultKind::NetworkPartition {
                    node: need_node(node)?,
                    secs: SimDuration::from_secs_f64(need(secs, "secs")?),
                },
                "storm" => FaultKind::StragglerStorm {
                    factor: need(factor, "factor")?,
                    secs: SimDuration::from_secs_f64(need(secs, "secs")?),
                },
                "restart" => FaultKind::ExecutorRestart {
                    node: need_node(node)?,
                    down: SimDuration::from_secs_f64(need(down, "down")?),
                    rampup: SimDuration::from_secs_f64(need(rampup, "rampup")?),
                    cold_factor: need(cold, "cold")?,
                },
                other => {
                    return Err(format!(
                        "unknown fault kind `{other}` (expected crash|revoke|partition|storm|restart)"
                    ))
                }
            };
            plan.push(at, kind);
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_default() {
        assert!(FaultPlan::new().is_empty());
        assert_eq!(FaultPlan::new(), FaultPlan::default());
        assert!(FaultPlan::parse("").expect("empty spec parses").is_empty());
        assert!(FaultPlan::parse(" ; ").expect("blank clauses parse").is_empty());
    }

    #[test]
    fn parses_every_kind() {
        let plan = FaultPlan::parse(
            "crash:node=1,at=30;revoke:slot=3,at=10;partition:node=0,at=20,secs=15;\
             storm:at=40,secs=20,factor=3;restart:node=1,at=50,down=10,rampup=5,cold=2.5",
        )
        .expect("full spec parses");
        assert_eq!(plan.events().len(), 5);
        assert_eq!(
            plan.events()[0],
            FaultEvent {
                at: SimTime::from_secs_f64(30.0),
                kind: FaultKind::NodeCrash { node: 1, down: None },
            }
        );
        assert_eq!(
            plan.events()[4].kind,
            FaultKind::ExecutorRestart {
                node: 1,
                down: SimDuration::from_secs_f64(10.0),
                rampup: SimDuration::from_secs_f64(5.0),
                cold_factor: 2.5,
            }
        );
    }

    #[test]
    fn crash_with_down_heals() {
        let plan = FaultPlan::parse("crash:node=0,at=5,down=7").expect("parses");
        assert_eq!(
            plan.events()[0].kind,
            FaultKind::NodeCrash { node: 0, down: Some(SimDuration::from_secs_f64(7.0)) }
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "crash",                      // no args
            "crash:node=0",               // missing at
            "crash:at=5",                 // missing node
            "meteor:at=1",                // unknown kind
            "crash:node=0,at=x",          // non-numeric
            "crash:node=0,at=5,flux=1",   // unknown key
            "storm:at=1,secs=2",          // missing factor
            "restart:node=0,at=1,down=2", // missing rampup/cold
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn builder_and_parse_agree() {
        let built = FaultPlan::new()
            .with(SimTime::from_secs_f64(10.0), FaultKind::SlotRevocation { slot: 2 });
        let parsed = FaultPlan::parse("revoke:slot=2,at=10").expect("parses");
        assert_eq!(built, parsed);
    }
}
