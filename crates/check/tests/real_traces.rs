//! The invariant checker against real end-to-end simulator traces.
//!
//! The unit tests in `invariants.rs` feed the checker hand-written event
//! streams; these tests feed it what the production stack actually emits —
//! full contended runs under every reservation policy, fault-free and
//! faulted alike. A violation here is a protocol bug, not a test artifact
//! (the explorer found exactly one this way; see
//! `crashed_slot_is_never_offered_to_its_preferring_stage` in the
//! scheduler crate).

use ssr_check::InvariantChecker;
use ssr_cluster::{ClusterSpec, LocalityModel};
use ssr_dag::Priority;
use ssr_sim::{FaultKind, FaultPlan, OrderConfig, PolicyConfig, SimConfig, Simulation};
use ssr_simcore::dist::constant;
use ssr_simcore::{SimDuration, SimTime};
use ssr_trace::VecSink;
use ssr_workload::synthetic::{map_only, pipeline_of};

/// A contended 2x2 cluster: a two-stage foreground pipeline (so barriers
/// and pre-reservation trigger) racing a wide background map job.
fn run_checked(policy: PolicyConfig, faults: FaultPlan) -> (bool, ssr_check::CheckReport) {
    let fg = pipeline_of(
        "fg",
        &[(4, constant(2.0)), (2, constant(3.0))],
        Priority::new(10),
        SimTime::from_secs(1),
    )
    .unwrap();
    let bg = map_only("bg", 8, constant(5.0), Priority::new(0)).unwrap();
    let config = SimConfig::new(ClusterSpec::new(2, 2).unwrap())
        .with_locality(LocalityModel::paper_simulation().with_wait(SimDuration::ZERO))
        .with_seed(7)
        .with_faults(faults);
    let (report, sink) = Simulation::new(config, policy, OrderConfig::FifoPriority, vec![fg, bg])
        .with_trace_sink(Box::new(VecSink::new()))
        .run_traced();
    let events = sink
        .expect("sink attached")
        .into_any()
        .downcast::<VecSink>()
        .expect("VecSink recovered")
        .into_events();
    (report.completed, InvariantChecker::new().check_all(&events))
}

#[test]
fn fault_free_contended_run_is_clean() {
    let (completed, check) = run_checked(PolicyConfig::ssr_strict(), FaultPlan::new());
    assert!(completed);
    assert!(check.is_clean(), "{}", check.render_text());
}

#[test]
fn crash_and_heal_run_is_clean() {
    let plan = FaultPlan::new().with(
        SimTime::from_secs(3),
        FaultKind::NodeCrash { node: 0, down: Some(SimDuration::from_secs(5)) },
    );
    let (completed, check) = run_checked(PolicyConfig::ssr_strict(), plan);
    assert!(completed);
    assert!(check.is_clean(), "{}", check.render_text());
}

#[test]
fn permanent_node_loss_run_is_clean() {
    let plan = FaultPlan::new()
        .with(SimTime::from_secs(3), FaultKind::NodeCrash { node: 0, down: None });
    let (completed, check) = run_checked(PolicyConfig::ssr_strict(), plan);
    assert!(completed, "half the cluster must still finish the workload");
    assert!(check.is_clean(), "{}", check.render_text());
}

#[test]
fn partition_plus_storm_run_is_clean() {
    let plan = FaultPlan::new()
        .with(
            SimTime::from_secs(2),
            FaultKind::NetworkPartition { node: 1, secs: SimDuration::from_secs(4) },
        )
        .with(
            SimTime::from_secs(4),
            FaultKind::StragglerStorm { factor: 3.0, secs: SimDuration::from_secs(6) },
        );
    let (completed, check) = run_checked(PolicyConfig::ssr_strict(), plan);
    assert!(completed);
    assert!(check.is_clean(), "{}", check.render_text());
}

#[test]
fn executor_restart_run_is_clean() {
    let plan = FaultPlan::new().with(
        SimTime::from_secs(3),
        FaultKind::ExecutorRestart {
            node: 1,
            down: SimDuration::from_secs(2),
            rampup: SimDuration::from_secs(5),
            cold_factor: 2.0,
        },
    );
    let (completed, check) = run_checked(PolicyConfig::ssr_strict(), plan);
    assert!(completed);
    assert!(check.is_clean(), "{}", check.render_text());
}

#[test]
fn every_policy_stays_clean_under_a_mid_run_crash() {
    let policies = [
        PolicyConfig::WorkConserving,
        PolicyConfig::Timeout(SimDuration::from_secs(30)),
        PolicyConfig::Static { count: 2, class: Priority::new(10) },
        PolicyConfig::ssr_strict(),
    ];
    for policy in policies {
        let label = format!("{policy:?}");
        let plan = FaultPlan::new().with(
            SimTime::from_secs(4),
            FaultKind::NodeCrash { node: 1, down: Some(SimDuration::from_secs(3)) },
        );
        let (completed, check) = run_checked(policy, plan);
        assert!(completed, "{label}: run must complete");
        assert!(check.is_clean(), "{label}:\n{}", check.render_text());
    }
}
