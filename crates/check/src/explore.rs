//! Bounded-exhaustive interleaving explorer over the real scheduler.
//!
//! The explorer drives an actual [`TaskScheduler`] — the same `engine.rs`
//! state machine the simulator uses — through **every** interleaving of
//! offer rounds, task finishes and fault strikes reachable on a small
//! configuration, with the [`InvariantChecker`] attached as the trace
//! sink of every replay. It is a stateright-style bounded model check:
//! states are canonical fingerprints of the scheduler (slot occupancy,
//! remaining reservation deadlines, per-stage task accounting — absolute
//! time excluded), deduplicated in a `BTreeSet`, and the search is
//! breadth-first with a depth bound.
//!
//! `TaskScheduler` is not `Clone`, so each frontier state is materialised
//! by replaying its action sequence from the root — cheap at the depths
//! involved (every replay is at most `max_steps` engine calls).
//!
//! Determinism: the action enumeration order is fixed, all collections
//! are ordered, and replays are pure, so the explored state count is a
//! stable artifact that CI pins byte-for-byte.

use std::collections::{BTreeSet, VecDeque};

use ssr_cluster::{ClusterSpec, LocalityModel, SlotId};
use ssr_core::{SpeculativeReservation, SsrConfig};
use ssr_dag::Priority;
use ssr_scheduler::{FifoPriority, TaskScheduler};
use ssr_simcore::{dist::constant, SimDuration, SimTime};
use ssr_workload::synthetic::{map_only, pipeline_of};

use crate::invariants::{InvariantChecker, Violation};

/// One atomic step the explorer can take against the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Action {
    /// Run one resource-offer round.
    Offer,
    /// Finish the task currently running on the slot.
    Finish(u32),
    /// Crash the node: kill its running tasks, take its slots offline.
    Crash(u32),
    /// Bring a crashed node's slots back into service.
    Restore(u32),
}

/// The small configuration the explorer enumerates.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Cluster width.
    pub nodes: u32,
    /// Slots per node.
    pub slots_per_node: u32,
    /// Tasks per stage of the two-stage foreground pipeline (exercises
    /// barriers and therefore pre-reservation).
    pub fg_tasks: u32,
    /// Tasks of the single-stage background job.
    pub bg_tasks: u32,
    /// How many `Crash` actions one interleaving may contain.
    pub crash_budget: u32,
    /// Depth bound: interleavings longer than this are truncated (counted
    /// in [`ExploreReport::truncated`], never silently dropped).
    pub max_steps: usize,
}

impl ExploreConfig {
    /// The pinned CI configuration: 2 nodes x 1 slot, a 2-stage
    /// foreground vs a background job, one crash — small enough to close
    /// the frontier in well under a second.
    pub fn small() -> Self {
        ExploreConfig {
            nodes: 2,
            slots_per_node: 1,
            fg_tasks: 1,
            bg_tasks: 2,
            crash_budget: 1,
            max_steps: 12,
        }
    }
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig::small()
    }
}

/// The explorer's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreReport {
    /// Distinct canonical states visited.
    pub states: u64,
    /// States in which every job had completed.
    pub terminal_states: u64,
    /// Frontier states abandoned at the depth bound.
    pub truncated: u64,
    /// Deepest action sequence materialised.
    pub max_depth: usize,
    /// Distinct invariant violations found across all replays
    /// (deduplicated by invariant and message).
    pub violations: Vec<Violation>,
}

impl ExploreReport {
    /// Whether every explored interleaving satisfied every invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders a human-readable summary.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "ssr-check explore: {} states ({} terminal, {} truncated at depth bound), max depth {}\n",
            self.states, self.terminal_states, self.truncated, self.max_depth
        );
        if self.violations.is_empty() {
            out.push_str("  all invariants hold on every interleaving\n");
        } else {
            for v in &self.violations {
                out.push_str(&format!("  {}: {}\n", v.invariant, v.message));
            }
        }
        out
    }

    /// Renders pretty-printed JSON with sorted keys (byte-stable across
    /// invocations — CI diffs two runs).
    pub fn render_json(&self) -> String {
        use serde::Value;
        let obj = |entries: Vec<(&str, Value)>| {
            debug_assert!(
                entries.windows(2).all(|w| w[0].0 < w[1].0),
                "explore JSON keys must be sorted"
            );
            Value::Object(entries.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
        };
        let violations = Value::Array(
            self.violations
                .iter()
                .map(|v| {
                    obj(vec![
                        ("invariant", Value::Str(v.invariant.to_owned())),
                        ("message", Value::Str(v.message.clone())),
                    ])
                })
                .collect(),
        );
        let root = obj(vec![
            ("clean", Value::Bool(self.is_clean())),
            ("max_depth", Value::UInt(self.max_depth as u64)),
            ("states", Value::UInt(self.states)),
            ("terminal_states", Value::UInt(self.terminal_states)),
            ("truncated", Value::UInt(self.truncated)),
            ("violations", violations),
        ]);
        let mut out = serde_json::to_string_pretty(&Raw(root)).expect("serializer is total");
        out.push('\n');
        out
    }
}

struct Raw(serde::Value);

impl serde::Serialize for Raw {
    fn to_value(&self) -> serde::Value {
        self.0.clone()
    }
}

/// Materialises one frontier state: replays `actions` from the root on a
/// fresh scheduler with the invariant checker attached.
fn replay(cfg: &ExploreConfig, actions: &[Action]) -> (TaskScheduler, Vec<Violation>) {
    let cluster = ClusterSpec::new(cfg.nodes, cfg.slots_per_node).expect("valid explore cluster");
    let locality = LocalityModel::paper_simulation().with_wait(SimDuration::ZERO);
    let mut sched = TaskScheduler::new(
        cluster,
        locality,
        Box::new(SpeculativeReservation::with_config(SsrConfig::default())),
        Box::new(FifoPriority),
    )
    .with_trace_sink(Box::new(InvariantChecker::new()));
    let fg = pipeline_of(
        "fg",
        &[(cfg.fg_tasks, constant(1.0)), (cfg.fg_tasks, constant(1.0))],
        Priority::new(10),
        SimTime::ZERO,
    )
    .expect("valid fg spec");
    let bg =
        map_only("bg", cfg.bg_tasks, constant(1.0), Priority::new(0)).expect("valid bg spec");
    sched.submit(fg, SimTime::ZERO);
    sched.submit(bg, SimTime::ZERO);
    for (step, action) in actions.iter().enumerate() {
        // One logical second per step: reservations age deterministically.
        let t = SimTime::from_secs((step + 1) as u64);
        sched.expire_reservations(t);
        match action {
            Action::Offer => {
                sched.resource_offers(t);
            }
            Action::Finish(slot) => {
                sched.task_finished(SlotId::new(*slot), t);
            }
            Action::Crash(node) => {
                let slots = node_slots(&sched, *node);
                sched.fail_slots(&slots, t, true, "crash");
            }
            Action::Restore(node) => {
                let slots = node_slots(&sched, *node);
                sched.restore_slots(&slots, t);
            }
        }
    }
    let violations = match sched.take_trace_sink() {
        Some(sink) => match sink.into_any().downcast::<InvariantChecker>() {
            Ok(checker) => checker.finish().violations,
            Err(_) => Vec::new(),
        },
        None => Vec::new(),
    };
    (sched, violations)
}

fn node_slots(sched: &TaskScheduler, node: u32) -> Vec<SlotId> {
    let spec = sched.cluster_spec();
    spec.iter_slots().filter(|&s| spec.node_of(s).as_u32() == node).collect()
}

/// Canonical state fingerprint, excluding absolute time: per-slot
/// occupancy (+ owner task / reservation owner with *remaining* deadline)
/// and offline bit, plus per-job completion and per-stage task accounting
/// (including observed-duration history, which feeds deadline prediction).
fn fingerprint(sched: &TaskScheduler, now: SimTime) -> String {
    use std::fmt::Write;
    let mut fp = String::new();
    let pool = sched.slot_pool();
    for (slot, state) in pool.iter() {
        let offline = if pool.is_offline(slot) { "!" } else { "" };
        if let Some(task) = state.task() {
            let _ = write!(
                fp,
                "B{}.{}.{}{offline};",
                task.job.as_u64(),
                task.stage.as_u32(),
                task.partition
            );
        } else if let Some(r) = state.reservation() {
            let remaining = r
                .deadline()
                .map(|d| ((d.as_secs_f64() - now.as_secs_f64()) * 1e3).round() as i64)
                .unwrap_or(-1);
            let _ = write!(fp, "R{}d{remaining}{offline};", r.job().as_u64());
        } else {
            let _ = write!(fp, "F{offline};");
        }
    }
    fp.push('|');
    for job in sched.jobs().iter() {
        let _ = write!(fp, "j{}c{}", job.id().as_u64(), u8::from(job.is_complete()));
        for ts in job.active_tasksets() {
            let _ = write!(
                fp,
                "s{}p{}o{}f{}",
                ts.stage().as_u32(),
                ts.pending_count(),
                ts.ongoing_count(),
                ts.finished_count()
            );
        }
        for (stage, stats) in job.iter_stage_stats() {
            if !stats.durations().is_empty() {
                let _ = write!(fp, "d{}n{}", stage.as_u32(), stats.durations().len());
            }
        }
        fp.push(';');
    }
    fp
}

/// Enumerates the actions applicable in the replayed state, in a fixed
/// deterministic order: Offer, then Finish by ascending slot, then Crash
/// and Restore by ascending node.
fn applicable(sched: &TaskScheduler, crashes_used: u32, cfg: &ExploreConfig) -> Vec<Action> {
    let mut actions = vec![Action::Offer];
    let pool = sched.slot_pool();
    for (slot, state) in pool.iter() {
        if state.is_running() {
            actions.push(Action::Finish(slot.as_u32()));
        }
    }
    let spec = sched.cluster_spec();
    for node in 0..cfg.nodes {
        let slots: Vec<SlotId> = spec
            .iter_slots()
            .filter(|&s| spec.node_of(s).as_u32() == node)
            .collect();
        let any_online = slots.iter().any(|&s| !pool.is_offline(s));
        if any_online && crashes_used < cfg.crash_budget {
            actions.push(Action::Crash(node));
        }
        if slots.iter().any(|&s| pool.is_offline(s)) {
            actions.push(Action::Restore(node));
        }
    }
    actions
}

/// Runs the bounded-exhaustive search and returns the verdict.
pub fn explore(cfg: &ExploreConfig) -> ExploreReport {
    let mut visited: BTreeSet<String> = BTreeSet::new();
    let mut seen_violations: BTreeSet<(&'static str, String)> = BTreeSet::new();
    let mut report = ExploreReport {
        states: 0,
        terminal_states: 0,
        truncated: 0,
        max_depth: 0,
        violations: Vec::new(),
    };
    let mut frontier: VecDeque<Vec<Action>> = VecDeque::new();
    frontier.push_back(Vec::new());
    while let Some(seq) = frontier.pop_front() {
        let (sched, violations) = replay(cfg, &seq);
        let now = SimTime::from_secs(seq.len() as u64);
        let fp = fingerprint(&sched, now);
        if !visited.insert(fp) {
            continue;
        }
        report.states += 1;
        report.max_depth = report.max_depth.max(seq.len());
        for v in violations {
            if seen_violations.insert((v.invariant, v.message.clone())) {
                report.violations.push(v);
            }
        }
        if !sched.has_unfinished_jobs() {
            report.terminal_states += 1;
            continue;
        }
        if seq.len() >= cfg.max_steps {
            report.truncated += 1;
            continue;
        }
        let crashes_used = seq.iter().filter(|a| matches!(a, Action::Crash(_))).count() as u32;
        for action in applicable(&sched, crashes_used, cfg) {
            let mut next = seq.clone();
            next.push(action);
            frontier.push_back(next);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_closes_with_deterministic_state_count() {
        let a = explore(&ExploreConfig::small());
        let b = explore(&ExploreConfig::small());
        assert_eq!(a, b, "exploration must be deterministic");
        // The pinned artifact: the frontier closes (nothing truncated)
        // after exactly these many canonical states. A change here means
        // the engine's reachable state space changed — intended or not,
        // it deserves review.
        assert_eq!(a.states, 91, "{}", a.render_text());
        assert_eq!(a.terminal_states, 3);
        assert_eq!(a.truncated, 0, "the small frontier must close below the depth bound");
        assert_eq!(a.max_depth, 8);
        assert!(a.is_clean(), "{}", a.render_text());
    }

    #[test]
    fn crash_free_exploration_is_clean_too() {
        let cfg = ExploreConfig { crash_budget: 0, ..ExploreConfig::small() };
        let report = explore(&cfg);
        assert!(report.is_clean(), "{}", report.render_text());
        assert!(report.terminal_states > 0);
    }

    #[test]
    fn json_is_byte_stable() {
        let cfg = ExploreConfig { max_steps: 6, ..ExploreConfig::small() };
        assert_eq!(explore(&cfg).render_json(), explore(&cfg).render_json());
    }
}
