//! Runtime invariant checker over the decision-trace stream.
//!
//! [`InvariantChecker`] is a [`TraceSink`]: attach it to any run (or feed
//! it a parsed trace) and it shadows the slot pool and per-job accounting
//! from the events alone, flagging every transition the reservation
//! protocol forbids. The invariants it enforces:
//!
//! - **I1 — no double grant**: a reservation is only granted or
//!   prereserve-filled on a slot the trace shows as free and in service.
//! - **I2 — reservations die with their owner**: no grant to a completed
//!   job, and at the end of the stream no reservation is still held by a
//!   completed job. (The engine emits `job-completed` *before* the
//!   release events of that job's remaining reservations, so a release
//!   after completion is legal; an unreleased one at end-of-trace is not.)
//! - **I3 — fill order**: within one contiguous run of
//!   `prereserve-filled` events, priorities are non-increasing — recovery
//!   must not let a lower-priority job jump the pre-reservation queue.
//! - **I4 — running conservation**: a job's running-instance count (from
//!   launch/finish/kill/crash events) never goes negative and is zero at
//!   `job-completed`.
//! - **I5 — slot legality**: launches only on free or reserved in-service
//!   slots (a launch consumes the reservation; the trace cannot carry the
//!   policy's approval verdict, so foreign launches on reserved slots are
//!   accepted); finish/kill/crash only on slots running that job;
//!   expiry/release/revocation only on slots reserved for that job;
//!   offline/online transitions strictly alternate per slot.
//!
//! The offline bit is orthogonal to occupancy: a partition survivor is
//! *running and offline*, and its later `task-finished` is legal (the
//! slot becomes free-but-offline, unschedulable until `slot-online`).

use std::collections::BTreeMap;

use ssr_dag::JobId;
use ssr_trace::{TraceEvent, TraceEventKind, TraceSink};

/// One invariant breach, anchored to the event that exposed it.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// 0-based index of the offending event within the checked stream.
    pub index: u64,
    /// Simulated time of the offending event, in seconds.
    pub time_secs: f64,
    /// Short invariant identifier (e.g. `"double-grant"`).
    pub invariant: &'static str,
    /// Human-readable description of the breach.
    pub message: String,
}

/// Shadowed occupancy of one slot, as reconstructed from the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Occupancy {
    Free,
    Reserved(JobId),
    Running(JobId),
}

#[derive(Debug, Clone)]
struct SlotShadow {
    occ: Occupancy,
    offline: bool,
}

#[derive(Debug, Clone)]
struct JobShadow {
    name: String,
    completed: bool,
    running: i64,
}

/// The checker's verdict over one stream.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckReport {
    /// Number of events checked.
    pub events: u64,
    /// Every invariant breach found, in stream order.
    pub violations: Vec<Violation>,
}

impl CheckReport {
    /// Whether the stream satisfied every invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders a human-readable summary.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "ssr-check: {} events, {} violation{}\n",
            self.events,
            self.violations.len(),
            if self.violations.len() == 1 { "" } else { "s" }
        );
        for v in &self.violations {
            out.push_str(&format!(
                "  [event {} t={:.3}s] {}: {}\n",
                v.index, v.time_secs, v.invariant, v.message
            ));
        }
        if self.violations.is_empty() {
            out.push_str("  all invariants hold\n");
        }
        out
    }

    /// Renders pretty-printed JSON with keys in sorted (ASCII) order at
    /// every nesting level — the workspace's byte-stability contract.
    pub fn render_json(&self) -> String {
        use serde::Value;
        let obj = |entries: Vec<(&str, Value)>| {
            debug_assert!(
                entries.windows(2).all(|w| w[0].0 < w[1].0),
                "check JSON keys must be sorted: {:?}",
                entries.iter().map(|(k, _)| *k).collect::<Vec<_>>()
            );
            Value::Object(entries.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
        };
        let violations = Value::Array(
            self.violations
                .iter()
                .map(|v| {
                    obj(vec![
                        ("index", Value::UInt(v.index)),
                        ("invariant", Value::Str(v.invariant.to_owned())),
                        ("message", Value::Str(v.message.clone())),
                        ("time_secs", Value::Float(v.time_secs)),
                    ])
                })
                .collect(),
        );
        let root = obj(vec![
            ("clean", Value::Bool(self.is_clean())),
            ("events", Value::UInt(self.events)),
            ("violations", violations),
        ]);
        let mut out = serde_json::to_string_pretty(&Raw(root)).expect("serializer is total");
        out.push('\n');
        out
    }
}

/// Forwards an already-built `Value` through the `Serialize` entry point.
struct Raw(serde::Value);

impl serde::Serialize for Raw {
    fn to_value(&self) -> serde::Value {
        self.0.clone()
    }
}

/// A [`TraceSink`] that validates the reservation protocol's invariants
/// as events stream past. See the module docs for the invariant list.
#[derive(Debug, Default)]
pub struct InvariantChecker {
    slots: Vec<SlotShadow>,
    jobs: BTreeMap<JobId, JobShadow>,
    index: u64,
    violations: Vec<Violation>,
    /// Priority level of the previous event iff it was `prereserve-filled`
    /// (I3 checks contiguous fill runs only).
    fill_run_prev: Option<i32>,
}

impl InvariantChecker {
    /// Creates an empty checker; slots and jobs are discovered from the
    /// stream itself.
    pub fn new() -> Self {
        InvariantChecker::default()
    }

    /// Feeds a whole pre-parsed event stream through the checker.
    pub fn check_all(mut self, events: &[TraceEvent]) -> CheckReport {
        for e in events {
            self.record(e);
        }
        self.finish()
    }

    /// Finalizes: runs the end-of-stream checks (I2's "no reservation
    /// outlives its owner") and returns the verdict.
    pub fn finish(mut self) -> CheckReport {
        for (idx, s) in self.slots.iter().enumerate() {
            if let Occupancy::Reserved(job) = s.occ {
                if self.jobs.get(&job).is_some_and(|j| j.completed) {
                    self.violations.push(Violation {
                        index: self.index.saturating_sub(1),
                        time_secs: f64::NAN,
                        invariant: "reservation-outlives-owner",
                        message: format!(
                            "slot {idx} still reserved for completed job {} at end of trace",
                            job.as_u64()
                        ),
                    });
                }
            }
        }
        CheckReport { events: self.index, violations: self.violations }
    }

    fn flag(&mut self, time_secs: f64, invariant: &'static str, message: String) {
        self.violations.push(Violation { index: self.index, time_secs, invariant, message });
    }

    fn slot(&mut self, slot: u32) -> &mut SlotShadow {
        let idx = slot as usize;
        while self.slots.len() <= idx {
            self.slots.push(SlotShadow { occ: Occupancy::Free, offline: false });
        }
        &mut self.slots[idx]
    }

    /// I1 + I5 + I2(grant side): a reservation lands on a free, in-service
    /// slot owned by a live job.
    fn check_grant(&mut self, t: f64, slot: u32, job: JobId, what: &str) {
        let shadow = self.slot(slot).clone();
        match shadow.occ {
            Occupancy::Free => {}
            Occupancy::Reserved(held) => self.flag(
                t,
                "double-grant",
                format!(
                    "{what} on slot {slot} for job {} while reserved for job {}",
                    job.as_u64(),
                    held.as_u64()
                ),
            ),
            Occupancy::Running(held) => self.flag(
                t,
                "double-grant",
                format!(
                    "{what} on slot {slot} for job {} while running job {}",
                    job.as_u64(),
                    held.as_u64()
                ),
            ),
        }
        if shadow.offline {
            self.flag(
                t,
                "grant-offline",
                format!("{what} on out-of-service slot {slot} for job {}", job.as_u64()),
            );
        }
        if self.jobs.get(&job).is_some_and(|j| j.completed) {
            self.flag(
                t,
                "grant-after-completion",
                format!("{what} on slot {slot} for already-completed job {}", job.as_u64()),
            );
        }
        self.slot(slot).occ = Occupancy::Reserved(job);
    }

    /// I5 (run side) + I4: a run-closing event must hit a slot running
    /// that job.
    fn check_run_close(&mut self, t: f64, slot: u32, job: JobId, what: &str) {
        let occ = self.slot(slot).occ;
        match occ {
            Occupancy::Running(held) if held == job => {}
            other => self.flag(
                t,
                "phantom-finish",
                format!(
                    "{what} on slot {slot} for job {} but slot is {other:?}",
                    job.as_u64()
                ),
            ),
        }
        self.slot(slot).occ = Occupancy::Free;
        if let Some(j) = self.jobs.get_mut(&job) {
            j.running -= 1;
            if j.running < 0 {
                let name = j.name.clone();
                self.flag(
                    t,
                    "running-negative",
                    format!("job {} ({name}) running count dropped below zero", job.as_u64()),
                );
            }
        }
    }

    /// I5 (reservation side): a reservation-closing event must hit a slot
    /// reserved for that job.
    fn check_reservation_close(&mut self, t: f64, slot: u32, job: JobId, what: &str) {
        let occ = self.slot(slot).occ;
        match occ {
            Occupancy::Reserved(held) if held == job => {}
            other => self.flag(
                t,
                "phantom-release",
                format!(
                    "{what} on slot {slot} for job {} but slot is {other:?}",
                    job.as_u64()
                ),
            ),
        }
        self.slot(slot).occ = Occupancy::Free;
    }
}

impl TraceSink for InvariantChecker {
    fn record(&mut self, event: &TraceEvent) {
        use TraceEventKind as K;
        let t = event.time.as_secs_f64();
        // I3 applies to *contiguous* fill runs: any other event ends one.
        let fill_prev = self.fill_run_prev.take();
        match &event.kind {
            K::JobSubmitted { job, name, .. } => {
                self.jobs.insert(
                    *job,
                    JobShadow { name: name.clone(), completed: false, running: 0 },
                );
            }
            K::TaskLaunched { slot, job, .. } => {
                let shadow = self.slot(*slot).clone();
                match shadow.occ {
                    Occupancy::Free => {}
                    // A launch on a reserved slot consumes the reservation.
                    // The owner always may; a foreign job may when the
                    // policy's ApprovalLogic said yes — a verdict the trace
                    // does not carry, so the checker accepts any foreign
                    // launch here rather than second-guess the policy.
                    Occupancy::Reserved(_) => {}
                    Occupancy::Running(held) => self.flag(
                        t,
                        "double-launch",
                        format!(
                            "launch on slot {slot} already running job {}",
                            held.as_u64()
                        ),
                    ),
                }
                if shadow.offline {
                    self.flag(
                        t,
                        "launch-offline",
                        format!("job {} launched on out-of-service slot {slot}", job.as_u64()),
                    );
                }
                self.slot(*slot).occ = Occupancy::Running(*job);
                if let Some(j) = self.jobs.get_mut(job) {
                    j.running += 1;
                }
            }
            K::TaskFinished { slot, job, .. } => {
                self.check_run_close(t, *slot, *job, "task-finished");
            }
            K::CopyKilled { slot, job, .. } => {
                self.check_run_close(t, *slot, *job, "copy-killed");
            }
            K::TaskCrashed { slot, job, .. } => {
                self.check_run_close(t, *slot, *job, "task-crashed");
            }
            K::ReservationGranted { slot, job, .. } => {
                self.check_grant(t, *slot, *job, "reservation-granted");
            }
            K::PrereserveFilled { slot, job, priority, .. } => {
                self.check_grant(t, *slot, *job, "prereserve-filled");
                let level = priority.level();
                if let Some(prev) = fill_prev {
                    if level > prev {
                        self.flag(
                            t,
                            "fill-order",
                            format!(
                                "prereserve fill priority {level} follows {prev} in one fill run"
                            ),
                        );
                    }
                }
                self.fill_run_prev = Some(level);
            }
            K::ReservationExpired { slot, job } => {
                self.check_reservation_close(t, *slot, *job, "reservation-expired");
            }
            K::ReservationReleased { slot, job } => {
                self.check_reservation_close(t, *slot, *job, "reservation-released");
            }
            K::StaleReservationReleased { slot, job, .. } => {
                self.check_reservation_close(t, *slot, *job, "stale-reservation-released");
            }
            K::ReservationRevoked { slot, job } => {
                self.check_reservation_close(t, *slot, *job, "reservation-revoked");
            }
            K::SlotOffline { slot, cause } => {
                if self.slot(*slot).offline {
                    self.flag(
                        t,
                        "double-offline",
                        format!("slot {slot} taken offline ({cause}) while already offline"),
                    );
                }
                self.slot(*slot).offline = true;
            }
            K::SlotOnline { slot } => {
                if !self.slot(*slot).offline {
                    self.flag(
                        t,
                        "double-online",
                        format!("slot {slot} brought online while already in service"),
                    );
                }
                self.slot(*slot).offline = false;
            }
            K::JobCompleted { job } => {
                if let Some(j) = self.jobs.get_mut(job) {
                    j.completed = true;
                    if j.running != 0 {
                        let (name, running) = (j.name.clone(), j.running);
                        self.flag(
                            t,
                            "completed-while-running",
                            format!(
                                "job {} ({name}) completed with {running} instances still running",
                                job.as_u64()
                            ),
                        );
                    }
                }
            }
            K::OfferRoundStarted { .. }
            | K::OfferRoundEnded { .. }
            | K::OfferDeclined { .. }
            | K::BarrierCleared { .. }
            | K::StageCompleted { .. }
            | K::LocalityUnlocked => {}
        }
        self.index += 1;
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_dag::{Priority, StageId};
    use ssr_simcore::SimTime;

    fn ev(s: f64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent::new(SimTime::from_secs_f64(s), kind)
    }

    fn submitted(job: u64) -> TraceEvent {
        ev(
            0.0,
            TraceEventKind::JobSubmitted {
                job: JobId::new(job),
                name: format!("j{job}"),
                priority: Priority::new(0),
                stages: Vec::new(),
            },
        )
    }

    fn granted(s: f64, slot: u32, job: u64) -> TraceEvent {
        ev(
            s,
            TraceEventKind::ReservationGranted {
                slot,
                job: JobId::new(job),
                priority: Priority::new(0),
                stage: None,
                deadline_secs: None,
            },
        )
    }

    fn filled(s: f64, slot: u32, job: u64, priority: i32) -> TraceEvent {
        ev(
            s,
            TraceEventKind::PrereserveFilled {
                slot,
                job: JobId::new(job),
                stage: StageId::new(0),
                priority: Priority::new(priority),
                deadline_secs: None,
            },
        )
    }

    fn launched(s: f64, slot: u32, job: u64) -> TraceEvent {
        ev(
            s,
            TraceEventKind::TaskLaunched {
                slot,
                job: JobId::new(job),
                stage: StageId::new(0),
                partition: 0,
                attempt: 0,
                level: "ANY",
                speculative: false,
                warm: false,
            },
        )
    }

    fn finished(s: f64, slot: u32, job: u64) -> TraceEvent {
        ev(
            s,
            TraceEventKind::TaskFinished {
                slot,
                job: JobId::new(job),
                stage: StageId::new(0),
                partition: 0,
                attempt: 0,
                duration_secs: 1.0,
            },
        )
    }

    #[test]
    fn clean_lifecycle_passes() {
        let report = InvariantChecker::new().check_all(&[
            submitted(0),
            launched(0.0, 0, 0),
            finished(1.0, 0, 0),
            granted(1.0, 0, 0),
            ev(2.0, TraceEventKind::ReservationReleased { slot: 0, job: JobId::new(0) }),
            ev(2.0, TraceEventKind::JobCompleted { job: JobId::new(0) }),
        ]);
        assert!(report.is_clean(), "{}", report.render_text());
        assert_eq!(report.events, 6);
    }

    #[test]
    fn double_grant_is_flagged() {
        let report = InvariantChecker::new()
            .check_all(&[submitted(0), submitted(1), granted(0.0, 3, 0), granted(0.0, 3, 1)]);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].invariant, "double-grant");
        assert_eq!(report.violations[0].index, 3);
    }

    #[test]
    fn fill_order_must_be_non_increasing_within_a_run() {
        let bad = InvariantChecker::new()
            .check_all(&[submitted(0), submitted(1), filled(0.0, 0, 0, 0), filled(0.0, 1, 1, 10)]);
        assert_eq!(bad.violations.len(), 1);
        assert_eq!(bad.violations[0].invariant, "fill-order");
        // Separate runs (another event in between) are independent.
        let ok = InvariantChecker::new().check_all(&[
            submitted(0),
            submitted(1),
            filled(0.0, 0, 0, 0),
            ev(0.0, TraceEventKind::OfferRoundEnded { assignments: 0 }),
            filled(0.0, 1, 1, 10),
        ]);
        assert!(ok.is_clean(), "{}", ok.render_text());
    }

    #[test]
    fn reservation_outliving_owner_is_flagged_at_end() {
        let report = InvariantChecker::new().check_all(&[
            submitted(0),
            granted(0.0, 0, 0),
            ev(1.0, TraceEventKind::JobCompleted { job: JobId::new(0) }),
        ]);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].invariant, "reservation-outlives-owner");
        // The engine's actual order — completion, then release — is clean.
        let ok = InvariantChecker::new().check_all(&[
            submitted(0),
            granted(0.0, 0, 0),
            ev(1.0, TraceEventKind::JobCompleted { job: JobId::new(0) }),
            ev(1.0, TraceEventKind::ReservationReleased { slot: 0, job: JobId::new(0) }),
        ]);
        assert!(ok.is_clean(), "{}", ok.render_text());
    }

    #[test]
    fn offline_lifecycle_is_tracked_orthogonally() {
        // Partition survivor: running slot goes offline, finishes out of
        // service, then a grant while offline is flagged.
        let report = InvariantChecker::new().check_all(&[
            submitted(0),
            submitted(1),
            launched(0.0, 0, 0),
            ev(1.0, TraceEventKind::SlotOffline { slot: 0, cause: "partition" }),
            finished(2.0, 0, 0),
            granted(2.0, 0, 1),
        ]);
        assert_eq!(report.violations.len(), 1, "{}", report.render_text());
        assert_eq!(report.violations[0].invariant, "grant-offline");
    }

    #[test]
    fn crash_closes_run_and_revocation_closes_reservation() {
        let report = InvariantChecker::new().check_all(&[
            submitted(0),
            submitted(1),
            launched(0.0, 0, 0),
            granted(0.0, 1, 1),
            ev(
                1.0,
                TraceEventKind::TaskCrashed {
                    slot: 0,
                    job: JobId::new(0),
                    stage: StageId::new(0),
                    partition: 0,
                    attempt: 0,
                    requeued: true,
                },
            ),
            ev(1.0, TraceEventKind::ReservationRevoked { slot: 1, job: JobId::new(1) }),
            ev(1.0, TraceEventKind::SlotOffline { slot: 0, cause: "crash" }),
            ev(1.0, TraceEventKind::SlotOffline { slot: 1, cause: "crash" }),
            ev(2.0, TraceEventKind::SlotOnline { slot: 0 }),
            ev(2.0, TraceEventKind::SlotOnline { slot: 1 }),
        ]);
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn phantom_events_are_flagged() {
        let report = InvariantChecker::new().check_all(&[
            submitted(0),
            finished(0.0, 0, 0),
            ev(0.0, TraceEventKind::ReservationExpired { slot: 1, job: JobId::new(0) }),
            ev(0.0, TraceEventKind::SlotOnline { slot: 2 }),
        ]);
        let kinds: Vec<&str> = report.violations.iter().map(|v| v.invariant).collect();
        assert_eq!(kinds, vec!["phantom-finish", "running-negative", "phantom-release", "double-online"]);
    }

    #[test]
    fn json_report_is_byte_stable() {
        let r1 = InvariantChecker::new().check_all(&[submitted(0), granted(0.0, 3, 0), granted(0.0, 3, 0)]);
        let r2 = InvariantChecker::new().check_all(&[submitted(0), granted(0.0, 3, 0), granted(0.0, 3, 0)]);
        assert_eq!(r1.render_json(), r2.render_json());
        assert!(r1.render_json().contains("\"clean\": false"));
    }
}
