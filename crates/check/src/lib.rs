//! # ssr-check
//!
//! The verification cascade for the reservation protocol, in two layers:
//!
//! 1. **Runtime invariant checking** — [`InvariantChecker`] is an
//!    `ssr_trace::TraceSink` that shadows the slot pool and per-job
//!    accounting from the decision-event stream and flags every
//!    transition the protocol forbids: double slot grants, reservations
//!    outliving their owner, broken pre-reservation fill order, negative
//!    running counts, and illegal slot state-machine moves (including the
//!    fault lifecycle: offline/online must alternate, nothing launches on
//!    an out-of-service slot). Attach it to any run, or feed it a parsed
//!    trace after the fact.
//!
//! 2. **Bounded-exhaustive exploration** — [`explore`] drives the real
//!    `TaskScheduler` through every interleaving of offer, finish, crash
//!    and restore actions reachable on a small configuration (breadth
//!    first over canonical state fingerprints, depth bounded), with the
//!    invariant checker attached to every replay. A stateright-style
//!    model check against the production state machine, not a model of
//!    it.
//!
//! Both layers render byte-stable text and JSON reports, so CI can diff
//! two invocations and pin the explored state count.
//!
//! # Example
//!
//! ```
//! use ssr_check::InvariantChecker;
//! use ssr_trace::{TraceEvent, TraceEventKind, TraceSink};
//! use ssr_simcore::SimTime;
//! use ssr_dag::{JobId, Priority};
//!
//! let mut checker = InvariantChecker::new();
//! checker.record(&TraceEvent::new(
//!     SimTime::ZERO,
//!     TraceEventKind::JobSubmitted {
//!         job: JobId::new(0),
//!         name: "fg".into(),
//!         priority: Priority::new(10),
//!         stages: Vec::new(),
//!     },
//! ));
//! let report = checker.finish();
//! assert!(report.is_clean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod invariants;

pub use explore::{explore, Action, ExploreConfig, ExploreReport};
pub use invariants::{CheckReport, InvariantChecker, Violation};
