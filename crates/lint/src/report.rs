//! Diagnostics and report rendering.
//!
//! The JSON schema is small, stable, and emitted with keys in sorted
//! order (struct fields are declared alphabetically and the vendored
//! `serde` serializes in declaration order):
//!
//! ```json
//! {
//!   "baselined": 0,
//!   "files_scanned": 42,
//!   "findings": [
//!     { "chain": ["crates/…:12 sink", "crates/…:3 source (source: Instant, line 4)"],
//!       "code": "D101", "col": 9, "file": "crates/…", "function": "sink",
//!       "hint": "…", "line": 7, "message": "…" }
//!   ],
//!   "schema_version": 2,
//!   "suppressed": 3
//! }
//! ```
//!
//! Schema history: v1 had no `chain`/`function`/`baselined` fields and
//! unsorted keys; v2 (the workspace-analyzer release) added them and
//! pinned the key order.
//!
//! Findings are sorted by `(file, line, col, code)` and serialization
//! goes through the vendored `serde_json`, so two runs over the same
//! tree produce byte-identical output.

use serde::Serialize;

/// The JSON schema version emitted by [`Report::render_json`].
pub const SCHEMA_VERSION: u32 = 2;

/// One lint finding at a precise source location.
///
/// Fields are declared in alphabetical order so the JSON rendering has
/// sorted keys; keep it that way when adding fields.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Diagnostic {
    /// For call-graph findings: the witness chain from the flagged
    /// function to the source/root, one `file:line name` entry per hop.
    /// Empty for per-file findings.
    pub chain: Vec<String>,
    /// The lint code (`D001`…, `D1xx`, `P001`, `T001`, `A001`, `S001`,
    /// `L001`/`L002`).
    pub code: String,
    /// 1-based column.
    pub col: u32,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// The enclosing function for call-graph findings; empty for
    /// per-file findings.
    pub function: String,
    /// How to fix or justify it.
    pub hint: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong.
    pub message: String,
}

impl Diagnostic {
    /// Creates a per-file diagnostic (no function/chain context).
    pub fn new(
        code: &str,
        file: &str,
        line: u32,
        col: u32,
        message: String,
        hint: String,
    ) -> Self {
        Diagnostic {
            chain: Vec::new(),
            code: code.to_owned(),
            col,
            file: file.to_owned(),
            function: String::new(),
            hint,
            line,
            message,
        }
    }

    /// Attaches the enclosing function name.
    #[must_use]
    pub fn with_function(mut self, function: &str) -> Self {
        self.function = function.to_owned();
        self
    }

    /// Attaches a witness call chain.
    #[must_use]
    pub fn with_chain(mut self, chain: Vec<String>) -> Self {
        self.chain = chain;
        self
    }
}

/// A whole-workspace lint report.
///
/// Fields are declared in alphabetical order so the JSON rendering has
/// sorted keys; keep it that way when adding fields.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Report {
    /// Findings absorbed by the checked-in baseline.
    pub baselined: usize,
    /// Number of `.rs` files visited.
    pub files_scanned: usize,
    /// Unsuppressed, non-baselined findings, sorted by
    /// `(file, line, col, code)`.
    pub findings: Vec<Diagnostic>,
    /// Bumped only on breaking JSON layout changes.
    pub schema_version: u32,
    /// Findings silenced by `allow` directives.
    pub suppressed: usize,
}

impl Report {
    /// Creates a report, sorting `findings` into canonical order.
    pub fn new(
        mut findings: Vec<Diagnostic>,
        files_scanned: usize,
        suppressed: usize,
        baselined: usize,
    ) -> Self {
        findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.col, a.code.as_str())
                .cmp(&(b.file.as_str(), b.line, b.col, b.code.as_str()))
        });
        Report { baselined, files_scanned, findings, schema_version: SCHEMA_VERSION, suppressed }
    }

    /// `true` when the workspace honours the determinism contract.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Per-code counts over findings and baselined-or-not: the one-line
    /// `CODE=found` summary CI greps. Only codes that occur appear.
    fn per_code_counts(&self) -> Vec<(String, usize)> {
        let mut counts: Vec<(String, usize)> = Vec::new();
        for d in &self.findings {
            match counts.iter_mut().find(|(c, _)| c == &d.code) {
                Some((_, n)) => *n += 1,
                None => counts.push((d.code.clone(), 1)),
            }
        }
        counts.sort();
        counts
    }

    /// Human-readable rendering: one `file:line:col: CODE message` block
    /// per finding plus a summary line. With `explain_chains`, findings
    /// that carry a witness chain print it one hop per line.
    pub fn render_text(&self, explain_chains: bool) -> String {
        let mut out = String::new();
        for d in &self.findings {
            let in_fn = if d.function.is_empty() {
                String::new()
            } else {
                format!(" (in `{}`)", d.function)
            };
            out.push_str(&format!(
                "{}:{}:{}: {}{} {}\n  hint: {}\n",
                d.file, d.line, d.col, d.code, in_fn, d.message, d.hint
            ));
            if explain_chains && !d.chain.is_empty() {
                out.push_str("  chain:\n");
                for hop in &d.chain {
                    out.push_str(&format!("    -> {hop}\n"));
                }
            }
        }
        out.push_str(&format!(
            "ssr-lint: {} finding(s), {} baselined, {} suppressed, {} file(s) scanned\n",
            self.findings.len(),
            self.baselined,
            self.suppressed,
            self.files_scanned
        ));
        let counts = self.per_code_counts();
        if counts.is_empty() {
            out.push_str("per-code: none\n");
        } else {
            let parts: Vec<String> =
                counts.iter().map(|(c, n)| format!("{c}={n}")).collect();
            out.push_str(&format!("per-code: {}\n", parts.join(" ")));
        }
        out
    }

    /// Stable JSON rendering through the vendored `serde_json`.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails, which for this tree of plain
    /// strings and integers cannot happen.
    pub fn render_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serializes");
        s.push('\n');
        s
    }
}
