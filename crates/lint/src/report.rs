//! Diagnostics and report rendering.
//!
//! The JSON schema is deliberately small and stable:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "findings": [
//!     { "code": "D001", "file": "crates/…", "line": 7, "col": 9,
//!       "message": "…", "hint": "…" }
//!   ],
//!   "files_scanned": 42,
//!   "suppressed": 3
//! }
//! ```
//!
//! Findings are sorted by `(file, line, col, code)` and serialization
//! goes through the vendored `serde_json`, so two runs over the same
//! tree produce byte-identical output.

use serde::Serialize;

/// One lint finding at a precise source location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Diagnostic {
    /// The lint code (`D001`…`D005`, `S001`, `L001`).
    pub code: String,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix or justify it.
    pub hint: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(
        code: &str,
        file: &str,
        line: u32,
        col: u32,
        message: String,
        hint: String,
    ) -> Self {
        Diagnostic { code: code.to_owned(), file: file.to_owned(), line, col, message, hint }
    }
}

/// A whole-workspace lint report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Report {
    /// Bumped only on breaking JSON layout changes.
    pub schema_version: u32,
    /// Unsuppressed findings, sorted by `(file, line, col, code)`.
    pub findings: Vec<Diagnostic>,
    /// Number of `.rs` files visited.
    pub files_scanned: usize,
    /// Findings silenced by `allow` directives.
    pub suppressed: usize,
}

impl Report {
    /// Creates a report, sorting `findings` into canonical order.
    pub fn new(mut findings: Vec<Diagnostic>, files_scanned: usize, suppressed: usize) -> Self {
        findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.col, a.code.as_str())
                .cmp(&(b.file.as_str(), b.line, b.col, b.code.as_str()))
        });
        Report { schema_version: 1, findings, files_scanned, suppressed }
    }

    /// `true` when the workspace honours the determinism contract.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable rendering: one `file:line:col: CODE message` block
    /// per finding plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.findings {
            out.push_str(&format!(
                "{}:{}:{}: {} {}\n  hint: {}\n",
                d.file, d.line, d.col, d.code, d.message, d.hint
            ));
        }
        out.push_str(&format!(
            "ssr-lint: {} finding(s), {} suppressed, {} file(s) scanned\n",
            self.findings.len(),
            self.suppressed,
            self.files_scanned
        ));
        out
    }

    /// Stable JSON rendering through the vendored `serde_json`.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails, which for this tree of plain
    /// strings and integers cannot happen.
    pub fn render_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serializes");
        s.push('\n');
        s
    }
}
