//! The determinism lint passes and the suppression-directive machinery.
//!
//! Every pass is a conservative, flow-insensitive pattern match over the
//! token stream of one file (see [`crate::lexer`]). The passes prefer
//! false positives over false negatives: a finding that is provably
//! harmless is silenced *with a reason* via
//! `// ssr-lint: allow(CODE, reason = "…")`, which keeps the
//! justification next to the code it excuses.
//!
//! `#[cfg(test)]` modules and `#[test]` functions are exempt: the
//! byte-identical-replay contract governs shipped simulation code, and
//! test-only nondeterminism is caught by the golden regression tests.

use crate::callgraph::{CallGraph, GraphFile};
use crate::lexer::{lex, Lexed, Tok, TokKind};
use crate::report::Diagnostic;
use crate::suppress::{parse_directives, Suppression};

/// Crates whose code is on the deterministic replay path: anything that
/// executes between seed and report must be a pure function of its
/// inputs. D001 applies only here.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "check", "cluster", "core", "dag", "explain", "faults", "perf", "scheduler", "sim",
    "simcore", "trace", "workload",
];

/// The only files allowed to read the wall clock (D002). Timing flows
/// through `ssr_sim::walltime` so stderr `--timing` output can never
/// leak into deterministic results.
pub const TIMING_ONLY_FILES: &[&str] = &["crates/sim/src/walltime.rs"];

/// The only file allowed to spawn threads or use channels (D003): the
/// deterministic trial runner, whose order-preserving merge is what
/// makes worker counts invisible in the output.
pub const THREADING_FILES: &[&str] = &["crates/sim/src/runner.rs"];

/// The home of RNG stream derivation (D005). Everyone else constructs
/// generators through `SimRng::stream`/`SimRng::fork`.
pub const RNG_HOME_FILES: &[&str] = &["crates/simcore/src/rng.rs"];

/// All lint codes, in report order.
pub const CODES: &[&str] = &[
    "A001", "C001", "D001", "D002", "D003", "D004", "D005", "D101", "D102", "D103", "D104",
    "D105", "D106", "L001", "L002", "P001", "S001", "T001",
];

/// Function names that root the P001 panic-path audit: the scheduler's
/// fault-recovery entry points (PR 6). Anything these can reach on the
/// call graph must not panic — a fault event escalating into a
/// scheduler panic turns one lost slot into a lost scheduler.
pub const RECOVERY_ROOTS: &[&str] = &[
    "fail_slots",
    "restore_slots",
    "instance_crashed",
    "instance_killed",
    "take_offline",
    "bring_online",
    "expire_reservations",
];

/// Function names that root the A001 allocation audit: the offer-round
/// hot path that must stay allocation-free to scale to 100k slots
/// (ROADMAP item 1).
pub const HOT_PATH_ROOTS: &[&str] = &["resource_offers"];

/// The enum T001 audits for emission/reader exhaustiveness.
pub const TRACE_EVENT_ENUM: &str = "TraceEventKind";

/// The struct C001 audits for counter coverage.
pub const COUNTER_STRUCT: &str = "WorkCounters";

/// The crate that owns [`COUNTER_STRUCT`] and renders its report.
pub const COUNTER_HOME_CRATE: &str = "perf";

/// Methods that mutate a counter field (C001's notion of "incremented").
const COUNTER_MUTATORS: &[&str] = &["inc", "add", "high_water"];

/// Crates that must emit every trace event variant.
const TRACE_EMITTER_CRATES: &[&str] = &["scheduler", "sim"];

/// Crates that must reference every trace event variant (checker
/// invariants or explain-side readers).
const TRACE_READER_CRATES: &[&str] = &["check", "explain"];

/// Hash-collection iteration methods whose visit order is
/// nondeterministic (D001).
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Comparator-taking order operations (D004 context).
const ORDERING_CALLS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "sort_by_key",
    "sort_unstable_by_key",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "binary_search_by",
    "select_nth_unstable_by",
];

/// The result of linting one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Unsuppressed findings, sorted by (line, col, code).
    pub findings: Vec<Diagnostic>,
    /// Findings silenced by an `allow` directive.
    pub suppressed: usize,
    /// Every parsed suppression directive, so callers can audit that
    /// each one carries a reason.
    pub directives: Vec<Suppression>,
}

/// Lints a single file given its workspace-relative path (which decides
/// crate scoping) and source text. This is the unit the fixture tests
/// drive directly.
pub fn lint_source(rel_path: &str, source: &str) -> FileOutcome {
    let rel = rel_path.replace('\\', "/");
    let lexed = lex(source);
    let exempt = exempt_ranges(&lexed.tokens);
    let in_exempt = |line: u32| exempt.iter().any(|&(lo, hi)| lo <= line && line <= hi);

    let (directives, mut raw) = parse_directives(&rel, &lexed);

    let crate_name = crate_of(&rel);
    let deterministic =
        crate_name.is_some_and(|c| DETERMINISTIC_CRATES.contains(&c));

    if deterministic {
        check_d001(&rel, &lexed, &mut raw);
    }
    if !TIMING_ONLY_FILES.contains(&rel.as_str()) {
        check_d002(&rel, &lexed.tokens, &mut raw);
    }
    if !THREADING_FILES.contains(&rel.as_str()) {
        check_d003(&rel, &lexed.tokens, &mut raw);
    }
    check_d004(&rel, &lexed.tokens, &mut raw);
    if !RNG_HOME_FILES.contains(&rel.as_str()) {
        check_d005(&rel, &lexed.tokens, &mut raw);
    }
    check_s001(&rel, &lexed.tokens, &mut raw);

    raw.retain(|d| !in_exempt(d.line));

    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for diag in raw {
        let silenced = directives
            .iter()
            .any(|dir| dir.code == diag.code && dir.applies_line == diag.line);
        if silenced {
            suppressed += 1;
        } else {
            findings.push(diag);
        }
    }
    findings.sort_by(|a, b| {
        (a.line, a.col, a.code.as_str()).cmp(&(b.line, b.col, b.code.as_str()))
    });
    FileOutcome { findings, suppressed, directives }
}

/// The crate directory name for a `crates/<name>/…` path.
fn crate_of(rel: &str) -> Option<&str> {
    let mut parts = rel.split('/');
    if parts.next() != Some("crates") {
        return None;
    }
    parts.next()
}

/// `true` for crate-root files: `src/lib.rs`, `src/main.rs`, or a
/// `src/bin/*.rs` binary root — the places a `#![forbid(unsafe_code)]`
/// attribute must live.
fn is_crate_root(rel: &str) -> bool {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", _, "src", file] => *file == "lib.rs" || *file == "main.rs",
        ["crates", _, "src", "bin", file] => file.ends_with(".rs"),
        _ => false,
    }
}

// ---------------------------------------------------------------------
// Test-region exemption
// ---------------------------------------------------------------------

/// Inclusive line ranges covered by `#[cfg(test)]` / `#[test]` items.
pub(crate) fn exempt_ranges(tokens: &[Tok]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if tokens[i].is_punct("#") && tokens[i + 1].is_punct("[") && is_test_attr(tokens, i + 2)
        {
            let start_line = tokens[i].line;
            let mut j = skip_attr(tokens, i);
            // Skip any further attributes stacked on the same item.
            while j + 1 < tokens.len()
                && tokens[j].is_punct("#")
                && tokens[j + 1].is_punct("[")
            {
                j = skip_attr(tokens, j);
            }
            // Find the item body `{…}` (or a `;` for body-less items).
            while j < tokens.len() && !tokens[j].is_punct("{") && !tokens[j].is_punct(";") {
                j += 1;
            }
            let end_line = if j < tokens.len() && tokens[j].is_punct("{") {
                let close = matching_brace(tokens, j);
                let line = tokens[close.min(tokens.len() - 1)].line;
                i = close + 1;
                line
            } else {
                let line = tokens[j.min(tokens.len() - 1)].line;
                i = j + 1;
                line
            };
            ranges.push((start_line, end_line));
        } else {
            i += 1;
        }
    }
    ranges
}

/// `true` if the attribute starting at `i` (just past `#[`) is
/// `cfg(test…` or `test]`.
fn is_test_attr(tokens: &[Tok], i: usize) -> bool {
    if tokens.get(i).is_some_and(|t| t.is_ident("test"))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct("]"))
    {
        return true;
    }
    tokens.get(i).is_some_and(|t| t.is_ident("cfg"))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct("("))
        && tokens.get(i + 2).is_some_and(|t| t.is_ident("test"))
        && tokens
            .get(i + 3)
            .is_some_and(|t| t.is_punct(")") || t.is_punct(","))
}

/// Returns the index just past the `]` closing the attribute whose `#`
/// is at `i`.
fn skip_attr(tokens: &[Tok], i: usize) -> usize {
    let mut j = i + 2; // past `#[`
    let mut depth = 1i32;
    while j < tokens.len() && depth > 0 {
        if tokens[j].is_punct("[") {
            depth += 1;
        } else if tokens[j].is_punct("]") {
            depth -= 1;
        }
        j += 1;
    }
    j
}

/// Returns the index of the `}` matching the `{` at `open`.
fn matching_brace(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len() - 1
}

// ---------------------------------------------------------------------
// D001 — hash-collection iteration in deterministic-path crates
// ---------------------------------------------------------------------

/// Names bound to a `HashMap`/`HashSet` in this file, collected from
/// type ascriptions (`name: HashMap<…>`, fields and parameters alike),
/// constructor bindings (`let name = HashMap::new()`), and turbofish
/// collects (`let name = …collect::<HashMap<…>>()`).
fn hash_tainted_names(tokens: &[Tok]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    let mut add = |name: &str| {
        if !name.is_empty() && !names.iter().any(|n| n == name) {
            names.push(name.to_owned());
        }
    };
    for (i, tok) in tokens.iter().enumerate() {
        if !(tok.is_ident("HashMap") || tok.is_ident("HashSet")) {
            continue;
        }
        // Pattern A: `name: [&mut] [path::]Hash…` — walk back over the
        // path prefix to the `:`.
        let mut j = i;
        while j >= 1 {
            let prev = &tokens[j - 1];
            if prev.is_punct("::") && j >= 2 && tokens[j - 2].kind == TokKind::Ident {
                j -= 2;
            } else if prev.is_punct("&")
                || prev.is_ident("mut")
                || prev.kind == TokKind::Lifetime
            {
                j -= 1;
            } else {
                break;
            }
        }
        if j >= 2 && tokens[j - 1].is_punct(":") && tokens[j - 2].kind == TokKind::Ident {
            add(&tokens[j - 2].text);
            continue;
        }
        // Pattern C: `collect::<Hash…>` — rewind to the `collect` call.
        let mut anchor = i;
        if i >= 3
            && tokens[i - 1].is_punct("<")
            && tokens[i - 2].is_punct("::")
            && tokens[i - 3].is_ident("collect")
        {
            anchor = i - 3;
        } else {
            // Pattern B requires a constructor: `Hash…::new()` etc.
            let ctor = tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && tokens.get(i + 2).is_some_and(|t| {
                    t.is_ident("new")
                        || t.is_ident("with_capacity")
                        || t.is_ident("default")
                        || t.is_ident("from")
                        || t.is_ident("from_iter")
                });
            if !ctor {
                continue;
            }
        }
        // Walk back from the anchor to the `let` opening this statement.
        let mut k = anchor;
        while k > 0 {
            let t = &tokens[k - 1];
            if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
                break;
            }
            k -= 1;
            if tokens[k].is_ident("let") {
                let mut n = k + 1;
                if tokens.get(n).is_some_and(|t| t.is_ident("mut")) {
                    n += 1;
                }
                if let Some(name_tok) = tokens.get(n) {
                    if name_tok.kind == TokKind::Ident {
                        add(&name_tok.text);
                    }
                }
                break;
            }
        }
    }
    names
}

/// One hash-collection iteration site, shared between the per-file
/// D001 pass and the D103 taint-source detector.
#[derive(Debug, Clone)]
pub(crate) struct HashIterSite {
    /// Token index of the method name (or the `for` keyword).
    pub idx: usize,
    /// The iterated collection's binding name.
    pub name: String,
    /// The iteration method, or `None` for a `for … in name` loop.
    pub method: Option<String>,
}

impl HashIterSite {
    /// Short source description for taint diagnostics.
    pub(crate) fn desc(&self) -> String {
        match &self.method {
            Some(m) => format!("{}.{}()", self.name, m),
            None => format!("for … in {}", self.name),
        }
    }
}

/// Detects every hash-collection iteration site in a file (regardless
/// of crate — the caller decides whether that is a D001 finding or a
/// D103 taint source).
pub(crate) fn hash_iter_sites(lexed: &Lexed) -> Vec<HashIterSite> {
    let tokens = &lexed.tokens;
    let tainted = hash_tainted_names(tokens);
    let mut sites = Vec::new();
    if tainted.is_empty() {
        return sites;
    }
    let is_tainted = |t: &Tok| t.kind == TokKind::Ident && tainted.contains(&t.text);

    for (i, tok) in tokens.iter().enumerate() {
        // `name.iter()` and friends.
        if tok.kind == TokKind::Ident
            && HASH_ITER_METHODS.contains(&tok.text.as_str())
            && i >= 2
            && tokens[i - 1].is_punct(".")
            && is_tainted(&tokens[i - 2])
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("("))
        {
            sites.push(HashIterSite {
                idx: i,
                name: tokens[i - 2].text.clone(),
                method: Some(tok.text.clone()),
            });
        }
        // `for x in [&[mut]] name {`.
        if tok.is_ident("for") {
            let mut j = i + 1;
            let mut guard = 0;
            while j < tokens.len() && !tokens[j].is_ident("in") && !tokens[j].is_punct("{") {
                j += 1;
                guard += 1;
                if guard > 40 {
                    break;
                }
            }
            if j >= tokens.len() || !tokens[j].is_ident("in") {
                continue;
            }
            let mut k = j + 1;
            while tokens.get(k).is_some_and(|t| t.is_punct("&") || t.is_ident("mut")) {
                k += 1;
            }
            // A dotted path such as `self.outputs`; remember the last
            // identifier before the loop body.
            let mut last_ident: Option<&Tok> = None;
            while k < tokens.len() {
                if tokens[k].kind == TokKind::Ident {
                    last_ident = Some(&tokens[k]);
                    k += 1;
                } else if tokens[k].is_punct(".") {
                    k += 1;
                } else {
                    break;
                }
            }
            if tokens.get(k).is_some_and(|t| t.is_punct("{")) {
                if let Some(name) = last_ident {
                    if is_tainted(name) {
                        sites.push(HashIterSite {
                            idx: i,
                            name: name.text.clone(),
                            method: None,
                        });
                    }
                }
            }
        }
    }
    sites
}

fn check_d001(rel: &str, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    let tokens = &lexed.tokens;
    for site in hash_iter_sites(lexed) {
        let tok = &tokens[site.idx];
        let diag = match &site.method {
            Some(method) => Diagnostic::new(
                "D001",
                rel,
                tok.line,
                tok.col,
                format!(
                    "iteration over hash collection `{}` via `.{}()` — visit order \
                     is nondeterministic in a deterministic-path crate",
                    site.name, method
                ),
                "use BTreeMap/BTreeSet (or collect and sort) so replay order is fixed; \
                 if the result is provably order-independent, annotate with \
                 `// ssr-lint: allow(D001, reason = \"…\")`"
                    .to_owned(),
            ),
            None => Diagnostic::new(
                "D001",
                rel,
                tok.line,
                tok.col,
                format!(
                    "`for … in {}` iterates a hash collection — visit order \
                     is nondeterministic in a deterministic-path crate",
                    site.name
                ),
                "use BTreeMap/BTreeSet (or collect and sort) so replay order \
                 is fixed; if the loop body is provably order-independent, \
                 annotate with `// ssr-lint: allow(D001, reason = \"…\")`"
                    .to_owned(),
            ),
        };
        out.push(diag);
    }
}

// ---------------------------------------------------------------------
// D002 — wall-clock reads outside the timing module
// ---------------------------------------------------------------------

fn check_d002(rel: &str, tokens: &[Tok], out: &mut Vec<Diagnostic>) {
    for tok in tokens {
        if tok.is_ident("Instant") || tok.is_ident("SystemTime") {
            out.push(Diagnostic::new(
                "D002",
                rel,
                tok.line,
                tok.col,
                format!(
                    "wall-clock access (`{}`) outside the sanctioned timing module — \
                     real time must never influence simulated results",
                    tok.text
                ),
                format!(
                    "route timing through `ssr_sim::walltime` (the only file on the \
                     timing allowlist: {})",
                    TIMING_ONLY_FILES.join(", ")
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// D003 — threads/channels outside the trial runner
// ---------------------------------------------------------------------

fn check_d003(rel: &str, tokens: &[Tok], out: &mut Vec<Diagnostic>) {
    for (i, tok) in tokens.iter().enumerate() {
        let hit = if tok.is_ident("thread") {
            i >= 2 && tokens[i - 1].is_punct("::") && tokens[i - 2].is_ident("std")
        } else if tok.is_ident("spawn") || tok.is_ident("scope") {
            i >= 2 && tokens[i - 1].is_punct("::") && tokens[i - 2].is_ident("thread")
        } else {
            tok.is_ident("mpsc")
        };
        if hit {
            out.push(Diagnostic::new(
                "D003",
                rel,
                tok.line,
                tok.col,
                format!(
                    "thread/channel use (`{}`) outside the trial runner — parallelism \
                     is only sound behind the order-preserving merge in {}",
                    tok.text,
                    THREADING_FILES.join(", ")
                ),
                "express parallelism as independent trials through \
                 `ssr_sim::runner::par_map`, which merges results in input order"
                    .to_owned(),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// D004 — float ordering hazards
// ---------------------------------------------------------------------

fn check_d004(rel: &str, tokens: &[Tok], out: &mut Vec<Diagnostic>) {
    for (i, tok) in tokens.iter().enumerate() {
        if !tok.is_ident("partial_cmp") {
            continue;
        }
        // Walk backwards through enclosing call parentheses looking for
        // a comparator-taking order operation; `partial_cmp` inside its
        // closure is the hazard (panic or bogus order on NaN).
        let mut depth = 0i32;
        let mut found: Option<&str> = None;
        let lo = i.saturating_sub(150);
        let mut j = i;
        while j > lo {
            j -= 1;
            let t = &tokens[j];
            if t.is_punct(")") {
                depth += 1;
            } else if t.is_punct("(") {
                depth -= 1;
                if depth < 0 {
                    if let Some(prev) = j.checked_sub(1).and_then(|p| tokens.get(p)) {
                        if prev.kind == TokKind::Ident
                            && ORDERING_CALLS.contains(&prev.text.as_str())
                        {
                            found = Some(prev.text.as_str());
                            break;
                        }
                    }
                }
            } else if t.is_ident("fn") {
                break;
            }
        }
        if let Some(call) = found {
            out.push(Diagnostic::new(
                "D004",
                rel,
                tok.line,
                tok.col,
                format!(
                    "`partial_cmp` inside `{call}` — NaN makes the comparator panic or \
                     produce an unspecified order"
                ),
                "compare floats with `f64::total_cmp` (a total order), or sort on an \
                 integer key"
                    .to_owned(),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// D005 — RNG construction outside stream derivation
// ---------------------------------------------------------------------

fn check_d005(rel: &str, tokens: &[Tok], out: &mut Vec<Diagnostic>) {
    for tok in tokens {
        if tok.is_ident("seed_from_u64") {
            out.push(Diagnostic::new(
                "D005",
                rel,
                tok.line,
                tok.col,
                "raw RNG construction (`seed_from_u64`) outside `simcore::rng` — \
                 ad-hoc seeding breaks the one-stream-per-trial discipline"
                    .to_owned(),
                "derive generators with `SimRng::stream(root_seed, index)` (or `fork` \
                 from an existing stream); `stream(seed, 0)` is the root stream for a \
                 user-provided seed"
                    .to_owned(),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// P001 — panic sites on scheduler recovery paths
// ---------------------------------------------------------------------

/// Potential panic sites in one body range: `.unwrap()`, `.expect(…)`,
/// `panic!`/`unreachable!`, and indexing.
fn panic_sites(tokens: &[Tok], open: usize, close: usize, skip: &[(usize, usize)]) -> Vec<(usize, &'static str)> {
    let mut sites = Vec::new();
    let in_skip = |k: usize| skip.iter().any(|&(o, c)| o <= k && k <= c);
    for k in open + 1..close {
        if in_skip(k) {
            continue;
        }
        let t = &tokens[k];
        let prev = k.checked_sub(1).and_then(|p| tokens.get(p));
        let next = tokens.get(k + 1);
        if t.is_ident("unwrap")
            && prev.is_some_and(|p| p.is_punct("."))
            && next.is_some_and(|n| n.is_punct("("))
        {
            sites.push((k, ".unwrap()"));
        } else if t.is_ident("expect")
            && prev.is_some_and(|p| p.is_punct("."))
            && next.is_some_and(|n| n.is_punct("("))
        {
            sites.push((k, ".expect(…)"));
        } else if t.is_ident("panic") && next.is_some_and(|n| n.is_punct("!")) {
            sites.push((k, "panic!"));
        } else if t.is_ident("unreachable") && next.is_some_and(|n| n.is_punct("!")) {
            sites.push((k, "unreachable!"));
        } else if t.is_punct("[")
            && prev.is_some_and(|p| {
                (p.kind == TokKind::Ident && !p.is_ident("mut") && !p.is_ident("in"))
                    || p.is_punct(")")
                    || p.is_punct("]")
            })
        {
            sites.push((k, "indexing `[…]`"));
        }
    }
    sites
}

/// P001: walks forward from the recovery roots and reports every panic
/// site reachable in a deterministic crate, with the root→site chain.
pub(crate) fn check_p001(graph: &CallGraph, files: &[GraphFile<'_>], out: &mut Vec<Diagnostic>) {
    reachability_audit(graph, files, RECOVERY_ROOTS, out, &mut |node, tokens, open, close, skip, chain, root| {
        panic_sites(tokens, open, close, skip)
            .into_iter()
            .map(|(k, what)| {
                Diagnostic::new(
                    "P001",
                    &node.file,
                    tokens[k].line,
                    tokens[k].col,
                    format!(
                        "`{}` in `{}` on a scheduler recovery path (reachable from \
                         recovery root `{}`) — a fault event must not escalate into a \
                         scheduler panic",
                        what, node.name, root
                    ),
                    "handle the `None`/`Err` case with a typed early-return, or name the \
                     invariant in the `expect` message and record the site in \
                     lint.baseline (or `// ssr-lint: allow(P001, reason = \"…\")`)"
                        .to_owned(),
                )
                .with_function(&node.name)
                .with_chain(chain.to_vec())
            })
            .collect()
    });
}

// ---------------------------------------------------------------------
// A001 — allocation in the offer-round hot path
// ---------------------------------------------------------------------

/// Allocation markers in one body range: `Vec::new`, `vec!`,
/// `Box::new`, `.clone()`, `.collect()`.
fn alloc_sites(tokens: &[Tok], open: usize, close: usize, skip: &[(usize, usize)]) -> Vec<(usize, &'static str)> {
    let mut sites = Vec::new();
    let in_skip = |k: usize| skip.iter().any(|&(o, c)| o <= k && k <= c);
    for k in open + 1..close {
        if in_skip(k) {
            continue;
        }
        let t = &tokens[k];
        let prev = k.checked_sub(1).and_then(|p| tokens.get(p));
        let next = tokens.get(k + 1);
        if t.is_ident("Vec")
            && next.is_some_and(|n| n.is_punct("::"))
            && tokens.get(k + 2).is_some_and(|n| n.is_ident("new"))
        {
            sites.push((k, "Vec::new"));
        } else if t.is_ident("vec") && next.is_some_and(|n| n.is_punct("!")) {
            sites.push((k, "vec!"));
        } else if t.is_ident("Box")
            && next.is_some_and(|n| n.is_punct("::"))
            && tokens.get(k + 2).is_some_and(|n| n.is_ident("new"))
        {
            sites.push((k, "Box::new"));
        } else if t.is_ident("clone")
            && prev.is_some_and(|p| p.is_punct("."))
            && next.is_some_and(|n| n.is_punct("("))
        {
            sites.push((k, ".clone()"));
        } else if t.is_ident("collect")
            && prev.is_some_and(|p| p.is_punct("."))
            && next.is_some_and(|n| n.is_punct("(") || n.is_punct("::"))
        {
            sites.push((k, ".collect()"));
        }
    }
    sites
}

/// A001: walks forward from `resource_offers` and reports every
/// allocation marker reachable in a deterministic crate.
pub(crate) fn check_a001(graph: &CallGraph, files: &[GraphFile<'_>], out: &mut Vec<Diagnostic>) {
    reachability_audit(graph, files, HOT_PATH_ROOTS, out, &mut |node, tokens, open, close, skip, chain, root| {
        alloc_sites(tokens, open, close, skip)
            .into_iter()
            .map(|(k, what)| {
                Diagnostic::new(
                    "A001",
                    &node.file,
                    tokens[k].line,
                    tokens[k].col,
                    format!(
                        "allocation (`{}`) in `{}`, reachable from `{}` — the offer \
                         round must stay allocation-free to scale to 100k slots",
                        what, node.name, root
                    ),
                    "hoist the allocation into a reusable scratch buffer owned by the \
                     scheduler (see the `candidates`/`scratch` pattern in TaskScheduler) \
                     or record it in lint.baseline with a reason"
                        .to_owned(),
                )
                .with_function(&node.name)
                .with_chain(chain.to_vec())
            })
            .collect()
    });
}

/// Callback for [`reachability_audit`]: turns one reached
/// deterministic-crate function — `(node, tokens, body_open,
/// body_close, nested_ranges, chain, root_name)` — into findings.
type AuditEmit<'a> = dyn FnMut(
        &crate::callgraph::FnNode,
        &[Tok],
        usize,
        usize,
        &[(usize, usize)],
        &[String],
        &str,
    ) -> Vec<Diagnostic>
    + 'a;

/// Shared driver for the forward-reachability audits: finds the roots
/// by name in deterministic crates, BFS-walks the graph, and lets
/// `emit` turn each reached deterministic-crate function into findings.
fn reachability_audit(
    graph: &CallGraph,
    files: &[GraphFile<'_>],
    root_names: &[&str],
    out: &mut Vec<Diagnostic>,
    emit: &mut AuditEmit<'_>,
) {
    let roots: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            DETERMINISTIC_CRATES.contains(&f.krate.as_str())
                && root_names.contains(&f.name.as_str())
        })
        .map(|(i, _)| i)
        .collect();
    if roots.is_empty() {
        return;
    }
    let parents = graph.reach_forward(&roots);
    for &idx in parents.keys() {
        let node = &graph.fns[idx];
        if !DETERMINISTIC_CRATES.contains(&node.krate.as_str()) {
            continue;
        }
        let Some((open, close)) = node.body else { continue };
        let tokens = &files[node.file_idx].lexed.tokens;
        let skip = graph.nested_bodies(idx);
        let chain_idx = CallGraph::chain_to(&parents, idx);
        let root_name = graph.fns[chain_idx[0]].name.clone();
        let chain: Vec<String> = chain_idx
            .iter()
            .enumerate()
            .map(|(i, &ci)| {
                let n = &graph.fns[ci];
                if i == 0 {
                    format!("{}:{} {} (recovery/hot-path root)", n.file, n.line, n.name)
                } else {
                    format!("{}:{} {}", n.file, n.line, n.name)
                }
            })
            .collect();
        out.extend(emit(node, tokens, open, close, &skip, &chain, &root_name));
    }
}

// ---------------------------------------------------------------------
// T001 — trace-emission exhaustiveness
// ---------------------------------------------------------------------

/// T001: every `TraceEventKind` variant must be emitted somewhere in
/// the scheduler/sim crates and referenced somewhere in the
/// check/explain crates, so the trace schema cannot silently drift
/// from the engine or outlive its consumers.
pub(crate) fn check_t001(files: &[GraphFile<'_>], out: &mut Vec<Diagnostic>) {
    // Locate the enum in the trace crate.
    let mut variants: Vec<(String, u32)> = Vec::new();
    let mut enum_file = String::new();
    for f in files {
        if f.parsed.krate.as_deref() != Some("trace") {
            continue;
        }
        for e in &f.parsed.enums {
            if e.name == TRACE_EVENT_ENUM {
                variants.clone_from(&e.variants);
                enum_file = f.rel.to_owned();
            }
        }
    }
    if variants.is_empty() {
        return;
    }
    let mut emitted: Vec<&str> = Vec::new();
    let mut referenced: Vec<&str> = Vec::new();
    for f in files {
        let Some(krate) = f.parsed.krate.as_deref() else { continue };
        let tokens = &f.lexed.tokens;
        if TRACE_EMITTER_CRATES.contains(&krate) {
            let exempt = exempt_ranges(tokens);
            let in_exempt =
                |line: u32| exempt.iter().any(|&(lo, hi)| lo <= line && line <= hi);
            for (k, t) in tokens.iter().enumerate() {
                if t.is_ident(TRACE_EVENT_ENUM)
                    && tokens.get(k + 1).is_some_and(|n| n.is_punct("::"))
                    && !in_exempt(t.line)
                {
                    if let Some(v) = tokens.get(k + 2) {
                        if let Some((name, _)) =
                            variants.iter().find(|(name, _)| v.is_ident(name))
                        {
                            if !emitted.contains(&name.as_str()) {
                                emitted.push(name);
                            }
                        }
                    }
                }
            }
        }
        if TRACE_READER_CRATES.contains(&krate) {
            // Reader references may live in tests — a pinned reader
            // test is exactly the kind of consumer T001 wants.
            for t in tokens {
                if let Some((name, _)) = variants.iter().find(|(name, _)| t.is_ident(name)) {
                    if !referenced.contains(&name.as_str()) {
                        referenced.push(name);
                    }
                }
            }
        }
    }
    for (name, line) in &variants {
        if !emitted.contains(&name.as_str()) {
            out.push(
                Diagnostic::new(
                    "T001",
                    &enum_file,
                    *line,
                    1,
                    format!(
                        "`{TRACE_EVENT_ENUM}::{name}` is never emitted by the \
                         scheduler/sim crates — the trace schema has drifted from the \
                         engine"
                    ),
                    "emit the event at the state transition it describes, or delete the \
                     variant (bumping the trace format notes in EXPERIMENTS.md)"
                        .to_owned(),
                )
                .with_function(name),
            );
        }
        if !referenced.contains(&name.as_str()) {
            out.push(
                Diagnostic::new(
                    "T001",
                    &enum_file,
                    *line,
                    1,
                    format!(
                        "`{TRACE_EVENT_ENUM}::{name}` has no reference in the \
                         check/explain crates — events nobody validates or explains rot \
                         silently"
                    ),
                    "add a checker invariant or an explain-side reader for the variant \
                     (see crates/check and crates/explain)"
                        .to_owned(),
                )
                .with_function(name),
            );
        }
    }
}

// ---------------------------------------------------------------------
// C001 — work-counter coverage
// ---------------------------------------------------------------------

/// C001: every field of `WorkCounters` (crates/perf) must be mutated by
/// engine code outside its home crate *and* listed in the `fields()`
/// report table, so a counter can neither silently read zero nor
/// silently vanish from the rendered report.
pub(crate) fn check_c001(files: &[GraphFile<'_>], out: &mut Vec<Diagnostic>) {
    // Locate the struct in its home crate and collect its field names.
    let mut counter_fields: Vec<(String, u32)> = Vec::new();
    let mut struct_file = String::new();
    for f in files {
        if f.parsed.krate.as_deref() != Some(COUNTER_HOME_CRATE) {
            continue;
        }
        let tokens = &f.lexed.tokens;
        for (i, t) in tokens.iter().enumerate() {
            if t.is_ident("struct")
                && tokens.get(i + 1).is_some_and(|n| n.is_ident(COUNTER_STRUCT))
                && tokens.get(i + 2).is_some_and(|b| b.is_punct("{"))
            {
                let close = matching_brace(tokens, i + 2);
                let mut k = i + 3;
                while k < close {
                    if tokens[k].is_ident("pub")
                        && tokens.get(k + 1).map(|n| n.kind) == Some(TokKind::Ident)
                        && tokens.get(k + 2).is_some_and(|c| c.is_punct(":"))
                    {
                        counter_fields.push((tokens[k + 1].text.clone(), tokens[k + 1].line));
                        k += 3;
                    } else {
                        k += 1;
                    }
                }
                struct_file = f.rel.to_owned();
            }
        }
    }
    if counter_fields.is_empty() {
        return;
    }

    // `rendered`: fields listed in the report table — idents inside the
    // body of `WorkCounters::fields`, which both rendering and merging
    // walk. `incremented`: fields mutated (`.field.inc/add/high_water`)
    // in shipped code outside the home crate.
    let mut rendered: Vec<&str> = Vec::new();
    let mut incremented: Vec<&str> = Vec::new();
    for f in files {
        let Some(krate) = f.parsed.krate.as_deref() else { continue };
        let tokens = &f.lexed.tokens;
        if krate == COUNTER_HOME_CRATE {
            for item in &f.parsed.fns {
                if item.name != "fields"
                    || item.self_type.as_deref() != Some(COUNTER_STRUCT)
                {
                    continue;
                }
                let Some((open, close)) = item.body else { continue };
                for t in &tokens[open..=close] {
                    if let Some((name, _)) =
                        counter_fields.iter().find(|(n, _)| t.is_ident(n))
                    {
                        if !rendered.contains(&name.as_str()) {
                            rendered.push(name);
                        }
                    }
                }
            }
        } else {
            let exempt = exempt_ranges(tokens);
            let in_exempt =
                |line: u32| exempt.iter().any(|&(lo, hi)| lo <= line && line <= hi);
            for (k, t) in tokens.iter().enumerate() {
                if k == 0 || !tokens[k - 1].is_punct(".") || in_exempt(t.line) {
                    continue;
                }
                let Some((name, _)) = counter_fields.iter().find(|(n, _)| t.is_ident(n))
                else {
                    continue;
                };
                let mutated = tokens.get(k + 1).is_some_and(|d| d.is_punct("."))
                    && tokens
                        .get(k + 2)
                        .is_some_and(|m| COUNTER_MUTATORS.iter().any(|mm| m.is_ident(mm)));
                if mutated && !incremented.contains(&name.as_str()) {
                    incremented.push(name);
                }
            }
        }
    }
    for (name, line) in &counter_fields {
        if !incremented.contains(&name.as_str()) {
            out.push(
                Diagnostic::new(
                    "C001",
                    &struct_file,
                    *line,
                    1,
                    format!(
                        "`{COUNTER_STRUCT}::{name}` is never incremented outside \
                         crates/{COUNTER_HOME_CRATE} — the counter always reads zero"
                    ),
                    "increment the field on the code path it measures, or delete it"
                        .to_owned(),
                )
                .with_function(name),
            );
        }
        if !rendered.contains(&name.as_str()) {
            out.push(
                Diagnostic::new(
                    "C001",
                    &struct_file,
                    *line,
                    1,
                    format!(
                        "`{COUNTER_STRUCT}::{name}` is missing from the `fields()` \
                         report table — the count is collected but never rendered"
                    ),
                    format!(
                        "add a row to `{COUNTER_STRUCT}::fields()`; rendering and \
                         merging both walk that table"
                    ),
                )
                .with_function(name),
            );
        }
    }
}

// ---------------------------------------------------------------------
// S001 — missing #![forbid(unsafe_code)] on crate roots
// ---------------------------------------------------------------------

fn check_s001(rel: &str, tokens: &[Tok], out: &mut Vec<Diagnostic>) {
    if !is_crate_root(rel) {
        return;
    }
    let has = tokens.windows(8).any(|w| {
        w[0].is_punct("#")
            && w[1].is_punct("!")
            && w[2].is_punct("[")
            && w[3].is_ident("forbid")
            && w[4].is_punct("(")
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(")")
            && w[7].is_punct("]")
    });
    if !has {
        out.push(Diagnostic::new(
            "S001",
            rel,
            1,
            1,
            "crate root without `#![forbid(unsafe_code)]` — unsafe code could smuggle \
             in platform-dependent behaviour"
                .to_owned(),
            "add `#![forbid(unsafe_code)]` at the top of the crate root".to_owned(),
        ));
    }
}
