//! The checked-in findings baseline: incremental adoption for the
//! workspace audit passes.
//!
//! A baseline file holds one entry per line:
//!
//! ```text
//! # comment
//! P001 crates/scheduler/src/engine.rs fail_slots 1 reason="invariant R1: …"
//! ```
//!
//! Fields are `CODE file function count reason="…"`, whitespace-
//! separated; `function` is `-` for findings without an enclosing
//! function. Entries are keyed on `(code, file, function)` rather than
//! line numbers so unrelated edits do not invalidate the baseline, and
//! `count` caps how many findings the entry may absorb — a regression
//! that *adds* a panic site to a baselined function still fails. Every
//! entry must carry a non-empty reason: the baseline is a ledger of
//! audited debt, not a mute button.

use std::collections::BTreeMap;

use crate::report::Diagnostic;

/// One baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Lint code (`P001`, `A001`, …).
    pub code: String,
    /// Workspace-relative file.
    pub file: String,
    /// Enclosing function name, or `-` for file-level findings.
    pub function: String,
    /// Maximum number of findings this entry absorbs.
    pub count: usize,
    /// Why the findings are acceptable. Mandatory.
    pub reason: String,
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Entries in file order.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parses baseline text; errors carry the offending line number.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let code = parts.next().unwrap_or_default().to_owned();
            let file = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: missing file field"))?
                .to_owned();
            let function = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: missing function field"))?
                .to_owned();
            let count: usize = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: missing count field"))?
                .parse()
                .map_err(|_| format!("line {lineno}: count must be an integer"))?;
            if count == 0 {
                return Err(format!("line {lineno}: count must be at least 1"));
            }
            let rpos = line
                .find("reason=\"")
                .ok_or_else(|| format!("line {lineno}: entry must end with reason=\"…\""))?;
            let reason = line[rpos + "reason=\"".len()..]
                .strip_suffix('"')
                .ok_or_else(|| {
                    format!("line {lineno}: reason must be a double-quoted string")
                })?
                .to_owned();
            if reason.trim().is_empty() {
                return Err(format!("line {lineno}: reason must not be empty"));
            }
            entries.push(BaselineEntry { code, file, function, count, reason });
        }
        Ok(Baseline { entries })
    }

    /// Renders the baseline back to text ([`parse`](Baseline::parse) of
    /// the result round-trips).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# ssr-lint baseline — audited findings awaiting burn-down.\n\
             # Format: CODE file function count reason=\"…\"  (function `-` = file level)\n",
        );
        for e in &self.entries {
            out.push_str(&format!(
                "{} {} {} {} reason=\"{}\"\n",
                e.code, e.file, e.function, e.count, e.reason
            ));
        }
        out
    }

    /// Splits `findings` into kept findings and a baselined count;
    /// returns `(kept, baselined, stale)` where `stale` describes
    /// entries that absorbed fewer findings than their `count` (or
    /// none), signalling the baseline should be tightened.
    pub fn apply(&self, findings: Vec<Diagnostic>) -> (Vec<Diagnostic>, usize, Vec<String>) {
        let mut budget: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for e in &self.entries {
            *budget.entry((e.code.clone(), e.file.clone(), e.function.clone())).or_insert(0) +=
                e.count;
        }
        let mut used: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        let mut kept = Vec::new();
        let mut baselined = 0usize;
        for d in findings {
            let function = if d.function.is_empty() { "-".to_owned() } else { d.function.clone() };
            let key = (d.code.clone(), d.file.clone(), function);
            let remaining = budget.get(&key).copied().unwrap_or(0);
            let consumed = used.get(&key).copied().unwrap_or(0);
            if consumed < remaining {
                *used.entry(key).or_insert(0) += 1;
                baselined += 1;
            } else {
                kept.push(d);
            }
        }
        let mut stale = Vec::new();
        for (key, total) in &budget {
            let consumed = used.get(key).copied().unwrap_or(0);
            if consumed < *total {
                stale.push(format!(
                    "{} {} {}: baseline allows {} finding(s), saw {}",
                    key.0, key.1, key.2, total, consumed
                ));
            }
        }
        (kept, baselined, stale)
    }
}
