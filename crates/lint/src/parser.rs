//! A lightweight item parser on top of the token lexer: functions,
//! `impl`/`trait` blocks, inline modules, `use` declarations and enums.
//!
//! This is the substrate the workspace passes (call graph, taint,
//! panic/allocation audits, trace exhaustiveness) are built on. It is
//! deliberately partial — generics, lifetimes and expression structure
//! are skipped — but it recovers exactly what call resolution needs:
//! every function's name, enclosing `impl`/`trait` type, module path,
//! and body token range, plus the file's import aliases.

use crate::checks::exempt_ranges;
use crate::lexer::{Lexed, Tok, TokKind};

/// One parsed function (or default trait method) with a body.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// The enclosing `impl`/`trait` type name, if any.
    pub self_type: Option<String>,
    /// Module path inside the crate (file modules + inline `mod`s).
    pub module: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Token index range `[open, close]` of the body braces, if any
    /// (trait method signatures have none).
    pub body: Option<(usize, usize)>,
    /// `true` when the definition sits in a `#[cfg(test)]`/`#[test]`
    /// region — exempt from the workspace passes.
    pub exempt: bool,
}

/// One binding introduced by a `use` declaration: `alias` names `path`.
#[derive(Debug, Clone)]
pub struct UseItem {
    /// The name the import binds in this file (`as` alias or the last
    /// path segment).
    pub alias: String,
    /// Full path segments, e.g. `["ssr_cluster", "SlotId"]`.
    pub path: Vec<String>,
}

/// One parsed `enum` with its variant names.
#[derive(Debug, Clone)]
pub struct EnumItem {
    /// The enum name.
    pub name: String,
    /// `(variant, line)` pairs in declaration order.
    pub variants: Vec<(String, u32)>,
}

/// Everything the workspace passes need from one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Crate directory name for `crates/<name>/…` paths.
    pub krate: Option<String>,
    /// Module path derived from the file's location under `src/`.
    pub file_module: Vec<String>,
    /// Functions with their bodies.
    pub fns: Vec<FnItem>,
    /// Import aliases.
    pub uses: Vec<UseItem>,
    /// Enums (for the trace-exhaustiveness pass).
    pub enums: Vec<EnumItem>,
}

/// The module path a file's items live in: `src/lib.rs`, `src/main.rs`
/// and `src/bin/*.rs` are crate roots (`[]`); `src/a/b.rs` is
/// `["a", "b"]`; `mod.rs` names its directory.
fn file_module_of(rel: &str) -> (Option<String>, Vec<String>) {
    let parts: Vec<&str> = rel.split('/').collect();
    let (krate, rest) = match parts.as_slice() {
        ["crates", name, "src", rest @ ..] => (Some((*name).to_owned()), rest),
        _ => (None, &parts[..0]),
    };
    let mut module: Vec<String> = Vec::new();
    if rest.first() == Some(&"bin") {
        return (krate, module);
    }
    for (i, part) in rest.iter().enumerate() {
        let last = i + 1 == rest.len();
        if last {
            let stem = part.strip_suffix(".rs").unwrap_or(part);
            if stem != "lib" && stem != "main" && stem != "mod" {
                module.push(stem.to_owned());
            }
        } else {
            module.push((*part).to_owned());
        }
    }
    (krate, module)
}

/// An open scope (module / impl / trait) and the token index of its
/// closing brace.
struct Scope {
    kind: ScopeKind,
    close: usize,
}

enum ScopeKind {
    Mod(String),
    Impl(String),
}

/// Parses one lexed file into items.
pub fn parse_file(rel: &str, lexed: &Lexed) -> ParsedFile {
    let tokens = &lexed.tokens;
    let (krate, file_module) = file_module_of(rel);
    let exempt = exempt_ranges(tokens);
    let in_exempt = |line: u32| exempt.iter().any(|&(lo, hi)| lo <= line && line <= hi);

    let mut out = ParsedFile { krate, file_module: file_module.clone(), ..Default::default() };
    let mut scopes: Vec<Scope> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        while scopes.last().is_some_and(|s| s.close < i) {
            scopes.pop();
        }
        let t = &tokens[i];
        if t.is_ident("mod") && tokens.get(i + 1).map(|n| n.kind) == Some(TokKind::Ident) {
            let name = tokens[i + 1].text.clone();
            if tokens.get(i + 2).is_some_and(|b| b.is_punct("{")) {
                let close = matching_brace(tokens, i + 2);
                scopes.push(Scope { kind: ScopeKind::Mod(name), close });
                i += 3;
                continue;
            }
            i += 2; // `mod name;` — file modules come from paths
            continue;
        }
        if t.is_ident("trait") && tokens.get(i + 1).map(|n| n.kind) == Some(TokKind::Ident) {
            let name = tokens[i + 1].text.clone();
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is_punct("{") && !tokens[j].is_punct(";") {
                j += 1;
            }
            if tokens.get(j).is_some_and(|b| b.is_punct("{")) {
                let close = matching_brace(tokens, j);
                scopes.push(Scope { kind: ScopeKind::Impl(name), close });
                i = j + 1;
            } else {
                i = j + 1;
            }
            continue;
        }
        if t.is_ident("impl") {
            if let Some((type_name, open)) = impl_target(tokens, i) {
                let close = matching_brace(tokens, open);
                scopes.push(Scope { kind: ScopeKind::Impl(type_name), close });
                i = open + 1;
                continue;
            }
        }
        if t.is_ident("enum") && tokens.get(i + 1).map(|n| n.kind) == Some(TokKind::Ident) {
            if let Some(item) = parse_enum(tokens, i) {
                out.enums.push(item);
            }
        }
        if t.is_ident("use") && use_at_statement(tokens, i) {
            let (items, next) = parse_use(tokens, i + 1);
            out.uses.extend(items);
            i = next;
            continue;
        }
        if t.is_ident("fn") && tokens.get(i + 1).map(|n| n.kind) == Some(TokKind::Ident) {
            let name = tokens[i + 1].text.clone();
            // Find the body `{` (or `;` for trait signatures). Braces
            // cannot appear in generics, parameter lists or return types
            // at this syntactic level, but array types (`[T; N]`) carry a
            // `;` — skip bracketed ranges so it doesn't read as body-less.
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is_punct("{") && !tokens[j].is_punct(";") {
                if tokens[j].is_punct("[") {
                    j = past_brackets(tokens, j);
                } else {
                    j += 1;
                }
            }
            let body = if tokens.get(j).is_some_and(|b| b.is_punct("{")) {
                Some((j, matching_brace(tokens, j)))
            } else {
                None
            };
            let mut module = file_module.clone();
            let mut self_type = None;
            for s in &scopes {
                match &s.kind {
                    ScopeKind::Mod(m) => module.push(m.clone()),
                    ScopeKind::Impl(ty) => self_type = Some(ty.clone()),
                }
            }
            out.fns.push(FnItem {
                name,
                self_type,
                module,
                line: t.line,
                col: t.col,
                body,
                exempt: in_exempt(t.line),
            });
            i = body.map_or(j + 1, |(open, _)| open + 1);
            continue;
        }
        i += 1;
    }
    out
}

/// For an `impl` keyword at `i`, returns the implemented type name
/// (last path segment; the `for` target for trait impls) and the index
/// of the opening `{`.
fn impl_target(tokens: &[Tok], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    // Skip the generic parameter list on `impl<…>`.
    if tokens.get(j).is_some_and(|t| t.is_punct("<")) {
        let mut depth = 0i32;
        while j < tokens.len() {
            if tokens[j].is_punct("<") {
                depth += 1;
            } else if tokens[j].is_punct(">") {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    let mut angle = 0i32;
    let mut open = None;
    let mut last_ident_at_zero: Option<String> = None;
    let mut frozen = false; // stop capturing once a `where` clause starts
    let mut k = j;
    while k < tokens.len() {
        let t = &tokens[k];
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if angle == 0 {
            if t.is_punct("{") {
                open = Some(k);
                break;
            }
            if t.is_punct(";") {
                return None; // `impl Trait for Type;` — not a block
            }
            if t.is_ident("where") {
                frozen = true;
            } else if !frozen {
                if t.is_ident("for") {
                    last_ident_at_zero = None; // the target follows `for`
                } else if t.kind == TokKind::Ident && !t.is_ident("dyn") && !t.is_ident("mut") {
                    last_ident_at_zero = Some(t.text.clone());
                }
            }
        }
        k += 1;
    }
    Some((last_ident_at_zero?, open?))
}

/// `true` when the `use` at `i` starts a declaration (not e.g. a
/// variable named `use`, which is impossible anyway — this just guards
/// against pathological token contexts).
fn use_at_statement(tokens: &[Tok], i: usize) -> bool {
    match i.checked_sub(1).and_then(|p| tokens.get(p)) {
        None => true,
        Some(prev) => {
            prev.is_punct(";")
                || prev.is_punct("{")
                || prev.is_punct("}")
                || prev.is_punct("]")
                || prev.is_ident("pub")
                || prev.is_punct(")")
        }
    }
}

/// Parses the use tree starting just past the `use` keyword; returns
/// the bindings and the token index just past the terminating `;`.
fn parse_use(tokens: &[Tok], start: usize) -> (Vec<UseItem>, usize) {
    let mut items = Vec::new();
    let mut i = start;
    // Skip a `pub(crate)`-style visibility that precedes nothing here
    // (visibility comes before `use`, so nothing to skip) — but do skip
    // a leading `::`.
    if tokens.get(i).is_some_and(|t| t.is_punct("::")) {
        i += 1;
    }
    let end = parse_use_tree(tokens, i, &mut Vec::new(), &mut items);
    let mut j = end;
    while j < tokens.len() && !tokens[j].is_punct(";") {
        j += 1;
    }
    (items, j + 1)
}

/// Recursively parses one use subtree with `prefix` already consumed;
/// returns the index just past the subtree.
fn parse_use_tree(
    tokens: &[Tok],
    mut i: usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<UseItem>,
) -> usize {
    let depth_at_entry = prefix.len();
    let mut segments = 0usize;
    loop {
        match tokens.get(i) {
            Some(t) if t.kind == TokKind::Ident && t.text == "as" => {
                if let Some(alias) = tokens.get(i + 1) {
                    if alias.kind == TokKind::Ident {
                        out.push(UseItem { alias: alias.text.clone(), path: prefix.clone() });
                        segments = 0; // consumed by the alias
                        i += 2;
                        continue;
                    }
                }
                i += 1;
            }
            Some(t) if t.kind == TokKind::Ident => {
                prefix.push(t.text.clone());
                segments += 1;
                i += 1;
            }
            Some(t) if t.is_punct("::") => {
                i += 1;
            }
            Some(t) if t.is_punct("*") => {
                // Glob import: unresolvable, drop.
                segments = 0;
                prefix.truncate(depth_at_entry);
                i += 1;
            }
            Some(t) if t.is_punct("{") => {
                i += 1;
                loop {
                    i = parse_use_tree(tokens, i, prefix, out);
                    match tokens.get(i) {
                        Some(t) if t.is_punct(",") => i += 1,
                        Some(t) if t.is_punct("}") => {
                            i += 1;
                            break;
                        }
                        _ => break,
                    }
                }
                segments = 0;
                prefix.truncate(depth_at_entry);
            }
            Some(t) if t.is_punct(",") || t.is_punct("}") || t.is_punct(";") => break,
            Some(_) => i += 1,
            None => break,
        }
    }
    if segments > 0 {
        if let Some(last) = prefix.last().cloned() {
            out.push(UseItem { alias: last, path: prefix.clone() });
        }
    }
    prefix.truncate(depth_at_entry);
    i
}

/// Parses `enum Name { … }` at `i` into variant names.
fn parse_enum(tokens: &[Tok], i: usize) -> Option<EnumItem> {
    let name = tokens.get(i + 1)?.text.clone();
    let mut j = i + 2;
    while j < tokens.len() && !tokens[j].is_punct("{") && !tokens[j].is_punct(";") {
        j += 1;
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct("{")) {
        return None;
    }
    let close = matching_brace(tokens, j);
    let mut variants = Vec::new();
    let mut k = j + 1;
    let mut expect_variant = true;
    while k < close {
        let t = &tokens[k];
        if t.is_punct("#") && tokens.get(k + 1).is_some_and(|b| b.is_punct("[")) {
            k = skip_brackets(tokens, k + 1);
            continue;
        }
        if expect_variant && t.kind == TokKind::Ident {
            variants.push((t.text.clone(), t.line));
            expect_variant = false;
            k += 1;
            continue;
        }
        match t.text.as_str() {
            "{" => k = matching_brace(tokens, k) + 1,
            "(" => k = skip_parens(tokens, k) + 1,
            "," if t.kind == TokKind::Punct => {
                expect_variant = true;
                k += 1;
            }
            _ => k += 1,
        }
    }
    Some(EnumItem { name, variants })
}

/// Returns the index of the `}` matching the `{` at `open` (last token
/// if unbalanced).
pub(crate) fn matching_brace(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Returns the index just past the `]` matching the `[` at `open`.
fn past_brackets(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
    }
    tokens.len()
}

/// Returns the index of the `)` matching the `(` at `open`.
fn skip_parens(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Returns the index just past the `]` matching the `[` at `open`.
fn skip_brackets(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
    }
    tokens.len()
}
