//! Reasoned-suppression directives, shared by every check family.
//!
//! One module owns the `// ssr-lint: allow(CODE, reason = "…")` grammar
//! so the per-file passes (D0xx/S001) and the workspace call-graph
//! passes (D1xx/P001/T001/A001) silence findings identically: a trailing
//! comment governs its own line, a standalone comment governs the next
//! line, and every directive must carry a reason.
//!
//! Two lint codes belong to the directive machinery itself:
//!
//! * **L001** — malformed or reasonless directive;
//! * **L002** — unknown CODE in a directive. Before v2 this silently
//!   matched nothing, which is the worst failure mode a suppression
//!   system can have: the author believes a finding is excused while the
//!   linter believes no such code exists. It is now a hard error.

use crate::checks::CODES;
use crate::lexer::Lexed;
use crate::report::Diagnostic;

/// One parsed `// ssr-lint: allow(CODE, reason = "…")` directive.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The lint code being silenced.
    pub code: String,
    /// The justification, if given (`None` is itself an L001 finding).
    pub reason: Option<String>,
    /// The line whose findings this directive silences: its own line for
    /// a trailing comment, the next line for a standalone comment.
    pub applies_line: u32,
    /// The line the directive comment sits on.
    pub line: u32,
}

/// Extracts directives from line comments; malformed or reasonless
/// directives produce L001 findings, unknown codes produce L002.
pub fn parse_directives(rel: &str, lexed: &Lexed) -> (Vec<Suppression>, Vec<Diagnostic>) {
    let mut directives = Vec::new();
    let mut diags = Vec::new();
    for comment in &lexed.comments {
        // Directives live in plain `//` comments only; doc comments may
        // *describe* the syntax without being directives.
        if comment.text.starts_with("///") || comment.text.starts_with("//!") {
            continue;
        }
        let Some(at) = comment.text.find("ssr-lint:") else { continue };
        let rest = comment.text[at + "ssr-lint:".len()..].trim();
        let applies_line = if comment.own_line { comment.line + 1 } else { comment.line };
        match parse_allow(rest) {
            Ok((code, reason)) => {
                if !CODES.contains(&code.as_str()) {
                    diags.push(Diagnostic::new(
                        "L002",
                        rel,
                        comment.line,
                        comment.col,
                        format!(
                            "unknown lint code `{code}` in ssr-lint directive — the \
                             suppression silences nothing"
                        ),
                        format!("known codes: {}", CODES.join(", ")),
                    ));
                    continue;
                }
                if reason.is_none() {
                    diags.push(Diagnostic::new(
                        "L001",
                        rel,
                        comment.line,
                        comment.col,
                        format!("suppression of {code} without a reason"),
                        format!(
                            "write `// ssr-lint: allow({code}, reason = \"why this is \
                             deterministic\")` — every exception to the replay contract \
                             must carry its justification"
                        ),
                    ));
                }
                directives.push(Suppression { code, reason, applies_line, line: comment.line });
            }
            Err(why) => {
                diags.push(Diagnostic::new(
                    "L001",
                    rel,
                    comment.line,
                    comment.col,
                    format!("malformed ssr-lint directive: {why}"),
                    "expected `// ssr-lint: allow(CODE, reason = \"…\")`".to_owned(),
                ));
            }
        }
    }
    (directives, diags)
}

/// Parses `allow(CODE)` / `allow(CODE, reason = "…")`.
fn parse_allow(text: &str) -> Result<(String, Option<String>), String> {
    let rest = text
        .strip_prefix("allow")
        .ok_or_else(|| "expected `allow(...)`".to_owned())?
        .trim_start();
    let rest = rest.strip_prefix('(').ok_or_else(|| "expected `(` after `allow`".to_owned())?;
    let close = rest.rfind(')').ok_or_else(|| "missing closing `)`".to_owned())?;
    let inner = &rest[..close];
    let mut parts = inner.splitn(2, ',');
    let code = parts.next().unwrap_or("").trim().to_owned();
    if code.is_empty() {
        return Err("missing lint code".to_owned());
    }
    let reason = match parts.next() {
        None => None,
        Some(arg) => {
            let arg = arg.trim();
            let value = arg
                .strip_prefix("reason")
                .map(str::trim_start)
                .and_then(|a| a.strip_prefix('='))
                .map(str::trim)
                .ok_or_else(|| "expected `reason = \"…\"`".to_owned())?;
            let value = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| "reason must be a double-quoted string".to_owned())?;
            if value.trim().is_empty() {
                return Err("reason must not be empty".to_owned());
            }
            Some(value.to_owned())
        }
    };
    Ok((code, reason))
}
