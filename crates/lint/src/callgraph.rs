//! The interprocedural call graph over the whole workspace.
//!
//! Call resolution is best-effort and **conservative**: an edge is
//! recorded only when the callee can be pinned to a workspace function
//! through one of the rules below; everything else (std calls, trait
//! dispatch, closures, ambiguous method names) resolves to nothing.
//! Conservatism here means *missing* edges, so downstream passes may
//! under-report through dynamic dispatch but never chase phantom paths.
//!
//! Resolution rules, in order:
//!
//! 1. `f(…)` — a free function in the caller's own module, else a
//!    `use`-imported free function.
//! 2. `self.f(…)` — a method of the enclosing `impl` type.
//! 3. `Self::f(…)` / `Type::f(…)` — an inherent method of the named
//!    type, located via the current crate, the file's imports, or a
//!    workspace-unique type name.
//! 4. `crate::`/`self::`/`super::`/`ssr_<x>::`-qualified paths, with
//!    module-relative fallback for unprefixed child-module paths.
//! 5. `expr.f(…)` with a non-`self` receiver — only when `f` names
//!    exactly one workspace method *and* is not a common std method
//!    name (so `map.insert(…)` can never alias a workspace `insert`).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Lexed, Tok, TokKind};
use crate::parser::ParsedFile;

/// Method names that commonly resolve to std types; the unique-name
/// fallback (rule 5) never fires for these, because a receiver we
/// cannot type is far more likely a std collection than a workspace
/// type sharing the name.
const STD_METHOD_NAMES: &[&str] = &[
    "new", "default", "clone", "len", "is_empty", "get", "get_mut", "insert", "remove", "push",
    "pop", "iter", "iter_mut", "into_iter", "next", "map", "and_then", "unwrap", "expect",
    "unwrap_or", "unwrap_or_else", "unwrap_or_default", "ok", "err", "is_some", "is_none",
    "contains", "contains_key", "entry", "keys", "values", "values_mut", "first", "last", "sort",
    "sort_by", "sort_by_key", "sort_unstable", "sort_unstable_by", "retain", "extend", "drain",
    "clear", "min", "max", "sum", "count", "collect", "filter", "filter_map", "find", "any",
    "all", "fold", "rev", "take", "skip", "chain", "zip", "enumerate", "to_owned", "to_string",
    "as_str", "as_ref", "as_mut", "into", "from", "parse", "split", "trim", "starts_with",
    "ends_with", "push_str", "join", "abs", "floor", "ceil", "round", "powi", "powf", "sqrt",
    "min_by", "max_by", "cmp", "partial_cmp", "total_cmp", "eq", "hash", "fmt", "write", "flush",
    "read", "swap", "replace", "position", "binary_search", "copied", "cloned", "flatten",
    "flat_map", "peekable", "windows", "chunks", "or_insert", "or_insert_with", "or_default",
    "map_or", "map_err", "ok_or", "ok_or_else", "then", "then_some", "is_ok", "is_err",
    "swap_remove", "truncate", "resize", "split_off", "append", "dedup", "repeat", "bytes",
    "chars", "lines", "as_bytes", "as_slice", "to_vec", "fill", "get_or_insert_with",
    "saturating_sub", "saturating_add", "checked_sub", "checked_add", "min_by_key", "max_by_key",
    "last_mut", "first_mut", "front", "back", "remove_entry", "take_while", "skip_while",
    "split_whitespace", "splitn", "rsplitn", "strip_prefix", "strip_suffix", "char_indices",
    "display", "exists", "is_dir", "is_file", "extension", "file_name", "components",
];

/// One workspace function in the graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type, if any.
    pub self_type: Option<String>,
    /// Crate directory name.
    pub krate: String,
    /// Module path inside the crate.
    pub module: Vec<String>,
    /// Workspace-relative file path.
    pub file: String,
    /// Index of the file in the workspace file list.
    pub file_idx: usize,
    /// 1-based definition line.
    pub line: u32,
    /// Body token range `[open, close]`, if the function has one.
    pub body: Option<(usize, usize)>,
}

/// One resolved call edge with its first call site.
#[derive(Debug, Clone, Copy)]
pub struct CallSite {
    /// Callee function index.
    pub callee: usize,
    /// 1-based line of the call in the caller's file.
    pub line: u32,
    /// 1-based column of the call.
    pub col: u32,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Graph nodes, in (file, definition order). Exempt (test-region)
    /// functions are not included.
    pub fns: Vec<FnNode>,
    /// Forward edges: `calls[i]` are the resolved callees of `fns[i]`,
    /// deduplicated per callee (first call site wins), in callee order.
    pub calls: Vec<Vec<CallSite>>,
    /// Reverse adjacency: `callers[i]` lists every `j` with an edge
    /// `j -> i`.
    pub callers: Vec<Vec<usize>>,
}

/// Per-file inputs to graph construction.
pub struct GraphFile<'a> {
    /// Workspace-relative path.
    pub rel: &'a str,
    /// The lexed tokens.
    pub lexed: &'a Lexed,
    /// The parsed items.
    pub parsed: &'a ParsedFile,
}

impl CallGraph {
    /// Builds the graph from every parsed workspace file.
    pub fn build(files: &[GraphFile<'_>]) -> CallGraph {
        let mut g = CallGraph::default();
        // Token ranges of every fn body per file, to keep a nested fn's
        // calls out of its enclosing function.
        let mut bodies_per_file: Vec<Vec<(usize, usize)>> = vec![Vec::new(); files.len()];
        for (fi, f) in files.iter().enumerate() {
            let Some(krate) = f.parsed.krate.clone() else { continue };
            for item in &f.parsed.fns {
                if item.exempt {
                    continue;
                }
                if let Some(b) = item.body {
                    bodies_per_file[fi].push(b);
                }
                g.fns.push(FnNode {
                    name: item.name.clone(),
                    self_type: item.self_type.clone(),
                    krate: krate.clone(),
                    module: item.module.clone(),
                    file: f.rel.to_owned(),
                    file_idx: fi,
                    line: item.line,
                    body: item.body,
                });
            }
        }

        let crate_names: BTreeSet<String> = g.fns.iter().map(|f| f.krate.clone()).collect();
        // (crate, module, name) -> free functions.
        let mut free: BTreeMap<(String, Vec<String>, String), Vec<usize>> = BTreeMap::new();
        // (crate, type, method) -> methods.
        let mut methods: BTreeMap<(String, String, String), Vec<usize>> = BTreeMap::new();
        // type -> crates that impl it.
        let mut type_crates: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        // method name -> all workspace methods with that name.
        let mut by_method: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (idx, f) in g.fns.iter().enumerate() {
            match &f.self_type {
                None => free
                    .entry((f.krate.clone(), f.module.clone(), f.name.clone()))
                    .or_default()
                    .push(idx),
                Some(ty) => {
                    methods
                        .entry((f.krate.clone(), ty.clone(), f.name.clone()))
                        .or_default()
                        .push(idx);
                    type_crates.entry(ty.clone()).or_default().insert(f.krate.clone());
                    by_method.entry(f.name.clone()).or_default().push(idx);
                }
            }
        }

        let resolver = Resolver { free, methods, type_crates, by_method, crate_names };

        g.calls = vec![Vec::new(); g.fns.len()];
        for i in 0..g.fns.len() {
            let node = &g.fns[i];
            let Some((open, close)) = node.body else { continue };
            let file = &files[node.file_idx];
            let uses = &file.parsed.uses;
            let nested: Vec<(usize, usize)> = bodies_per_file[node.file_idx]
                .iter()
                .copied()
                .filter(|&(o, c)| o > open && c < close)
                .collect();
            let mut sites: Vec<CallSite> = Vec::new();
            let tokens = &file.lexed.tokens;
            let mut k = open + 1;
            while k < close {
                if let Some(&(_, nc)) = nested.iter().find(|&&(no, _)| no == k) {
                    k = nc + 1;
                    continue;
                }
                if tokens[k].kind == TokKind::Ident
                    && tokens.get(k + 1).is_some_and(|t| t.is_punct("("))
                    && !tokens.get(k.wrapping_sub(1)).is_some_and(|t| t.is_ident("fn"))
                {
                    for callee in resolver.resolve(node, uses, tokens, k) {
                        if !sites.iter().any(|s| s.callee == callee) {
                            sites.push(CallSite {
                                callee,
                                line: tokens[k].line,
                                col: tokens[k].col,
                            });
                        }
                    }
                }
                k += 1;
            }
            sites.sort_by_key(|s| s.callee);
            g.calls[i] = sites;
        }

        g.callers = vec![Vec::new(); g.fns.len()];
        for (i, sites) in g.calls.iter().enumerate() {
            for s in sites {
                g.callers[s.callee].push(i);
            }
        }
        g
    }

    /// Token ranges of functions nested inside `fns[idx]`'s body in the
    /// same file — scans over a body should skip these so a closure-free
    /// nested `fn` is attributed to itself, not its host.
    pub fn nested_bodies(&self, idx: usize) -> Vec<(usize, usize)> {
        let Some((open, close)) = self.fns[idx].body else { return Vec::new() };
        let file_idx = self.fns[idx].file_idx;
        self.fns
            .iter()
            .filter(|o| o.file_idx == file_idx)
            .filter_map(|o| o.body)
            .filter(|&(o, c)| o > open && c < close)
            .collect()
    }

    /// Forward reachability from `roots`, returning for each reached
    /// function the parent that first reached it (`None` for roots).
    pub fn reach_forward(&self, roots: &[usize]) -> BTreeMap<usize, Option<usize>> {
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(r) {
                e.insert(None);
                queue.push(r);
            }
        }
        let mut head = 0usize;
        while head < queue.len() {
            let cur = queue[head];
            head += 1;
            for s in &self.calls[cur] {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(s.callee)
                {
                    e.insert(Some(cur));
                    queue.push(s.callee);
                }
            }
        }
        parent
    }

    /// The chain `root … -> idx` implied by a `reach_forward` parent
    /// map, as function indices from root to `idx`.
    pub fn chain_to(parents: &BTreeMap<usize, Option<usize>>, idx: usize) -> Vec<usize> {
        let mut chain = vec![idx];
        let mut cur = idx;
        while let Some(Some(p)) = parents.get(&cur) {
            chain.push(*p);
            cur = *p;
        }
        chain.reverse();
        chain
    }
}

/// Name-resolution tables.
struct Resolver {
    free: BTreeMap<(String, Vec<String>, String), Vec<usize>>,
    methods: BTreeMap<(String, String, String), Vec<usize>>,
    type_crates: BTreeMap<String, BTreeSet<String>>,
    by_method: BTreeMap<String, Vec<usize>>,
    crate_names: BTreeSet<String>,
}

/// `true` for identifiers that start like a type/variant name.
fn is_camel(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_uppercase())
}

/// Keywords that can directly precede a `(` without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "as", "move", "let", "else", "fn",
    "where", "impl", "dyn", "pub", "crate", "box", "ref", "mut",
];

impl Resolver {
    fn method(&self, krate: &str, ty: &str, name: &str) -> Option<&Vec<usize>> {
        self.methods.get(&(krate.to_owned(), ty.to_owned(), name.to_owned()))
    }

    /// Resolves the call whose name token sits at `k` (followed by `(`)
    /// to zero or more workspace functions.
    fn resolve(
        &self,
        caller: &FnNode,
        uses: &[crate::parser::UseItem],
        tokens: &[Tok],
        k: usize,
    ) -> Vec<usize> {
        let name = tokens[k].text.as_str();
        let prev = k.checked_sub(1).and_then(|p| tokens.get(p));
        match prev {
            Some(p) if p.is_punct(".") => {
                // Method call. `self.f(…)` resolves via the impl type;
                // any other receiver via the unique-name fallback.
                let recv = k.checked_sub(2).and_then(|p| tokens.get(p));
                let recv_is_plain_self = recv.is_some_and(|r| r.is_ident("self"))
                    && !k.checked_sub(3).and_then(|p| tokens.get(p)).is_some_and(|t| {
                        t.is_punct(".") || t.is_punct("::")
                    });
                if recv_is_plain_self {
                    if let Some(ty) = &caller.self_type {
                        if let Some(v) = self.method(&caller.krate, ty, name) {
                            return v.clone();
                        }
                    }
                    return Vec::new();
                }
                self.unique_method(name)
            }
            Some(p) if p.is_punct("::") => {
                let segs = path_before(tokens, k);
                let Some((head, rest)) = segs.split_first() else { return Vec::new() };
                self.resolve_headed(caller, uses, head, rest, name, false)
            }
            _ => {
                if is_camel(name) || NON_CALL_KEYWORDS.contains(&name) {
                    return Vec::new(); // tuple-struct/variant constructor or keyword
                }
                // A free function in the caller's own module…
                let hit = self.resolve_free_exact(&caller.krate, &caller.module, name);
                if !hit.is_empty() {
                    return hit;
                }
                // …or an imported one.
                if let Some(u) = uses.iter().find(|u| u.alias == name) {
                    if let Some((head, rest)) = u.path.split_first() {
                        return self.resolve_headed(caller, uses, head, rest, name, true);
                    }
                }
                Vec::new()
            }
        }
    }

    /// Shared tail of qualified-path resolution once the head segment is
    /// known. `from_use` marks an alias expansion (whose path already
    /// ends at the function, so `rest` excludes the name).
    fn resolve_headed(
        &self,
        caller: &FnNode,
        uses: &[crate::parser::UseItem],
        head: &str,
        rest: &[String],
        name: &str,
        from_use: bool,
    ) -> Vec<usize> {
        let krate = caller.krate.as_str();
        match head {
            "crate" => self.resolve_abs(krate, rest, name),
            "self" => {
                let mut m = caller.module.clone();
                m.extend(rest.iter().cloned());
                self.resolve_abs_in(krate, &m, name, rest)
            }
            "super" => {
                let mut m = caller.module.clone();
                m.pop();
                m.extend(rest.iter().cloned());
                self.resolve_abs_in(krate, &m, name, rest)
            }
            "Self" => match &caller.self_type {
                Some(ty) => self.method(krate, ty, name).cloned().unwrap_or_default(),
                None => Vec::new(),
            },
            _ if self.crate_names.contains(ext_to_dir(head)) => {
                self.resolve_abs(ext_to_dir(head), rest, name)
            }
            _ if is_camel(head) => {
                // `Type::f(…)` — locate the type's crate: current crate
                // first, then the file's imports, then a workspace-unique
                // type name.
                if let Some(v) = self.method(krate, head, name) {
                    return v.clone();
                }
                if let Some(u) = uses.iter().find(|u| u.alias == head) {
                    if let Some(first) = u.path.first() {
                        let dir = ext_to_dir(first);
                        if self.crate_names.contains(dir) {
                            if let Some(v) = self.method(dir, head, name) {
                                return v.clone();
                            }
                        }
                    }
                }
                if let Some(crates) = self.type_crates.get(head) {
                    if crates.len() == 1 {
                        let c = crates.iter().next().cloned().unwrap_or_default();
                        return self.method(&c, head, name).cloned().unwrap_or_default();
                    }
                }
                Vec::new()
            }
            _ => {
                // A lowercase head: a child module of the current module,
                // a crate-root-relative module, or a use-alias for a
                // module path.
                let mut m = caller.module.clone();
                m.push(head.to_owned());
                m.extend(rest.iter().cloned());
                let hit = self.resolve_abs_in(krate, &m, name, rest);
                if !hit.is_empty() {
                    return hit;
                }
                let mut m2: Vec<String> = vec![head.to_owned()];
                m2.extend(rest.iter().cloned());
                let hit = self.resolve_abs_in(krate, &m2, name, rest);
                if !hit.is_empty() {
                    return hit;
                }
                if !from_use {
                    if let Some(u) = uses.iter().find(|u| u.alias == head) {
                        if let Some((h2, r2)) = u.path.split_first() {
                            let mut full: Vec<String> = r2.to_vec();
                            full.extend(rest.iter().cloned());
                            return self.resolve_headed(caller, uses, h2, &full, name, true);
                        }
                    }
                }
                Vec::new()
            }
        }
    }

    /// Resolves within a crate where the trailing segment may be a type
    /// (`…::Type::f`) or a module path (`…::mod::f`).
    fn resolve_abs(&self, krate: &str, segs: &[String], name: &str) -> Vec<usize> {
        if let Some(last) = segs.last() {
            if is_camel(last) {
                return self.method(krate, last, name).cloned().unwrap_or_default();
            }
        }
        self.resolve_in_module(krate, segs, name)
    }

    /// Like [`resolve_abs`](Resolver::resolve_abs) for an
    /// already-joined module path: a trailing `Type` segment (taken
    /// from the original `rest`) resolves as a method.
    fn resolve_abs_in(
        &self,
        krate: &str,
        module: &[String],
        name: &str,
        rest: &[String],
    ) -> Vec<usize> {
        if let Some(last) = rest.last() {
            if is_camel(last) {
                return self.method(krate, last, name).cloned().unwrap_or_default();
            }
        }
        self.resolve_in_module(krate, module, name)
    }

    fn resolve_free_exact(&self, krate: &str, module: &[String], name: &str) -> Vec<usize> {
        self.free
            .get(&(krate.to_owned(), module.to_vec(), name.to_owned()))
            .cloned()
            .unwrap_or_default()
    }

    /// Free-function lookup, tolerating the re-export convention where
    /// `lib.rs` re-exports module items at the crate root: an exact
    /// module match first, then a crate-wide unique name.
    fn resolve_in_module(&self, krate: &str, module: &[String], name: &str) -> Vec<usize> {
        let hit = self.resolve_free_exact(krate, module, name);
        if !hit.is_empty() {
            return hit;
        }
        // `use ssr_x::f` where `f` lives in `ssr_x::inner` but is
        // re-exported: accept when the crate has exactly one free fn of
        // that name.
        if module.is_empty() {
            let matches: Vec<usize> = self
                .free
                .iter()
                .filter(|((c, _, n), _)| c == krate && n == name)
                .flat_map(|(_, v)| v.iter().copied())
                .collect();
            if matches.len() == 1 {
                return matches;
            }
        }
        Vec::new()
    }

    /// Rule 5: a non-`self` receiver resolves only through a workspace-
    /// unique, non-std method name.
    fn unique_method(&self, name: &str) -> Vec<usize> {
        if STD_METHOD_NAMES.contains(&name) {
            return Vec::new();
        }
        match self.by_method.get(name) {
            Some(v) if v.len() == 1 => v.clone(),
            _ => Vec::new(),
        }
    }
}

/// Maps an extern-crate name (`ssr_cluster`) to its directory name
/// (`cluster`); unprefixed names map to themselves.
fn ext_to_dir(name: &str) -> &str {
    name.strip_prefix("ssr_").unwrap_or(name)
}

/// Collects the `::`-separated path segments immediately before the
/// call-name token at `k` (whose previous token is `::`), outermost
/// first.
fn path_before(tokens: &[Tok], k: usize) -> Vec<String> {
    let mut segs: Vec<String> = Vec::new();
    let mut p = k; // sits on the name; step back over `:: seg` pairs
    while p >= 2 && tokens[p - 1].is_punct("::") {
        let t = &tokens[p - 2];
        if t.kind == TokKind::Ident {
            segs.push(t.text.clone());
            p -= 2;
        } else if t.is_punct(">") {
            // Turbofish on a path segment (`Foo::<T>::new`): skip the
            // generic arguments back to the matching `<`.
            let mut depth = 0i32;
            let mut q = p - 2;
            loop {
                if tokens[q].is_punct(">") {
                    depth += 1;
                } else if tokens[q].is_punct("<") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if q == 0 {
                    break;
                }
                q -= 1;
            }
            if q >= 1 && tokens[q - 1].is_punct("::") {
                p = q; // now at `<`, previous is `::`
            } else {
                break;
            }
        } else {
            break;
        }
    }
    segs.reverse();
    segs
}
