//! Interprocedural nondeterminism-taint propagation (the `D1xx` family).
//!
//! Sources of nondeterminism — wall-clock reads, thread spawns,
//! hash-collection iteration, `RandomState` construction,
//! pointer-address inspection, and environment/filesystem input — taint
//! the function containing them; taint then propagates backwards along
//! call edges. A function in a [`DETERMINISTIC_CRATES`] crate that can
//! reach a source is a finding, and the diagnostic carries the full
//! sink→source call chain.
//!
//! Two refinements keep the reports actionable:
//!
//! * **Frontier flagging** — only the *last* deterministic-crate
//!   function on a witness chain is flagged, so one leaky utility does
//!   not light up every transitive caller.
//! * **Sanctioned boundaries** — functions defined in the timing,
//!   threading and RNG allowlist files ([`TIMING_ONLY_FILES`],
//!   [`THREADING_FILES`], [`RNG_HOME_FILES`]) are neither sources nor
//!   propagators: `walltime::Stopwatch` may read `Instant` without
//!   tainting every caller of `--timing` instrumentation.
//!
//! `D101`–`D103` duplicate ground the per-file lints already cover
//! (D002/D003/D001), so they require at least one call hop; `D104`–`D106`
//! have no per-file counterpart and also fire at distance zero.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{CallGraph, GraphFile};
use crate::checks::{
    hash_iter_sites, HashIterSite, DETERMINISTIC_CRATES, RNG_HOME_FILES, THREADING_FILES,
    TIMING_ONLY_FILES,
};
use crate::lexer::Tok;
use crate::report::Diagnostic;

/// One taint category.
struct Category {
    code: &'static str,
    /// Minimum call hops before a finding fires (see module docs).
    min_hops: u32,
    /// Human phrase for the source kind.
    what: &'static str,
}

const CATEGORIES: &[Category] = &[
    Category { code: "D101", min_hops: 1, what: "a wall-clock read" },
    Category { code: "D102", min_hops: 1, what: "thread/channel machinery" },
    Category { code: "D103", min_hops: 1, what: "hash-collection iteration" },
    Category { code: "D104", min_hops: 0, what: "a randomized hasher" },
    Category { code: "D105", min_hops: 0, what: "pointer-address inspection" },
    Category { code: "D106", min_hops: 0, what: "environment/filesystem input" },
];

/// A detected source occurrence inside one function.
#[derive(Debug, Clone)]
struct Source {
    line: u32,
    col: u32,
    detail: String,
}

/// Runs every taint category over the call graph, appending findings.
pub fn check_taint(graph: &CallGraph, files: &[GraphFile<'_>], out: &mut Vec<Diagnostic>) {
    let sanctioned: BTreeSet<&str> = TIMING_ONLY_FILES
        .iter()
        .chain(THREADING_FILES)
        .chain(RNG_HOME_FILES)
        .copied()
        .collect();
    // Hash-iteration sites are file-scoped (taint names are collected
    // per file); compute once.
    let hash_sites: Vec<Vec<HashIterSite>> =
        files.iter().map(|f| hash_iter_sites(f.lexed)).collect();

    for cat in CATEGORIES {
        let mut sources: BTreeMap<usize, Source> = BTreeMap::new();
        for (idx, node) in graph.fns.iter().enumerate() {
            if sanctioned.contains(node.file.as_str()) {
                continue;
            }
            let Some((open, close)) = node.body else { continue };
            let tokens = &files[node.file_idx].lexed.tokens;
            let nested = graph.nested_bodies(idx);
            let in_nested = |k: usize| nested.iter().any(|&(o, c)| o <= k && k <= c);
            let found = match cat.code {
                "D101" => find_tokens(tokens, open, close, &in_nested, |t, k| {
                    (t.is_ident("Instant") || t.is_ident("SystemTime"))
                        .then(|| (k, t.text.clone()))
                }),
                "D102" => find_tokens(tokens, open, close, &in_nested, |t, k| {
                    thread_source(tokens, t, k).map(|d| (k, d))
                }),
                "D103" => hash_sites[node.file_idx]
                    .iter()
                    .find(|s| s.idx > open && s.idx < close && !in_nested(s.idx))
                    .map(|s| (s.idx, s.desc())),
                "D104" => find_tokens(tokens, open, close, &in_nested, |t, k| {
                    (t.is_ident("RandomState") || t.is_ident("DefaultHasher"))
                        .then(|| (k, t.text.clone()))
                }),
                "D105" => find_tokens(tokens, open, close, &in_nested, |t, k| {
                    ptr_source(tokens, t, k).map(|d| (k, d))
                }),
                "D106" => find_tokens(tokens, open, close, &in_nested, |t, k| {
                    env_io_source(tokens, t, k).map(|d| (k, d))
                }),
                _ => None,
            };
            if let Some((k, detail)) = found {
                sources.insert(
                    idx,
                    Source { line: tokens[k].line, col: tokens[k].col, detail },
                );
            }
        }
        propagate(graph, cat, &sources, &sanctioned, out);
    }
}

/// Scans `(open, close)` for the first token the predicate accepts.
fn find_tokens(
    tokens: &[Tok],
    open: usize,
    close: usize,
    in_nested: &dyn Fn(usize) -> bool,
    pred: impl Fn(&Tok, usize) -> Option<(usize, String)>,
) -> Option<(usize, String)> {
    (open + 1..close).find_map(|k| {
        if in_nested(k) {
            return None;
        }
        pred(&tokens[k], k)
    })
}

/// `std::thread`, `thread::spawn`/`scope`, or `mpsc` (mirrors D003).
fn thread_source(tokens: &[Tok], t: &Tok, k: usize) -> Option<String> {
    if t.is_ident("thread") {
        (k >= 2 && tokens[k - 1].is_punct("::") && tokens[k - 2].is_ident("std"))
            .then(|| "std::thread".to_owned())
    } else if t.is_ident("spawn") || t.is_ident("scope") {
        (k >= 2 && tokens[k - 1].is_punct("::") && tokens[k - 2].is_ident("thread"))
            .then(|| format!("thread::{}", t.text))
    } else {
        t.is_ident("mpsc").then(|| "mpsc".to_owned())
    }
}

/// `.as_ptr()` or an `as *const`/`as *mut` cast — the only way a
/// pointer's *address* (an ASLR artifact) can reach output, since
/// format-string contents are opaque to the lexer.
fn ptr_source(tokens: &[Tok], t: &Tok, k: usize) -> Option<String> {
    if t.is_ident("as_ptr") && k >= 1 && tokens[k - 1].is_punct(".") {
        return Some("as_ptr".to_owned());
    }
    if t.is_ident("as")
        && tokens.get(k + 1).is_some_and(|n| n.is_punct("*"))
        && tokens
            .get(k + 2)
            .is_some_and(|n| n.is_ident("const") || n.is_ident("mut"))
    {
        return Some(format!("as *{}", tokens[k + 2].text));
    }
    None
}

/// Environment and filesystem reads: ambient process state that varies
/// between hosts and runs.
fn env_io_source(tokens: &[Tok], t: &Tok, k: usize) -> Option<String> {
    let after = |base: &str| {
        k >= 2 && tokens[k - 1].is_punct("::") && tokens[k - 2].is_ident(base)
    };
    match t.text.as_str() {
        "var" | "var_os" | "vars" | "args" | "args_os" if after("env") => {
            Some(format!("env::{}", t.text))
        }
        "read" | "read_to_string" | "read_dir" | "metadata" | "canonicalize"
            if after("fs") =>
        {
            Some(format!("fs::{}", t.text))
        }
        "open" if after("File") => Some("File::open".to_owned()),
        "stdin" => Some("stdin".to_owned()),
        _ => None,
    }
}

/// Reverse-BFS taint propagation plus frontier flagging for one
/// category.
fn propagate(
    graph: &CallGraph,
    cat: &Category,
    sources: &BTreeMap<usize, Source>,
    sanctioned: &BTreeSet<&str>,
    out: &mut Vec<Diagnostic>,
) {
    let mut dist: BTreeMap<usize, u32> = BTreeMap::new();
    // Next hop toward the source plus the call site that reaches it.
    let mut via: BTreeMap<usize, (usize, u32, u32)> = BTreeMap::new();
    let mut queue: Vec<usize> = Vec::new();
    for &idx in sources.keys() {
        dist.insert(idx, 0);
        queue.push(idx);
    }
    let mut head = 0usize;
    while head < queue.len() {
        let cur = queue[head];
        head += 1;
        let d = dist[&cur];
        for &caller in &graph.callers[cur] {
            if dist.contains_key(&caller) {
                continue;
            }
            if sanctioned.contains(graph.fns[caller].file.as_str()) {
                continue; // boundary: trusted to sanitize
            }
            let site = graph.calls[caller]
                .iter()
                .find(|s| s.callee == cur)
                .copied()
                .expect("reverse edge has a forward call site");
            dist.insert(caller, d + 1);
            via.insert(caller, (cur, site.line, site.col));
            queue.push(caller);
        }
    }

    // `queue` is in ascending-distance order; flag the taint frontier.
    let mut path_flagged: BTreeSet<usize> = BTreeSet::new();
    for &f in &queue {
        let node = &graph.fns[f];
        let d = dist[&f];
        let det = DETERMINISTIC_CRATES.contains(&node.krate.as_str());
        let inherited = via.get(&f).is_some_and(|(g, _, _)| path_flagged.contains(g));
        let flag = det && !inherited && d >= cat.min_hops;
        if flag || inherited {
            path_flagged.insert(f);
        }
        if !flag {
            continue;
        }
        if d == 0 {
            let src = &sources[&f];
            out.push(
                Diagnostic::new(
                    cat.code,
                    &node.file,
                    src.line,
                    src.col,
                    format!(
                        "`{}` uses {} (`{}`) in deterministic-path crate `{}` — replay \
                         is no longer a pure function of the seed",
                        node.name, cat.what, src.detail, node.krate
                    ),
                    taint_hint(cat.code),
                )
                .with_function(&node.name)
                .with_chain(vec![format!(
                    "{}:{} {} (source: {}, line {})",
                    node.file, node.line, node.name, src.detail, src.line
                )]),
            );
            continue;
        }
        // Walk the witness chain sink -> source.
        let mut chain_idx = vec![f];
        let mut cur = f;
        while let Some(&(next, _, _)) = via.get(&cur) {
            chain_idx.push(next);
            cur = next;
        }
        let src_fn = &graph.fns[cur];
        let src = &sources[&cur];
        let chain: Vec<String> = chain_idx
            .iter()
            .enumerate()
            .map(|(i, &ci)| {
                let n = &graph.fns[ci];
                if i + 1 == chain_idx.len() {
                    format!(
                        "{}:{} {} (source: {}, line {})",
                        n.file, n.line, n.name, src.detail, src.line
                    )
                } else {
                    format!("{}:{} {}", n.file, n.line, n.name)
                }
            })
            .collect();
        let (_, line, col) = via[&f];
        out.push(
            Diagnostic::new(
                cat.code,
                &node.file,
                line,
                col,
                format!(
                    "`{}` reaches {} (`{}` in `{}`) {} call hop(s) away — nondeterminism \
                     leaks into deterministic-path crate `{}`",
                    node.name, cat.what, src.detail, src_fn.name, d, node.krate
                ),
                taint_hint(cat.code),
            )
            .with_function(&node.name)
            .with_chain(chain),
        );
    }
}

fn taint_hint(code: &str) -> String {
    format!(
        "break the chain at this call or route it through a sanctioned module \
         (walltime/runner/rng); the full sink→source path is in the `chain` field \
         (`--explain-chain` prints it); if provably harmless, annotate the flagged \
         line with `// ssr-lint: allow({code}, reason = \"…\")`"
    )
}
