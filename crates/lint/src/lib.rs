//! # ssr-lint
//!
//! The workspace determinism linter: mechanically enforces the
//! byte-identical-replay contract that every figure in this reproduction
//! rests on. A simulation must be a pure function of its seed — so
//! outputs are byte-identical at `--jobs 1/2/8` and across re-runs — and
//! this crate turns that convention into a build failure.
//!
//! A self-contained token-level lexer (no external dependencies beyond
//! the vendored `serde` stubs used for JSON output) walks every
//! `crates/*/src` file and reports coded diagnostics:
//!
//! | code | finding |
//! |------|---------|
//! | D001 | `HashMap`/`HashSet` iteration in a deterministic-path crate |
//! | D002 | wall-clock reads (`Instant::now`, `SystemTime`) outside `sim/src/walltime.rs` |
//! | D003 | threads/channels outside `sim/src/runner.rs` |
//! | D004 | `partial_cmp` inside a sort/min/max comparator |
//! | D005 | RNG construction (`seed_from_u64`) outside `simcore::rng` |
//! | S001 | crate root missing `#![forbid(unsafe_code)]` |
//! | L001 | malformed or reasonless suppression directive |
//!
//! Each finding is individually suppressible on its line (or from a
//! standalone comment on the line above) with
//! `// ssr-lint: allow(CODE, reason = "…")` — a suppression without a
//! reason is itself an L001 finding.
//!
//! # Example
//!
//! ```
//! let out = ssr_lint::lint_source(
//!     "crates/scheduler/src/example.rs",
//!     "pub fn f(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {\n\
//!          m.keys().copied().collect()\n\
//!      }\n",
//! );
//! assert_eq!(out.findings.len(), 1);
//! assert_eq!(out.findings[0].code, "D001");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod checks;
pub mod lexer;
pub mod report;

use std::io;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

pub use checks::{
    lint_source, FileOutcome, Suppression, CODES, DETERMINISTIC_CRATES, RNG_HOME_FILES,
    THREADING_FILES, TIMING_ONLY_FILES,
};
pub use report::{Diagnostic, Report};

/// A whole-workspace lint run: the report plus every suppression
/// directive encountered, for auditing that each carries a reason.
#[derive(Debug)]
pub struct WorkspaceOutcome {
    /// The aggregated report.
    pub report: Report,
    /// `(file, directive)` pairs across the workspace.
    pub suppressions: Vec<(String, Suppression)>,
}

/// Lints every `.rs` file under `<root>/crates/*/src`, in sorted path
/// order, so the report is identical across runs and platforms.
pub fn lint_workspace(root: &Path) -> io::Result<WorkspaceOutcome> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs_files(&dir.join("src"), &mut files)?;
    }
    files.sort();

    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    let mut suppressions = Vec::new();
    let files_scanned = files.len();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = std::fs::read_to_string(path)?;
        let outcome = lint_source(&rel, &source);
        findings.extend(outcome.findings);
        suppressed += outcome.suppressed;
        suppressions.extend(outcome.directives.into_iter().map(|d| (rel.clone(), d)));
    }
    Ok(WorkspaceOutcome {
        report: Report::new(findings, files_scanned, suppressed),
        suppressions,
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_rs_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Ascends from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Runs the linter as a command-line tool; shared by the `ssr-lint`
/// binary and the `ssr-cli lint` subcommand.
///
/// Flags: `--root PATH` (default: nearest workspace root), `--format
/// text|json` (default text). Exits nonzero on any unsuppressed finding.
pub fn run_cli(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = "text".to_owned();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--format" => match it.next() {
                Some(f) if f == "text" || f == "json" => format.clone_from(f),
                _ => {
                    eprintln!("error: --format requires `text` or `json`");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "ssr-lint — workspace determinism linter\n\
                     \n\
                     usage: ssr-lint [--root PATH] [--format text|json]\n\
                     \n\
                     Walks crates/*/src and enforces the byte-identical-replay\n\
                     contract (codes D001-D005, S001, L001; see EXPERIMENTS.md\n\
                     \"The determinism contract\"). Exits nonzero on any\n\
                     unsuppressed finding."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument {other}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    let outcome = match lint_workspace(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match format.as_str() {
        "json" => print!("{}", outcome.report.render_json()),
        _ => print!("{}", outcome.report.render_text()),
    }
    if outcome.report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
