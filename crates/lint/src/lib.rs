//! # ssr-lint
//!
//! The workspace determinism linter: mechanically enforces the
//! byte-identical-replay contract that every figure in this reproduction
//! rests on. A simulation must be a pure function of its seed — so
//! outputs are byte-identical at `--jobs 1/2/8` and across re-runs — and
//! this crate turns that convention into a build failure.
//!
//! Two layers of analysis run over every `crates/*/src` file:
//!
//! **Per-file token checks** (a self-contained lexer, no external
//! dependencies beyond the vendored `serde` stubs used for JSON output):
//!
//! | code | finding |
//! |------|---------|
//! | D001 | `HashMap`/`HashSet` iteration in a deterministic-path crate |
//! | D002 | wall-clock reads (`Instant::now`, `SystemTime`) outside `sim/src/walltime.rs` |
//! | D003 | threads/channels outside `sim/src/runner.rs` |
//! | D004 | `partial_cmp` inside a sort/min/max comparator |
//! | D005 | RNG construction (`seed_from_u64`) outside `simcore::rng` |
//! | S001 | crate root missing `#![forbid(unsafe_code)]` |
//! | L001 | malformed or reasonless suppression directive |
//! | L002 | unknown lint code in a suppression directive |
//!
//! **Workspace call-graph checks** (an item parser and interprocedural
//! call graph built on the same lexer — see [`parser`], [`callgraph`],
//! [`taint`]):
//!
//! | code | finding |
//! |------|---------|
//! | D101–D106 | nondeterminism taint (wall clock, threads, hash iteration, randomized hashers, pointer addresses, env/fs input) reaching a deterministic crate through call edges |
//! | P001 | panic site (`unwrap`/`expect`/`panic!`/indexing) reachable from a scheduler recovery root |
//! | T001 | `TraceEventKind` variant never emitted by scheduler/sim or never read by check/explain |
//! | A001 | allocation reachable from the `resource_offers` hot path |
//! | C001 | `WorkCounters` field never incremented by engine code or missing from the report table |
//!
//! Call-graph findings carry a witness `chain` (sink→source or
//! root→site) in the JSON report; `--explain-chain` prints it in text
//! mode.
//!
//! Each finding is individually suppressible on its line (or from a
//! standalone comment on the line above) with
//! `// ssr-lint: allow(CODE, reason = "…")` — a suppression without a
//! reason is itself an L001 finding. Larger audited debts live in a
//! checked-in [`baseline`] file (`lint.baseline` at the workspace root,
//! auto-loaded) whose entries are keyed `(code, file, function)` with a
//! count budget and a mandatory reason.
//!
//! # Example
//!
//! ```
//! let out = ssr_lint::lint_source(
//!     "crates/scheduler/src/example.rs",
//!     "pub fn f(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {\n\
//!          m.keys().copied().collect()\n\
//!      }\n",
//! );
//! assert_eq!(out.findings.len(), 1);
//! assert_eq!(out.findings[0].code, "D001");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod checks;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod suppress;
pub mod taint;

use std::io;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use callgraph::{CallGraph, GraphFile};

pub use baseline::{Baseline, BaselineEntry};
pub use checks::{
    lint_source, FileOutcome, CODES, DETERMINISTIC_CRATES, RNG_HOME_FILES, THREADING_FILES,
    TIMING_ONLY_FILES,
};
pub use report::{Diagnostic, Report};
pub use suppress::Suppression;

/// Options for a workspace lint run.
#[derive(Debug, Default)]
pub struct LintOptions {
    /// Explicit baseline file. `None` auto-loads `<root>/lint.baseline`
    /// when it exists; `Some` is an error if the file is missing.
    pub baseline_path: Option<PathBuf>,
}

/// A whole-workspace lint run: the report plus every suppression
/// directive encountered, for auditing that each carries a reason.
#[derive(Debug)]
pub struct WorkspaceOutcome {
    /// The aggregated report.
    pub report: Report,
    /// `(file, directive)` pairs across the workspace.
    pub suppressions: Vec<(String, Suppression)>,
    /// Baseline entries that absorbed fewer findings than budgeted —
    /// debt that has been paid down and should be removed from the file.
    pub stale_baseline: Vec<String>,
}

/// Lints every `.rs` file under `<root>/crates/*/src` with default
/// options (auto-loading `<root>/lint.baseline` when present).
pub fn lint_workspace(root: &Path) -> io::Result<WorkspaceOutcome> {
    lint_workspace_with(root, &LintOptions::default())
}

/// Lints the workspace: per-file checks, then the call-graph passes
/// (taint, panic-path, trace exhaustiveness, hot-path allocation) over
/// all files together. Files are visited in sorted path order and every
/// pass is deterministic, so the report is identical across runs and
/// platforms.
pub fn lint_workspace_with(root: &Path, opts: &LintOptions) -> io::Result<WorkspaceOutcome> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs_files(&dir.join("src"), &mut files)?;
    }
    files.sort();

    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    let mut suppressions = Vec::new();
    let files_scanned = files.len();

    // Pass 1: per-file checks, and lex+parse for the graph passes.
    let mut units: Vec<(String, lexer::Lexed, parser::ParsedFile)> = Vec::new();
    let mut directives: Vec<Vec<Suppression>> = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let source = std::fs::read_to_string(path)?;
        let outcome = lint_source(&rel, &source);
        findings.extend(outcome.findings);
        suppressed += outcome.suppressed;
        suppressions
            .extend(outcome.directives.iter().cloned().map(|d| (rel.clone(), d)));
        directives.push(outcome.directives);
        let lexed = lexer::lex(&source);
        let parsed = parser::parse_file(&rel, &lexed);
        units.push((rel, lexed, parsed));
    }

    // Pass 2: workspace call-graph checks.
    let graph_files: Vec<GraphFile<'_>> = units
        .iter()
        .map(|(rel, lexed, parsed)| GraphFile { rel, lexed, parsed })
        .collect();
    let graph = CallGraph::build(&graph_files);
    let mut ws = Vec::new();
    taint::check_taint(&graph, &graph_files, &mut ws);
    checks::check_p001(&graph, &graph_files, &mut ws);
    checks::check_a001(&graph, &graph_files, &mut ws);
    checks::check_t001(&graph_files, &mut ws);
    checks::check_c001(&graph_files, &mut ws);

    // Workspace findings honour the same line-targeted directives as
    // per-file ones.
    for diag in ws {
        let fidx = units.iter().position(|(rel, _, _)| *rel == diag.file);
        let silenced = fidx.is_some_and(|i| {
            directives[i]
                .iter()
                .any(|dir| dir.code == diag.code && dir.applies_line == diag.line)
        });
        if silenced {
            suppressed += 1;
        } else {
            findings.push(diag);
        }
    }

    // Baseline: explicit path, else auto-load `<root>/lint.baseline`.
    let baseline_path = match &opts.baseline_path {
        Some(p) => Some(p.clone()),
        None => {
            let auto = root.join("lint.baseline");
            auto.exists().then_some(auto)
        }
    };
    let (findings, baselined, stale_baseline) = match baseline_path {
        Some(p) => {
            let text = std::fs::read_to_string(&p)?;
            let bl = Baseline::parse(&text).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: {e}", p.display()),
                )
            })?;
            bl.apply(findings)
        }
        None => (findings, 0, Vec::new()),
    };

    Ok(WorkspaceOutcome {
        report: Report::new(findings, files_scanned, suppressed, baselined),
        suppressions,
        stale_baseline,
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_rs_files(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Ascends from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Runs the linter as a command-line tool; shared by the `ssr-lint`
/// binary and the `ssr-cli lint` subcommand.
///
/// Flags: `--root PATH` (default: nearest workspace root), `--format
/// text|json` (default text), `--baseline PATH` (default:
/// `<root>/lint.baseline` when present), `--explain-chain` (print
/// witness call chains in text mode). Exits nonzero on any unsuppressed,
/// non-baselined finding.
pub fn run_cli(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = "text".to_owned();
    let mut baseline_path: Option<PathBuf> = None;
    let mut explain_chain = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--format" => match it.next() {
                Some(f) if f == "text" || f == "json" => format.clone_from(f),
                _ => {
                    eprintln!("error: --format requires `text` or `json`");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --baseline requires a path");
                    return ExitCode::from(2);
                }
            },
            "--explain-chain" => explain_chain = true,
            "--help" | "-h" => {
                eprintln!(
                    "ssr-lint — workspace determinism linter\n\
                     \n\
                     usage: ssr-lint [--root PATH] [--format text|json]\n\
                     \x20               [--baseline PATH] [--explain-chain]\n\
                     \n\
                     Walks crates/*/src and enforces the byte-identical-replay\n\
                     contract: per-file checks (D001-D005, S001, L001/L002) plus\n\
                     interprocedural call-graph audits (D101-D106 nondeterminism\n\
                     taint, P001 recovery-path panics, T001 trace exhaustiveness,\n\
                     A001 hot-path allocation, C001 counter coverage; see EXPERIMENTS.md \"The\n\
                     determinism contract\"). Audited debt lives in\n\
                     <root>/lint.baseline (auto-loaded; override with\n\
                     --baseline). Exits nonzero on any unsuppressed,\n\
                     non-baselined finding."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument {other}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    let opts = LintOptions { baseline_path };
    let outcome = match lint_workspace_with(&root, &opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match format.as_str() {
        "json" => print!("{}", outcome.report.render_json()),
        _ => print!("{}", outcome.report.render_text(explain_chain)),
    }
    for stale in &outcome.stale_baseline {
        eprintln!("note: stale baseline entry — {stale}");
    }
    if outcome.report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
