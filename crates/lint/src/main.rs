//! The `ssr-lint` binary: walk the workspace, report determinism
//! violations, exit nonzero if any are unsuppressed.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ssr_lint::run_cli(&args)
}
