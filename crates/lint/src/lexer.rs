//! A minimal token-level Rust lexer — just enough structure for the
//! determinism lints.
//!
//! The lexer produces identifiers, punctuation, literals and lifetimes
//! with exact 1-based line/column positions, and reports `//` line
//! comments separately (suppression directives are line comments).
//! String literals, char literals, raw strings and (nested) block
//! comments are consumed as opaque units so their *contents* can never
//! produce a false lint match — `"HashMap"` inside a string or a doc
//! example is invisible to the lint passes.
//!
//! This is deliberately not a full Rust lexer: numeric literals with
//! exotic exponents may split into several tokens, which is harmless for
//! pattern matching over identifiers and punctuation.

/// What a token is, at the granularity the lints need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`for`, `HashMap`, `iter`, ...).
    Ident,
    /// Punctuation; `::` is coalesced into one token, all else one char.
    Punct,
    /// A numeric, string, char or byte literal (contents are opaque).
    Literal,
    /// A lifetime such as `'a`.
    Lifetime,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text; string/char literals are reported as `"…"` / `'…'`.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
}

impl Tok {
    /// `true` if this is an identifier spelled exactly `text`.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// `true` if this is punctuation spelled exactly `text`.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

/// A `//` line comment. Block comments are consumed but not reported:
/// suppression directives must be line comments.
#[derive(Debug, Clone)]
pub struct LineComment {
    /// The comment text including the leading `//`.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column of the first `/`.
    pub col: u32,
    /// `true` if only whitespace precedes the comment on its line — a
    /// standalone comment, which governs the *following* line when it
    /// carries a suppression directive.
    pub own_line: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens, in source order.
    pub tokens: Vec<Tok>,
    /// All `//` line comments, in source order.
    pub comments: Vec<LineComment>,
}

/// Lexes `source` into tokens and line comments.
pub fn lex(source: &str) -> Lexed {
    Lexer::new(source).run()
}

struct Lexer {
    src: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
    /// `true` once a token has been emitted on the current line.
    line_has_token: bool,
    out: Lexed,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn new(source: &str) -> Self {
        Lexer {
            src: source.chars().collect(),
            i: 0,
            line: 1,
            col: 1,
            line_has_token: false,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.src.get(self.i + ahead).copied()
    }

    /// Consumes one char, keeping line/col in sync.
    fn bump(&mut self) -> char {
        let c = self.src[self.i];
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
            self.line_has_token = false;
        } else {
            self.col += 1;
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.line_has_token = true;
        self.out.tokens.push(Tok { kind, text, line, col });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line, col);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if c == '"' {
                self.string_literal(line, col);
            } else if (c == 'r' || c == 'b') && self.raw_or_byte_string(line, col) {
                // consumed by raw_or_byte_string
            } else if c == '\'' {
                self.char_or_lifetime(line, col);
            } else if is_ident_start(c) {
                let mut text = String::new();
                while self.peek(0).is_some_and(is_ident_continue) {
                    text.push(self.bump());
                }
                self.push(TokKind::Ident, text, line, col);
            } else if c.is_ascii_digit() {
                self.number_literal(line, col);
            } else if c == ':' && self.peek(1) == Some(':') {
                self.bump();
                self.bump();
                self.push(TokKind::Punct, "::".to_owned(), line, col);
            } else {
                let c = self.bump();
                self.push(TokKind::Punct, c.to_string(), line, col);
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        let own_line = !self.line_has_token;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(self.bump());
        }
        self.out.comments.push(LineComment { text, line, col, own_line });
    }

    fn block_comment(&mut self) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1u32;
        while depth > 0 && self.peek(0).is_some() {
            if self.peek(0) == Some('/') && self.peek(1) == Some('*') {
                self.bump();
                self.bump();
                depth += 1;
            } else if self.peek(0) == Some('*') && self.peek(1) == Some('/') {
                self.bump();
                self.bump();
                depth -= 1;
            } else {
                self.bump();
            }
        }
    }

    /// Consumes a `"…"` string with escapes (the opening quote is next).
    fn string_literal(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                self.bump();
                if self.peek(0).is_some() {
                    self.bump();
                }
            } else if c == '"' {
                self.bump();
                break;
            } else {
                self.bump();
            }
        }
        self.push(TokKind::Literal, "\"…\"".to_owned(), line, col);
    }

    /// Tries to consume `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` starting at
    /// the current `r`/`b`; returns `false` (consuming nothing) if the
    /// lookahead is not a string prefix.
    fn raw_or_byte_string(&mut self, line: u32, col: u32) -> bool {
        let mut ahead = 1; // past the 'r' or 'b'
        let first = self.peek(0);
        if first == Some('b') {
            match self.peek(1) {
                Some('"') => {
                    self.bump(); // 'b'
                    self.string_literal(line, col);
                    return true;
                }
                Some('r') => ahead = 2,
                _ => return false,
            }
        }
        // Now expect zero or more '#' then '"'.
        let mut hashes = 0usize;
        while self.peek(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(ahead + hashes) != Some('"') {
            return false;
        }
        for _ in 0..(ahead + hashes + 1) {
            self.bump(); // prefix, hashes, opening quote
        }
        // Scan for '"' followed by `hashes` '#'s.
        'outer: while self.peek(0).is_some() {
            if self.bump() == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokKind::Literal, "r\"…\"".to_owned(), line, col);
        true
    }

    /// Disambiguates `'a'` / `'\n'` char literals from `'a` lifetimes.
    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume to the closing quote.
                while let Some(c) = self.peek(0) {
                    if c == '\\' {
                        self.bump();
                        if self.peek(0).is_some() {
                            self.bump();
                        }
                    } else if c == '\'' {
                        self.bump();
                        break;
                    } else {
                        self.bump();
                    }
                }
                self.push(TokKind::Literal, "'…'".to_owned(), line, col);
            }
            Some(c) if is_ident_start(c) => {
                if self.peek(1) == Some('\'') {
                    // 'a'
                    self.bump();
                    self.bump();
                    self.push(TokKind::Literal, "'…'".to_owned(), line, col);
                } else {
                    // 'lifetime
                    let mut text = String::from("'");
                    while self.peek(0).is_some_and(is_ident_continue) {
                        text.push(self.bump());
                    }
                    self.push(TokKind::Lifetime, text, line, col);
                }
            }
            _ => {
                // ' ' / '0' / stray quote: consume to the closing quote.
                while let Some(c) = self.peek(0) {
                    let done = c == '\'';
                    self.bump();
                    if done {
                        break;
                    }
                }
                self.push(TokKind::Literal, "'…'".to_owned(), line, col);
            }
        }
    }

    fn number_literal(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while self.peek(0).is_some_and(|c| c.is_alphanumeric() || c == '_') {
            text.push(self.bump());
        }
        // A fraction part: '.' followed by a digit (so `self.0.iter()`
        // keeps its '.' as punctuation).
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            text.push(self.bump());
            while self.peek(0).is_some_and(|c| c.is_alphanumeric() || c == '_') {
                text.push(self.bump());
            }
        }
        self.push(TokKind::Literal, text, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in a /* nested */ block */
            let s = "HashMap::iter";
            let r = r#"HashMap"#;
            let c = 'H';
        "##;
        assert!(!idents(src).iter().any(|t| t == "HashMap"));
        assert!(idents(src).iter().any(|t| t == "let"));
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("fn main() {}\nlet x = 1;\n");
        let first = &lexed.tokens[0];
        assert_eq!((first.line, first.col), (1, 1));
        let let_tok = lexed.tokens.iter().find(|t| t.is_ident("let")).unwrap();
        assert_eq!((let_tok.line, let_tok.col), (2, 1));
    }

    #[test]
    fn path_separator_coalesces() {
        let lexed = lex("std::collections::HashMap");
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["std", "::", "collections", "::", "HashMap"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a u8) { let c = 'a'; let n = '\\n'; }");
        let lifetimes: Vec<&Tok> =
            lexed.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        let chars = lexed.tokens.iter().filter(|t| t.text == "'…'").count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn tuple_field_access_keeps_dot() {
        let lexed = lex("self.0.iter()");
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["self", ".", "0", ".", "iter", "(", ")"]);
    }

    #[test]
    fn own_line_comments_are_flagged() {
        let src = "let a = 1; // trailing\n// standalone\nlet b = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(!lexed.comments[0].own_line);
        assert!(lexed.comments[1].own_line);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn float_literals_lex_as_one_token() {
        let lexed = lex("let x = 1.5 + 2.0_f64;");
        assert!(lexed.tokens.iter().any(|t| t.text == "1.5"));
        assert!(lexed.tokens.iter().any(|t| t.text == "2.0_f64"));
    }
}
