//! D001 fixture: hash-collection iteration in a deterministic-path crate.

use std::collections::HashMap;

pub fn sum_values(counts: &HashMap<String, u64>) -> u64 {
    let mut total = 0;
    for pair in counts {
        total += pair.1;
    }
    total + counts.values().sum::<u64>()
}
