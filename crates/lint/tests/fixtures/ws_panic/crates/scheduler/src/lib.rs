//! Fixture: a panic site one call away from a recovery root, used by the
//! baseline round-trip test.
#![forbid(unsafe_code)]

/// Recovery root (named like the engine's fault entry point).
pub fn fail_slots(failed: &[u32]) -> u32 {
    first_failed(failed)
}

/// Reachable helper with an indexing panic.
fn first_failed(failed: &[u32]) -> u32 {
    failed[0]
}
