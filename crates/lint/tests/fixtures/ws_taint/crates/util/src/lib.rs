//! Fixture: a nondeterminism source buried in a utility crate, two call
//! hops from the deterministic sink. `util` is not a deterministic-path
//! crate, so nothing here is flagged — but taint flows through it.
#![forbid(unsafe_code)]

/// Reads the wall clock — the taint source.
pub fn raw_nanos() -> u64 {
    // ssr-lint: allow(D002, reason = "fixture: the deliberate wall-clock source")
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

/// One hop of indirection inside the non-deterministic crate.
pub fn wrapped_nanos() -> u64 {
    raw_nanos()
}
