//! Fixture: a deterministic-path crate that reaches the wall clock only
//! through a two-hop call chain into `ssr_util`. The D101 frontier rule
//! flags `stamp` (the last deterministic function on the witness path)
//! and leaves `advance` alone.
#![forbid(unsafe_code)]

/// The flagged frontier: calls into the utility crate.
fn stamp() -> u64 {
    ssr_util::wrapped_nanos()
}

/// Transitive caller — inherits the taint but is not separately flagged.
pub fn advance() -> u64 {
    stamp() + 1
}
