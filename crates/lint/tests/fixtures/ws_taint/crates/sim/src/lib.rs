//! Fixture: a deterministic-path crate whose only clock access goes
//! through the sanctioned `walltime` module — no finding, because the
//! allowlisted file is neither a source nor a propagator.
#![forbid(unsafe_code)]

mod walltime;

/// Calls the clock only through the sanctioned boundary.
pub fn run() -> u64 {
    walltime::stamp_nanos()
}
