//! Fixture: the sanctioned timing module — same workspace-relative path
//! as the real one, so it sits on the `TIMING_ONLY_FILES` allowlist and
//! acts as a taint barrier.

/// Reads the wall clock inside the sanctioned boundary.
pub fn stamp_nanos() -> u64 {
    std::time::Instant::now().elapsed().as_nanos() as u64
}
