//! L001 fixture: a suppression without a reason (the finding it targets
//! is still silenced, but the directive itself is reported).

use std::collections::HashMap;

pub fn count(m: &HashMap<u32, u32>) -> usize {
    m.keys().count() // ssr-lint: allow(D001)
}
