//! Fixture: the reader side of the trace schema.
#![forbid(unsafe_code)]

use ssr_trace::TraceEventKind;

/// Consumes the covered and ghost events.
pub fn validate(kind: &TraceEventKind) -> bool {
    matches!(kind, TraceEventKind::Covered | TraceEventKind::Ghost)
}
