//! Fixture: the trace event schema with one fully-covered variant, one
//! variant nobody emits, and one variant nobody reads.
#![forbid(unsafe_code)]

/// Event kinds.
pub enum TraceEventKind {
    /// Emitted by the scheduler and read by the checker — clean.
    Covered,
    /// Read by the checker but never emitted.
    Ghost,
    /// Emitted by the scheduler but never read.
    Unread,
}
