//! Fixture: the emitter side of the trace schema.
#![forbid(unsafe_code)]

use ssr_trace::TraceEventKind;

/// Emits the covered and unread events.
pub fn emit_all(sink: &mut Vec<TraceEventKind>) {
    sink.push(TraceEventKind::Covered);
    sink.push(TraceEventKind::Unread);
}
