//! D003 fixture: thread use outside the trial runner.

pub fn fire_and_forget() {
    std::thread::spawn(|| {});
}
