//! Fixture: the engine side bumping work counters.
#![forbid(unsafe_code)]

use ssr_perf::WorkCounters;

/// Bumps the covered and never-rendered counters.
pub fn account(counters: &WorkCounters) {
    counters.covered.inc();
    counters.never_rendered.inc();
}

#[cfg(test)]
mod tests {
    /// Test-only mutation must not count as coverage.
    pub fn bump_in_test(counters: &super::WorkCounters) {
        counters.never_bumped.inc();
    }
}
