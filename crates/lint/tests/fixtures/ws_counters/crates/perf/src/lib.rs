//! Fixture: the counter schema with one fully-covered field, one field
//! nobody increments, and one field missing from the report table.
#![forbid(unsafe_code)]

/// One monotone counter.
pub struct Counter(u64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {}
}

/// Work counters.
pub struct WorkCounters {
    /// Incremented by the engine and rendered — clean.
    pub covered: Counter,
    /// Listed in the report table but never incremented.
    pub never_bumped: Counter,
    /// Incremented by the engine but missing from the report table.
    pub never_rendered: Counter,
}

impl WorkCounters {
    /// Field table driving the rendered report.
    fn fields(&self) -> [(&'static str, &Counter); 2] {
        [("covered", &self.covered), ("never_bumped", &self.never_bumped)]
    }

    /// Renders the report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, _) in self.fields() {
            out.push_str(name);
        }
        out
    }
}
