//! Suppression fixture: a reasoned allow silences its finding cleanly.

use std::collections::HashSet;

pub fn total(s: &HashSet<u64>) -> u64 {
    // ssr-lint: allow(D001, reason = "summation is commutative, order cannot matter")
    s.iter().sum()
}
