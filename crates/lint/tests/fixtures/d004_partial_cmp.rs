//! D004 fixture: `partial_cmp` inside a comparator closure.

pub fn sort_floats(values: &mut Vec<f64>) {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
