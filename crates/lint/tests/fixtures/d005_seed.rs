//! D005 fixture: raw RNG construction outside `simcore::rng`.

use ssr_simcore::rng::SimRng;

pub fn fresh_rng(seed: u64) -> SimRng {
    SimRng::seed_from_u64(seed)
}
