//! Clean fixture: a crate root that honours the whole contract.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;

pub fn sum_values(counts: &BTreeMap<String, u64>) -> u64 {
    counts.values().sum()
}

pub fn sort_floats(values: &mut Vec<f64>) {
    values.sort_by(f64::total_cmp);
}

#[cfg(test)]
mod tests {
    // Test-only wall-clock use is exempt from D002.
    #[test]
    fn timing_in_tests_is_fine() {
        let _ = std::time::Instant::now();
    }
}
