//! D002 fixture: wall-clock access outside the timing module.

pub fn seconds_since_start() -> f64 {
    let started = std::time::Instant::now();
    started.elapsed().as_secs_f64()
}
