//! The workspace-level regression: the tree this crate ships in must
//! itself satisfy the determinism contract, every suppression must carry
//! a reason, and the JSON report must be byte-stable.

use std::path::Path;

use ssr_lint::{find_workspace_root, lint_workspace};

fn workspace_root() -> std::path::PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("crates/lint lives inside the workspace")
}

#[test]
fn workspace_has_no_unsuppressed_findings() {
    // `lint_workspace` auto-loads `<root>/lint.baseline`, so this gate
    // means: zero findings beyond the audited, reasoned ledger.
    let outcome = lint_workspace(&workspace_root()).expect("workspace lints");
    assert!(
        outcome.report.is_clean(),
        "determinism contract violated:\n{}",
        outcome.report.render_text(true)
    );
    assert!(outcome.report.files_scanned > 0);
}

#[test]
fn baseline_has_no_stale_entries() {
    // Paid-down debt must leave the ledger: every baseline entry's
    // budget is fully consumed by current findings.
    let outcome = lint_workspace(&workspace_root()).expect("workspace lints");
    assert!(
        outcome.stale_baseline.is_empty(),
        "stale lint.baseline entries (remove or tighten them):\n{}",
        outcome.stale_baseline.join("\n")
    );
}

#[test]
fn baseline_file_round_trips() {
    let text = std::fs::read_to_string(workspace_root().join("lint.baseline"))
        .expect("lint.baseline is checked in");
    let parsed = ssr_lint::Baseline::parse(&text).expect("baseline parses");
    assert!(!parsed.entries.is_empty(), "ledger should not be empty while debt remains");
    let reparsed = ssr_lint::Baseline::parse(&parsed.render()).expect("render round-trips");
    assert_eq!(parsed, reparsed);
}

#[test]
fn every_suppression_carries_a_reason() {
    let outcome = lint_workspace(&workspace_root()).expect("workspace lints");
    for (file, sup) in &outcome.suppressions {
        assert!(
            sup.reason.as_deref().is_some_and(|r| !r.trim().is_empty()),
            "{file}:{}: allow({}) without a reason",
            sup.line,
            sup.code
        );
    }
}

#[test]
fn json_report_is_byte_stable_across_runs() {
    let root = workspace_root();
    let a = lint_workspace(&root).expect("first run").report;
    let b = lint_workspace(&root).expect("second run").report;
    assert_eq!(a, b);
    assert_eq!(a.render_json(), b.render_json());
}

#[test]
fn json_report_round_trips_through_vendored_serde_json() {
    // The binary's `--format json` output is exactly the vendored
    // serde_json serialization of the in-memory report (plus a trailing
    // newline), so downstream tooling sees one canonical byte stream.
    let outcome = lint_workspace(&workspace_root()).expect("workspace lints");
    let direct = serde_json::to_string_pretty(&outcome.report).expect("serializes");
    assert_eq!(outcome.report.render_json(), format!("{direct}\n"));
    for key in ["schema_version", "findings", "files_scanned", "suppressed"] {
        assert!(direct.contains(key), "schema key `{key}` missing from {direct}");
    }
}
