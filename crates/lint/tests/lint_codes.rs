//! One fixture per lint code: each code fires where it should and stays
//! quiet on the clean fixture.

use ssr_lint::lint_source;

fn codes(outcome: &ssr_lint::FileOutcome) -> Vec<&str> {
    outcome.findings.iter().map(|d| d.code.as_str()).collect()
}

#[test]
fn d001_fires_on_hash_iteration() {
    let out = lint_source(
        "crates/scheduler/src/fixture.rs",
        include_str!("fixtures/d001_hash_iter.rs"),
    );
    let codes = codes(&out);
    assert_eq!(codes, ["D001", "D001"], "for-loop and .values() both fire: {:?}", out.findings);
    // Findings carry precise locations and actionable hints.
    assert!(out.findings.iter().all(|d| d.line > 0 && d.col > 0));
    assert!(out.findings.iter().all(|d| d.hint.contains("BTreeMap")));
}

#[test]
fn d001_is_scoped_to_deterministic_crates() {
    // The same source in a non-deterministic-path crate is fine: the CLI
    // may iterate hashes when formatting output.
    let out = lint_source(
        "crates/cli/src/fixture.rs",
        include_str!("fixtures/d001_hash_iter.rs"),
    );
    assert!(out.findings.is_empty(), "unexpected: {:?}", out.findings);
}

#[test]
fn d002_fires_on_wall_clock() {
    let out = lint_source(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/d002_instant.rs"),
    );
    assert!(!out.findings.is_empty());
    assert!(codes(&out).iter().all(|c| *c == "D002"), "got {:?}", out.findings);
    assert!(out.findings[0].hint.contains("walltime"));
}

#[test]
fn d002_allows_the_timing_module() {
    let out = lint_source(
        "crates/sim/src/walltime.rs",
        include_str!("fixtures/d002_instant.rs"),
    );
    assert!(out.findings.is_empty(), "unexpected: {:?}", out.findings);
}

#[test]
fn d003_fires_on_threads() {
    let out = lint_source(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/d003_thread.rs"),
    );
    assert!(!out.findings.is_empty());
    assert!(codes(&out).iter().all(|c| *c == "D003"), "got {:?}", out.findings);
}

#[test]
fn d003_allows_the_trial_runner() {
    let out = lint_source(
        "crates/sim/src/runner.rs",
        include_str!("fixtures/d003_thread.rs"),
    );
    assert!(out.findings.is_empty(), "unexpected: {:?}", out.findings);
}

#[test]
fn d004_fires_on_partial_cmp_comparator() {
    let out = lint_source(
        "crates/simcore/src/fixture.rs",
        include_str!("fixtures/d004_partial_cmp.rs"),
    );
    assert_eq!(codes(&out), ["D004"], "got {:?}", out.findings);
    assert!(out.findings[0].hint.contains("total_cmp"));
}

#[test]
fn d004_is_quiet_on_total_cmp() {
    let out = lint_source(
        "crates/simcore/src/fixture.rs",
        "pub fn sort_floats(values: &mut Vec<f64>) {\n    values.sort_by(f64::total_cmp);\n}\n",
    );
    assert!(out.findings.is_empty(), "unexpected: {:?}", out.findings);
}

#[test]
fn d005_fires_on_raw_seeding() {
    let out = lint_source(
        "crates/workload/src/fixture.rs",
        include_str!("fixtures/d005_seed.rs"),
    );
    assert_eq!(codes(&out), ["D005"], "got {:?}", out.findings);
    assert!(out.findings[0].hint.contains("SimRng::stream"));
}

#[test]
fn d005_allows_the_rng_home() {
    let out = lint_source(
        "crates/simcore/src/rng.rs",
        include_str!("fixtures/d005_seed.rs"),
    );
    assert!(out.findings.is_empty(), "unexpected: {:?}", out.findings);
}

#[test]
fn s001_fires_on_crate_root_without_forbid() {
    let src = include_str!("fixtures/s001_missing_forbid.rs");
    let out = lint_source("crates/demo/src/lib.rs", src);
    assert_eq!(codes(&out), ["S001"], "got {:?}", out.findings);
    // Non-root files in the same crate are not required to carry it.
    let out = lint_source("crates/demo/src/helpers.rs", src);
    assert!(out.findings.is_empty(), "unexpected: {:?}", out.findings);
    // Binary roots are.
    let out = lint_source("crates/demo/src/bin/tool.rs", src);
    assert_eq!(codes(&out), ["S001"]);
}

#[test]
fn l001_fires_on_reasonless_allow_but_still_suppresses() {
    let out = lint_source(
        "crates/dag/src/fixture.rs",
        include_str!("fixtures/l001_reasonless.rs"),
    );
    assert_eq!(codes(&out), ["L001"], "got {:?}", out.findings);
    assert_eq!(out.suppressed, 1, "the D001 it targets is still silenced");
    assert!(out.directives.len() == 1 && out.directives[0].reason.is_none());
}

#[test]
fn l002_fires_on_unknown_code_and_the_directive_is_inert() {
    // Pre-v2 this was an L001; it now has its own code because the
    // failure mode is distinct: the author thinks a finding is excused
    // while the linter knows no such code.
    let out = lint_source(
        "crates/dag/src/fixture.rs",
        "// ssr-lint: allow(D999, reason = \"no such code\")\npub fn f() {}\n",
    );
    assert_eq!(codes(&out), ["L002"], "got {:?}", out.findings);
    assert!(out.findings[0].hint.contains("known codes"));
    assert!(out.directives.is_empty(), "an unknown-code directive must not suppress");
}

#[test]
fn l001_fires_on_malformed_directives() {
    let out = lint_source(
        "crates/dag/src/fixture.rs",
        "// ssr-lint: deny(D001)\npub fn f() {}\n",
    );
    assert_eq!(codes(&out), ["L001"]);
}

#[test]
fn reasoned_allow_is_clean() {
    let out = lint_source(
        "crates/cluster/src/fixture.rs",
        include_str!("fixtures/allowed_with_reason.rs"),
    );
    assert!(out.findings.is_empty(), "unexpected: {:?}", out.findings);
    assert_eq!(out.suppressed, 1);
    assert_eq!(
        out.directives[0].reason.as_deref(),
        Some("summation is commutative, order cannot matter")
    );
}

#[test]
fn clean_fixture_is_clean() {
    let out = lint_source("crates/demo/src/lib.rs", include_str!("fixtures/clean.rs"));
    assert!(out.findings.is_empty(), "unexpected: {:?}", out.findings);
    assert_eq!(out.suppressed, 0);
}
