//! Integration tests for the workspace-level call-graph passes, driven
//! by small fixture trees under `tests/fixtures/ws_*`. The trees are
//! read from disk at runtime — cargo never compiles them — so they can
//! contain deliberate contract violations.

use std::path::{Path, PathBuf};

use ssr_lint::{lint_workspace, lint_workspace_with, LintOptions};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

#[test]
fn d101_flags_two_hop_wall_clock_chain_with_full_witness() {
    // crates/scheduler (deterministic) -> ssr_util::wrapped_nanos ->
    // raw_nanos -> Instant::now(). The only nondeterminism is two call
    // hops away, in another crate; the finding must name the frontier
    // function and carry the whole chain.
    let outcome = lint_workspace(&fixture_root("ws_taint")).expect("fixture lints");
    let report = &outcome.report;
    assert_eq!(report.findings.len(), 1, "got:\n{}", report.render_text(true));
    let d = &report.findings[0];
    assert_eq!(d.code, "D101");
    assert_eq!(d.file, "crates/scheduler/src/lib.rs");
    assert_eq!(d.function, "stamp", "frontier rule: the last det-crate fn is flagged");
    assert_eq!(d.chain.len(), 3, "sink, intermediate hop, source: {:?}", d.chain);
    assert!(d.chain[0].contains("stamp"));
    assert!(d.chain[1].contains("wrapped_nanos"));
    assert!(d.chain[2].contains("raw_nanos") && d.chain[2].contains("source: Instant"));
    assert!(d.message.contains("2 call hop(s)"));
    // The per-file D002 at the source was suppressed with a reason and
    // must not have leaked into the findings.
    assert_eq!(report.suppressed, 1);
}

#[test]
fn taint_stops_at_sanctioned_boundary_and_outside_det_crates() {
    let outcome = lint_workspace(&fixture_root("ws_taint")).expect("fixture lints");
    for d in &outcome.report.findings {
        // crates/sim reaches the clock only through walltime.rs (the
        // allowlisted barrier) — it must stay clean; crates/util is not
        // a deterministic-path crate — taint flows through it but never
        // flags it.
        assert!(
            !d.file.starts_with("crates/sim/") && !d.file.starts_with("crates/util/"),
            "unexpected finding: {d:?}"
        );
    }
}

#[test]
fn p001_baseline_round_trip() {
    let root = fixture_root("ws_panic");
    // Auto-loaded `<root>/lint.baseline` absorbs the audited P001.
    let with = lint_workspace(&root).expect("fixture lints");
    assert!(with.report.is_clean(), "got:\n{}", with.report.render_text(true));
    assert_eq!(with.report.baselined, 1);
    assert!(with.stale_baseline.is_empty());
    // Overriding with an empty ledger surfaces it, chain intact.
    let opts = LintOptions { baseline_path: Some(root.join("empty.baseline")) };
    let without = lint_workspace_with(&root, &opts).expect("fixture lints");
    assert_eq!(without.report.findings.len(), 1);
    let d = &without.report.findings[0];
    assert_eq!((d.code.as_str(), d.function.as_str()), ("P001", "first_failed"));
    assert!(d.chain[0].contains("fail_slots") && d.chain[0].contains("root"));
    assert_eq!(without.report.baselined, 0);
}

#[test]
fn t001_flags_unemitted_and_unread_variants() {
    let outcome = lint_workspace(&fixture_root("ws_trace")).expect("fixture lints");
    let report = &outcome.report;
    assert_eq!(report.findings.len(), 2, "got:\n{}", report.render_text(false));
    let ghost = report.findings.iter().find(|d| d.function == "Ghost").expect("Ghost");
    assert!(ghost.message.contains("never emitted"), "{}", ghost.message);
    let unread = report.findings.iter().find(|d| d.function == "Unread").expect("Unread");
    assert!(unread.message.contains("no reference"), "{}", unread.message);
    assert!(report.findings.iter().all(|d| d.code == "T001"));
    // `Covered` is emitted and read — no finding mentions it.
    assert!(report.findings.iter().all(|d| d.function != "Covered"));
}

#[test]
fn c001_flags_unbumped_and_unrendered_counter_fields() {
    let outcome = lint_workspace(&fixture_root("ws_counters")).expect("fixture lints");
    let report = &outcome.report;
    assert_eq!(report.findings.len(), 2, "got:\n{}", report.render_text(false));
    assert!(report.findings.iter().all(|d| d.code == "C001"));
    assert!(report.findings.iter().all(|d| d.file == "crates/perf/src/lib.rs"));
    let unbumped =
        report.findings.iter().find(|d| d.function == "never_bumped").expect("never_bumped");
    assert!(unbumped.message.contains("never incremented"), "{}", unbumped.message);
    let unrendered = report
        .findings
        .iter()
        .find(|d| d.function == "never_rendered")
        .expect("never_rendered");
    assert!(unrendered.message.contains("never rendered"), "{}", unrendered.message);
    // `covered` is bumped by the engine and listed in the report table;
    // the test-only bump of `never_bumped` must not count as coverage.
    assert!(report.findings.iter().all(|d| d.function != "covered"));
}

#[test]
fn json_output_matches_checked_in_golden_byte_for_byte() {
    // schema_version 2, alphabetically sorted keys, trailing newline —
    // downstream tooling diffs this stream, so it is pinned exactly.
    let outcome = lint_workspace(&fixture_root("ws_taint")).expect("fixture lints");
    let golden = std::fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws_taint.golden.json"),
    )
    .expect("golden file is checked in");
    assert_eq!(outcome.report.render_json(), golden);
    assert_eq!(outcome.report.schema_version, ssr_lint::report::SCHEMA_VERSION);
}
