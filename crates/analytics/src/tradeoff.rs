//! The isolation/utilization trade-off model of §IV-B.
//!
//! Task durations follow the Pareto distribution of Eq. (1) with scale
//! `t_m` and shape `alpha`. A phase of `n` parallel tasks reserves its
//! slots until deadline `d`; the reservation is *effective* if all tasks
//! finish by `d`:
//!
//! * Eq. (2): isolation `P = [1 - (t_m / d)^alpha]^n`,
//! * Eq. (3): expected utilization lower bound
//!   `E[U] >= alpha/(alpha-1) (t_m/d) - 1/(alpha-1) (t_m/d)^alpha`,
//! * Eq. (4): the two combined via `t_m/d = (1 - P^{1/n})^{1/alpha}`.

use crate::ModelError;

fn check_shape(alpha: f64) -> Result<(), ModelError> {
    if !(alpha.is_finite() && alpha > 1.0) {
        return Err(ModelError::new(format!(
            "Pareto shape must exceed 1 for a finite mean, got {alpha}"
        )));
    }
    Ok(())
}

fn check_scale(t_m: f64) -> Result<(), ModelError> {
    if !(t_m.is_finite() && t_m > 0.0) {
        return Err(ModelError::new(format!("Pareto scale must be positive, got {t_m}")));
    }
    Ok(())
}

fn check_tasks(n: u32) -> Result<(), ModelError> {
    if n == 0 {
        return Err(ModelError::new("a phase needs at least one task"));
    }
    Ok(())
}

fn check_probability(p: f64) -> Result<(), ModelError> {
    if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
        return Err(ModelError::new(format!("probability must lie in [0, 1], got {p}")));
    }
    Ok(())
}

/// Eq. (2): the probability that all `n` tasks of a phase finish before
/// the reservation deadline `d` — the isolation guarantee `P`.
///
/// # Errors
///
/// Returns [`ModelError`] unless `t_m > 0`, `alpha > 1`, `n >= 1` and `d`
/// is finite and non-negative.
pub fn isolation_probability(d: f64, t_m: f64, alpha: f64, n: u32) -> Result<f64, ModelError> {
    check_scale(t_m)?;
    check_shape(alpha)?;
    check_tasks(n)?;
    if !(d.is_finite() && d >= 0.0) {
        return Err(ModelError::new(format!("deadline must be finite and non-negative, got {d}")));
    }
    if d < t_m {
        return Ok(0.0);
    }
    Ok((1.0 - (t_m / d).powf(alpha)).powi(n as i32))
}

/// The inverse of Eq. (2): the deadline `D = t_m (1 - P^{1/N})^{-1/alpha}`
/// that enforces isolation guarantee `p` (§IV-B, "Navigating the
/// trade-off" — this is the tunable knob exposed to cluster operators).
///
/// Returns `f64::INFINITY` for `p = 1` (strict isolation requires an
/// unbounded reservation).
///
/// # Errors
///
/// Returns [`ModelError`] unless `t_m > 0`, `alpha > 1`, `n >= 1` and `p`
/// lies in `[0, 1]`.
pub fn deadline_for_isolation(p: f64, t_m: f64, alpha: f64, n: u32) -> Result<f64, ModelError> {
    check_scale(t_m)?;
    check_shape(alpha)?;
    check_tasks(n)?;
    check_probability(p)?;
    if p == 0.0 {
        return Ok(t_m);
    }
    if p == 1.0 {
        return Ok(f64::INFINITY);
    }
    Ok(t_m * (1.0 - p.powf(1.0 / n as f64)).powf(-1.0 / alpha))
}

/// Eq. (3): the lower bound on expected slot utilization when every slot
/// is reserved until deadline `d` (assuming the worst case of
/// reservation-to-deadline holding).
///
/// # Errors
///
/// Returns [`ModelError`] unless `t_m > 0`, `alpha > 1` and `d >= t_m`.
pub fn utilization_bound_for_deadline(d: f64, t_m: f64, alpha: f64) -> Result<f64, ModelError> {
    check_scale(t_m)?;
    check_shape(alpha)?;
    if d.is_nan() || d < t_m {
        return Err(ModelError::new(format!(
            "deadline {d} must be at least the scale parameter {t_m}"
        )));
    }
    let ratio = t_m / d; // 0 for an infinite deadline
    Ok(alpha / (alpha - 1.0) * ratio - 1.0 / (alpha - 1.0) * ratio.powf(alpha))
}

/// Eq. (4): the utilization lower bound as a function of the isolation
/// guarantee `p` — the trade-off curve of Fig. 8. Monotonically decreasing
/// in `p`: `E[U] = 1` at `p = 0` and `E[U] -> 0` as `p -> 1`.
///
/// # Errors
///
/// Returns [`ModelError`] unless `alpha > 1`, `n >= 1` and `p` lies in
/// `[0, 1]`.
pub fn utilization_bound_for_isolation(p: f64, alpha: f64, n: u32) -> Result<f64, ModelError> {
    check_shape(alpha)?;
    check_tasks(n)?;
    check_probability(p)?;
    let ratio = (1.0 - p.powf(1.0 / n as f64)).powf(1.0 / alpha);
    Ok(alpha / (alpha - 1.0) * ratio - 1.0 / (alpha - 1.0) * ratio.powf(alpha))
}

/// The *exact* expected utilization over a reservation window of length
/// `d`: `E[min(t, d)] / d`, counting work still in flight at the deadline
/// — whereas Eq. (3) is a lower bound that credits only tasks completed
/// by `d`. Useful to quantify how conservative the paper's bound is.
///
/// Closed form:
/// `E[min(t,d)] = alpha/(alpha-1) t_m [1 - (t_m/d)^{alpha-1}] + d (t_m/d)^alpha`.
///
/// # Errors
///
/// Returns [`ModelError`] unless `t_m > 0`, `alpha > 1` and `d >= t_m`.
pub fn utilization_exact_for_deadline(d: f64, t_m: f64, alpha: f64) -> Result<f64, ModelError> {
    check_scale(t_m)?;
    check_shape(alpha)?;
    if d.is_nan() || d < t_m {
        return Err(ModelError::new(format!(
            "deadline {d} must be at least the scale parameter {t_m}"
        )));
    }
    let ratio = t_m / d;
    let completed_part = alpha / (alpha - 1.0) * t_m * (1.0 - ratio.powf(alpha - 1.0));
    let in_flight_part = d * ratio.powf(alpha);
    Ok((completed_part + in_flight_part) / d)
}

/// One point of the Fig. 8 trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// Isolation guarantee `P`.
    pub isolation: f64,
    /// Utilization lower bound `E[U]`.
    pub utilization: f64,
}

/// Samples the Eq. (4) trade-off curve at `points` evenly spaced isolation
/// levels in `[0, 1]` (inclusive), as plotted in Fig. 8.
///
/// # Errors
///
/// Returns [`ModelError`] unless `alpha > 1`, `n >= 1` and `points >= 2`.
pub fn tradeoff_curve(alpha: f64, n: u32, points: usize) -> Result<Vec<TradeoffPoint>, ModelError> {
    check_shape(alpha)?;
    check_tasks(n)?;
    if points < 2 {
        return Err(ModelError::new("a curve needs at least two points"));
    }
    (0..points)
        .map(|i| {
            let p = i as f64 / (points - 1) as f64;
            Ok(TradeoffPoint { isolation: p, utilization: utilization_bound_for_isolation(p, alpha, n)? })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolation_extremes() {
        // Deadline below the minimum duration: no chance every task is done.
        assert_eq!(isolation_probability(0.5, 1.0, 1.6, 10).unwrap(), 0.0);
        // At d = t_m the per-task probability is 0.
        assert_eq!(isolation_probability(1.0, 1.0, 1.6, 10).unwrap(), 0.0);
        // Very large deadline: approaches 1.
        assert!(isolation_probability(1e9, 1.0, 1.6, 10).unwrap() > 0.999);
    }

    #[test]
    fn isolation_is_monotone_in_deadline() {
        let mut last = 0.0;
        for d in [1.5, 2.0, 4.0, 8.0, 32.0] {
            let p = isolation_probability(d, 1.0, 1.6, 20).unwrap();
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn deadline_inverts_isolation() {
        for &p in &[0.1, 0.4, 0.9, 0.99] {
            for &n in &[1u32, 20, 200] {
                let d = deadline_for_isolation(p, 2.0, 1.6, n).unwrap();
                let back = isolation_probability(d, 2.0, 1.6, n).unwrap();
                assert!((back - p).abs() < 1e-9, "p={p} n={n}: got {back}");
            }
        }
    }

    #[test]
    fn deadline_extremes() {
        assert_eq!(deadline_for_isolation(0.0, 2.0, 1.6, 20).unwrap(), 2.0);
        assert_eq!(deadline_for_isolation(1.0, 2.0, 1.6, 20).unwrap(), f64::INFINITY);
    }

    #[test]
    fn utilization_bound_endpoints() {
        // d = t_m: every slot is busy for its full (reserved) period.
        let u = utilization_bound_for_deadline(1.0, 1.0, 1.6).unwrap();
        assert!((u - 1.0).abs() < 1e-12);
        // Infinite deadline: bound goes to zero.
        let u = utilization_bound_for_deadline(1e12, 1.0, 1.6).unwrap();
        assert!(u < 1e-6);
    }

    #[test]
    fn eq4_endpoints_match_paper() {
        // "providing no isolation (P = 0) incurs no utilization loss".
        let u0 = utilization_bound_for_isolation(0.0, 1.6, 20).unwrap();
        assert!((u0 - 1.0).abs() < 1e-12);
        // "enforcing strict isolation (P = 1) may lead to arbitrarily low
        // utilization".
        let u1 = utilization_bound_for_isolation(1.0, 1.6, 20).unwrap();
        assert!(u1.abs() < 1e-12);
    }

    #[test]
    fn eq4_is_monotonically_decreasing() {
        for &alpha in &[1.2, 1.6, 2.0, 2.4] {
            for &n in &[20u32, 200] {
                let curve = tradeoff_curve(alpha, n, 101).unwrap();
                for w in curve.windows(2) {
                    assert!(
                        w[1].utilization <= w[0].utilization + 1e-12,
                        "alpha={alpha} n={n}: not decreasing at P={}",
                        w[1].isolation
                    );
                }
            }
        }
    }

    #[test]
    fn heavier_tail_gives_sharper_tradeoff() {
        // Fig. 8: at a moderate isolation level, a heavier tail (smaller
        // alpha) yields lower achievable utilization.
        let heavy = utilization_bound_for_isolation(0.6, 1.2, 20).unwrap();
        let light = utilization_bound_for_isolation(0.6, 2.4, 20).unwrap();
        assert!(heavy < light, "heavy={heavy} light={light}");
    }

    #[test]
    fn higher_parallelism_gives_sharper_tradeoff() {
        // Fig. 8: N = 200 is strictly worse than N = 20 at equal P.
        let small = utilization_bound_for_isolation(0.6, 1.6, 20).unwrap();
        let large = utilization_bound_for_isolation(0.6, 1.6, 200).unwrap();
        assert!(large < small, "large={large} small={small}");
    }

    #[test]
    fn eq3_eq4_consistency() {
        // Eq. (4) is Eq. (3) evaluated at the Eq. (2)-inverting deadline.
        let (p, t_m, alpha, n) = (0.7, 3.0, 1.6, 40u32);
        let d = deadline_for_isolation(p, t_m, alpha, n).unwrap();
        let via_deadline = utilization_bound_for_deadline(d, t_m, alpha).unwrap();
        let via_isolation = utilization_bound_for_isolation(p, alpha, n).unwrap();
        assert!((via_deadline - via_isolation).abs() < 1e-9);
    }

    #[test]
    fn exact_utilization_dominates_the_bound() {
        for &alpha in &[1.2, 1.6, 2.4] {
            for &d in &[1.5, 3.0, 10.0, 100.0] {
                let bound = utilization_bound_for_deadline(d, 1.0, alpha).unwrap();
                let exact = utilization_exact_for_deadline(d, 1.0, alpha).unwrap();
                assert!(
                    exact >= bound - 1e-12,
                    "alpha={alpha} d={d}: exact {exact} < bound {bound}"
                );
                assert!(exact <= 1.0 + 1e-12);
            }
        }
        // At d = t_m both are 1 (a task exactly fills the window).
        let exact = utilization_exact_for_deadline(1.0, 1.0, 1.6).unwrap();
        assert!((exact - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_utilization_matches_monte_carlo() {
        use ssr_simcore::dist::{Distribution, Pareto};
        use ssr_simcore::rng::SimRng;
        let (t_m, alpha, d) = (2.0, 1.6, 7.0);
        let closed = utilization_exact_for_deadline(d, t_m, alpha).unwrap();
        let p = Pareto::new(t_m, alpha).unwrap();
        let mut rng = SimRng::seed_from_u64(11);
        let n = 200_000;
        let mc: f64 =
            (0..n).map(|_| p.sample(&mut rng).min(d) / d).sum::<f64>() / n as f64;
        assert!((closed - mc).abs() < 0.01, "closed {closed} vs monte-carlo {mc}");
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(isolation_probability(1.0, 0.0, 1.6, 10).is_err());
        assert!(isolation_probability(1.0, 1.0, 1.0, 10).is_err());
        assert!(isolation_probability(1.0, 1.0, 1.6, 0).is_err());
        assert!(isolation_probability(f64::NAN, 1.0, 1.6, 10).is_err());
        assert!(deadline_for_isolation(1.5, 1.0, 1.6, 10).is_err());
        assert!(utilization_bound_for_deadline(0.5, 1.0, 1.6).is_err());
        assert!(tradeoff_curve(1.6, 10, 1).is_err());
        let err = tradeoff_curve(0.9, 10, 5).unwrap_err();
        assert!(format!("{err}").contains("shape"));
    }

    #[test]
    fn curve_has_requested_shape() {
        let curve = tradeoff_curve(1.6, 20, 11).unwrap();
        assert_eq!(curve.len(), 11);
        assert_eq!(curve[0].isolation, 0.0);
        assert_eq!(curve[10].isolation, 1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Eq. (2) always yields a probability; Eq. (4) always yields a
        /// utilization in [0, 1], decreasing in P.
        #[test]
        fn domains_hold(
            alpha in 1.01f64..5.0,
            t_m in 0.1f64..100.0,
            d_factor in 1.0f64..1000.0,
            n in 1u32..500,
            p1 in 0.0f64..=1.0,
            p2 in 0.0f64..=1.0,
        ) {
            let d = t_m * d_factor;
            let p = isolation_probability(d, t_m, alpha, n).unwrap();
            prop_assert!((0.0..=1.0).contains(&p));
            let u = utilization_bound_for_isolation(p1, alpha, n).unwrap();
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&u));
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let u_lo = utilization_bound_for_isolation(lo, alpha, n).unwrap();
            let u_hi = utilization_bound_for_isolation(hi, alpha, n).unwrap();
            prop_assert!(u_hi <= u_lo + 1e-9);
        }

        /// The deadline knob round-trips through Eq. (2).
        #[test]
        fn knob_round_trips(
            alpha in 1.05f64..4.0,
            t_m in 0.1f64..50.0,
            n in 1u32..300,
            p in 0.01f64..0.99,
        ) {
            let d = deadline_for_isolation(p, t_m, alpha, n).unwrap();
            prop_assert!(d >= t_m);
            let back = isolation_probability(d, t_m, alpha, n).unwrap();
            prop_assert!((back - p).abs() < 1e-6);
        }
    }
}
