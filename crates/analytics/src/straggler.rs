//! The §IV-C numerical model of straggler mitigation with reserved slots.
//!
//! A phase of `N` tasks runs on `N` slots. Without mitigation its
//! completion time is the maximum order statistic `T = t_(N)`. With
//! mitigation, copies are launched once half the tasks have completed
//! (that is when the number of reserved-idle slots first covers every
//! ongoing task), so
//!
//! `T' = t_(ceil(N/2)) + max_{ceil(N/2) < k <= N} min{ t_(k) - t_(ceil(N/2)), t'_(k) }`
//!
//! where `t'_(k)` is the (i.i.d.) duration of the copy of the k-th
//! shortest task. This module evaluates both closed forms on given
//! durations and reproduces the Monte-Carlo study of Fig. 10.

use ssr_simcore::dist::{Distribution, Pareto};
use ssr_simcore::rng::SimRng;
use ssr_simcore::stats::order_statistics;

use crate::ModelError;

/// Phase completion time without mitigation: the slowest task.
///
/// # Errors
///
/// Returns [`ModelError`] if `durations` is empty.
pub fn phase_time(durations: &[f64]) -> Result<f64, ModelError> {
    durations
        .iter()
        .copied()
        .fold(None, |acc: Option<f64>, x| Some(acc.map_or(x, |a| a.max(x))))
        .ok_or_else(|| ModelError::new("phase needs at least one task"))
}

/// Phase completion time with reserved-slot straggler mitigation, given
/// the original durations and one copy duration per task (`copies[i]` is
/// the copy of the task with the i-th *shortest* original duration; only
/// the tail entries `k > ceil(N/2)` are used).
///
/// # Errors
///
/// Returns [`ModelError`] if `durations` is empty or `copies` is shorter
/// than `durations`.
pub fn phase_time_with_mitigation(durations: &[f64], copies: &[f64]) -> Result<f64, ModelError> {
    let n = durations.len();
    if n == 0 {
        return Err(ModelError::new("phase needs at least one task"));
    }
    if copies.len() < n {
        return Err(ModelError::new(format!(
            "need one copy duration per task: {} < {n}",
            copies.len()
        )));
    }
    let sorted = order_statistics(durations);
    let half = n.div_ceil(2); // ceil(N/2), 1-based index of the launch point
    let launch = sorted[half - 1];
    let mut tail_max: f64 = 0.0;
    for k in half..n {
        // 0-based k corresponds to the (k+1)-th shortest task.
        let remaining = sorted[k] - launch;
        let effective = remaining.min(copies[k]);
        tail_max = tail_max.max(effective);
    }
    Ok(launch + tail_max)
}

/// The outcome of one Monte-Carlo study point (one `(alpha, n)` cell of
/// Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MitigationStudy {
    /// Pareto shape used.
    pub alpha: f64,
    /// Degree of parallelism.
    pub n: u32,
    /// Mean phase time without mitigation, `E[T]`.
    pub mean_without: f64,
    /// Mean phase time with mitigation, `E[T']`.
    pub mean_with: f64,
}

impl MitigationStudy {
    /// Relative reduction of phase completion time,
    /// `1 - E[T'] / E[T]` — the quantity Fig. 10 reports ("over 50% at
    /// alpha = 1.6").
    pub fn reduction(&self) -> f64 {
        1.0 - self.mean_with / self.mean_without
    }

    /// Speed-up factor `E[T] / E[T']`.
    pub fn speedup(&self) -> f64 {
        self.mean_without / self.mean_with
    }
}

/// Runs the Fig. 10 Monte-Carlo study: `runs` phases of `n` i.i.d.
/// Pareto(`t_m = 1`, `alpha`) tasks, with copy durations drawn i.i.d. from
/// the same distribution.
///
/// # Errors
///
/// Returns [`ModelError`] unless `alpha > 0`, `n >= 1` and `runs >= 1`.
pub fn mitigation_study(
    alpha: f64,
    n: u32,
    runs: u32,
    seed: u64,
) -> Result<MitigationStudy, ModelError> {
    if n == 0 || runs == 0 {
        return Err(ModelError::new("study needs n >= 1 and runs >= 1"));
    }
    let pareto =
        Pareto::new(1.0, alpha).map_err(|e| ModelError::new(format!("bad shape: {e}")))?;
    let mut rng = SimRng::stream(seed, 0);
    let mut sum_t = 0.0;
    let mut sum_tp = 0.0;
    for _ in 0..runs {
        let durations: Vec<f64> = (0..n).map(|_| pareto.sample(&mut rng)).collect();
        let copies: Vec<f64> = (0..n).map(|_| pareto.sample(&mut rng)).collect();
        sum_t += phase_time(&durations)?;
        sum_tp += phase_time_with_mitigation(&durations, &copies)?;
    }
    Ok(MitigationStudy {
        alpha,
        n,
        mean_without: sum_t / runs as f64,
        mean_with: sum_tp / runs as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_time_is_max() {
        assert_eq!(phase_time(&[1.0, 5.0, 3.0]).unwrap(), 5.0);
        assert!(phase_time(&[]).is_err());
    }

    #[test]
    fn mitigation_formula_hand_computed() {
        // N = 4, sorted durations 1, 2, 10, 20; launch at t_(2) = 2.
        // Copies for k=3,4: 1 and 3.
        // k=3: min(10-2, 1) = 1; k=4: min(20-2, 3) = 3 -> T' = 2 + 3 = 5.
        let durations = [10.0, 1.0, 20.0, 2.0];
        let copies = [99.0, 99.0, 1.0, 3.0];
        assert_eq!(phase_time_with_mitigation(&durations, &copies).unwrap(), 5.0);
    }

    #[test]
    fn slow_copies_leave_time_unchanged() {
        // If every copy is slower than the remaining original work, T' = T.
        let durations = [1.0, 2.0, 3.0, 4.0];
        let copies = [1e9; 4];
        assert_eq!(phase_time_with_mitigation(&durations, &copies).unwrap(), 4.0);
    }

    #[test]
    fn instant_copies_collapse_to_launch_point() {
        let durations = [1.0, 2.0, 30.0, 40.0];
        let copies = [0.0; 4];
        assert_eq!(phase_time_with_mitigation(&durations, &copies).unwrap(), 2.0);
    }

    #[test]
    fn single_task_phase() {
        // N = 1: half = 1, launch = t_(1), no tail -> T' = T.
        assert_eq!(phase_time_with_mitigation(&[7.0], &[0.1]).unwrap(), 7.0);
    }

    #[test]
    fn odd_parallelism_launch_point() {
        // N = 5: half = 3, launch = t_(3) = 3. Tail k=4,5.
        let durations = [1.0, 2.0, 3.0, 10.0, 100.0];
        let copies = [0.0, 0.0, 0.0, 1.0, 2.0];
        // k=4: min(10-3, 1) = 1; k=5: min(100-3, 2) = 2 -> T' = 5.
        assert_eq!(phase_time_with_mitigation(&durations, &copies).unwrap(), 5.0);
    }

    #[test]
    fn mitigation_never_hurts() {
        let mut rng = SimRng::seed_from_u64(7);
        let p = Pareto::new(1.0, 1.3).unwrap();
        for _ in 0..200 {
            let d: Vec<f64> = (0..16).map(|_| p.sample(&mut rng)).collect();
            let c: Vec<f64> = (0..16).map(|_| p.sample(&mut rng)).collect();
            let t = phase_time(&d).unwrap();
            let tp = phase_time_with_mitigation(&d, &c).unwrap();
            assert!(tp <= t + 1e-12, "T'={tp} > T={t}");
        }
    }

    #[test]
    fn mismatched_copies_rejected() {
        assert!(phase_time_with_mitigation(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn study_reproduces_paper_claim_alpha_16() {
        // §IV-C: "For typical production workloads with alpha = 1.6,
        // straggler mitigation reduces the job completion time by over 50%"
        // (N = 200 in Fig. 10's top curve).
        let s = mitigation_study(1.6, 200, 400, 42).unwrap();
        assert!(s.reduction() > 0.5, "reduction {} <= 0.5", s.reduction());
        assert!(s.speedup() > 2.0);
    }

    #[test]
    fn study_benefit_grows_with_heavier_tail() {
        let heavy = mitigation_study(1.2, 100, 300, 1).unwrap();
        let light = mitigation_study(2.8, 100, 300, 1).unwrap();
        assert!(heavy.reduction() > light.reduction());
    }

    #[test]
    fn study_benefit_grows_with_parallelism() {
        let small = mitigation_study(1.6, 20, 400, 2).unwrap();
        let large = mitigation_study(1.6, 200, 400, 2).unwrap();
        assert!(large.reduction() > small.reduction());
    }

    #[test]
    fn study_is_deterministic() {
        let a = mitigation_study(1.6, 50, 100, 9).unwrap();
        let b = mitigation_study(1.6, 50, 100, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn study_error_cases() {
        assert!(mitigation_study(1.6, 0, 10, 0).is_err());
        assert!(mitigation_study(1.6, 10, 0, 0).is_err());
        assert!(mitigation_study(0.0, 10, 10, 0).is_err());
    }
}
