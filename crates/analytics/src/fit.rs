//! Online Pareto parameter estimation.
//!
//! The deadline policy (§IV-B) needs the distribution parameters of the
//! *current* phase while it is still running:
//!
//! * the scale `t_m` "can be well approximated by the duration of the task
//!   that finishes first in a phase" (paper §IV-B.2),
//! * the shape `alpha` is fit by maximum likelihood over the durations
//!   observed so far (the Hill estimator), falling back to a configured
//!   default while too few samples exist.

use crate::ModelError;

/// The maximum-likelihood (Hill) estimator of the Pareto shape given the
/// scale: `alpha = n / sum(ln(x_i / scale))`.
///
/// # Errors
///
/// Returns [`ModelError`] if `samples` is empty, `scale` is not positive,
/// or any sample lies below `scale` (impossible under the model).
pub fn shape_mle(samples: &[f64], scale: f64) -> Result<f64, ModelError> {
    if samples.is_empty() {
        return Err(ModelError::new("shape estimation needs at least one sample"));
    }
    if !(scale.is_finite() && scale > 0.0) {
        return Err(ModelError::new(format!("scale must be positive, got {scale}")));
    }
    let mut log_sum = 0.0;
    for &x in samples {
        if !x.is_finite() || x < scale {
            return Err(ModelError::new(format!(
                "sample {x} lies below the scale parameter {scale}"
            )));
        }
        log_sum += (x / scale).ln();
    }
    if log_sum <= 0.0 {
        // All samples equal the scale: a degenerate (infinitely light) tail.
        return Ok(f64::INFINITY);
    }
    Ok(samples.len() as f64 / log_sum)
}

/// A fitted Pareto model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoFit {
    /// The scale parameter `t_m` (sample minimum).
    pub scale: f64,
    /// The shape parameter `alpha` (Hill MLE).
    pub shape: f64,
}

/// Fits both Pareto parameters: scale = sample minimum, shape by MLE.
///
/// # Errors
///
/// Returns [`ModelError`] if `samples` is empty or contains a non-positive
/// or non-finite value.
pub fn fit(samples: &[f64]) -> Result<ParetoFit, ModelError> {
    if samples.is_empty() {
        return Err(ModelError::new("fitting needs at least one sample"));
    }
    let mut scale = f64::INFINITY;
    for &x in samples {
        if !(x.is_finite() && x > 0.0) {
            return Err(ModelError::new(format!("samples must be finite and positive, got {x}")));
        }
        scale = scale.min(x);
    }
    let shape = shape_mle(samples, scale)?;
    Ok(ParetoFit { scale, shape })
}

/// An incremental estimator fed one task duration at a time — the form the
/// reservation policy uses while a phase runs.
///
/// # Example
///
/// ```
/// use ssr_analytics::fit::OnlineParetoFit;
///
/// let mut est = OnlineParetoFit::new(1.6); // default shape before data
/// assert_eq!(est.shape(), 1.6);
/// est.observe(2.0);
/// est.observe(3.0);
/// est.observe(10.0);
/// assert_eq!(est.scale(), Some(2.0));
/// assert!(est.shape() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct OnlineParetoFit {
    default_shape: f64,
    min_samples: usize,
    count: usize,
    scale: Option<f64>,
    log_sum_raw: f64,
}

impl OnlineParetoFit {
    /// Creates an estimator that reports `default_shape` until at least
    /// [`OnlineParetoFit::with_min_samples`] observations (3 by default)
    /// have arrived.
    pub fn new(default_shape: f64) -> Self {
        OnlineParetoFit {
            default_shape,
            min_samples: 3,
            count: 0,
            scale: None,
            log_sum_raw: 0.0,
        }
    }

    /// Requires at least `min` observations before the MLE replaces the
    /// default shape.
    pub fn with_min_samples(mut self, min: usize) -> Self {
        self.min_samples = min.max(1);
        self
    }

    /// Feeds one observed duration (seconds). Non-positive or non-finite
    /// values are ignored.
    pub fn observe(&mut self, duration: f64) {
        if !(duration.is_finite() && duration > 0.0) {
            return;
        }
        self.count += 1;
        self.log_sum_raw += duration.ln();
        self.scale = Some(match self.scale {
            Some(s) => s.min(duration),
            None => duration,
        });
    }

    /// Observations so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The scale estimate (minimum observed duration), once any sample has
    /// arrived.
    pub fn scale(&self) -> Option<f64> {
        self.scale
    }

    /// The current shape estimate: the Hill MLE once enough samples exist,
    /// the configured default otherwise. Clamped to `(1, 16]` so the Eq. 2
    /// deadline stays finite and meaningful.
    pub fn shape(&self) -> f64 {
        let Some(scale) = self.scale else { return self.default_shape };
        if self.count < self.min_samples {
            return self.default_shape;
        }
        // sum(ln(x_i / s)) = sum(ln x_i) - n ln s.
        let log_sum = self.log_sum_raw - self.count as f64 * scale.ln();
        let alpha = if log_sum <= 0.0 { f64::INFINITY } else { self.count as f64 / log_sum };
        alpha.clamp(1.0 + 1e-6, 16.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_simcore::dist::{Distribution, Pareto};
    use ssr_simcore::rng::SimRng;

    #[test]
    fn mle_recovers_known_shape() {
        let p = Pareto::new(2.0, 1.6).unwrap();
        let mut rng = SimRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..100_000).map(|_| p.sample(&mut rng)).collect();
        let alpha = shape_mle(&samples, 2.0).unwrap();
        assert!((alpha - 1.6).abs() < 0.03, "alpha={alpha}");
    }

    #[test]
    fn fit_recovers_both_parameters() {
        let p = Pareto::new(3.0, 2.2).unwrap();
        let mut rng = SimRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..50_000).map(|_| p.sample(&mut rng)).collect();
        let f = fit(&samples).unwrap();
        assert!((f.scale - 3.0) / 3.0 < 0.01);
        assert!((f.shape - 2.2).abs() < 0.1, "shape={}", f.shape);
    }

    #[test]
    fn mle_error_cases() {
        assert!(shape_mle(&[], 1.0).is_err());
        assert!(shape_mle(&[2.0], 0.0).is_err());
        assert!(shape_mle(&[0.5], 1.0).is_err()); // below scale
        assert!(fit(&[]).is_err());
        assert!(fit(&[1.0, -2.0]).is_err());
    }

    #[test]
    fn degenerate_samples_give_infinite_shape() {
        assert_eq!(shape_mle(&[2.0, 2.0, 2.0], 2.0).unwrap(), f64::INFINITY);
    }

    #[test]
    fn online_defaults_before_enough_samples() {
        let mut est = OnlineParetoFit::new(1.6).with_min_samples(3);
        assert_eq!(est.shape(), 1.6);
        assert_eq!(est.scale(), None);
        est.observe(5.0);
        est.observe(4.0);
        assert_eq!(est.shape(), 1.6); // still below min_samples
        assert_eq!(est.scale(), Some(4.0));
        est.observe(8.0);
        assert_ne!(est.shape(), 1.6);
    }

    #[test]
    fn online_matches_batch_mle() {
        let p = Pareto::new(1.0, 1.4).unwrap();
        let mut rng = SimRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..10_000).map(|_| p.sample(&mut rng)).collect();
        let mut est = OnlineParetoFit::new(9.9);
        for &s in &samples {
            est.observe(s);
        }
        let batch = fit(&samples).unwrap();
        assert!((est.shape() - batch.shape).abs() < 1e-9);
        assert_eq!(est.scale(), Some(batch.scale));
        assert_eq!(est.count(), samples.len());
    }

    #[test]
    fn online_ignores_garbage() {
        let mut est = OnlineParetoFit::new(1.6);
        est.observe(f64::NAN);
        est.observe(-1.0);
        est.observe(0.0);
        assert_eq!(est.count(), 0);
    }

    #[test]
    fn online_shape_is_clamped() {
        let mut est = OnlineParetoFit::new(1.6).with_min_samples(1);
        for _ in 0..5 {
            est.observe(2.0); // degenerate: raw MLE is infinite
        }
        assert_eq!(est.shape(), 16.0);
    }
}
