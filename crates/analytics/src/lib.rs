//! # ssr-analytics
//!
//! The paper's analytical model (§IV-B) and numerical studies (§IV-C):
//!
//! * [`tradeoff`] — the isolation/utilization trade-off: isolation
//!   probability (Eq. 2), the utilization lower bound (Eq. 3), the combined
//!   trade-off curve (Eq. 4) and the deadline that enforces a requested
//!   isolation level (the tunable knob),
//! * [`fit`] — online Pareto parameter estimation (scale from the first
//!   finisher, shape by maximum likelihood) used by the deadline policy,
//! * [`straggler`] — the §IV-C numerical model of phase completion time
//!   with and without reserved-slot straggler mitigation (Figs. 8 and 10).
//!
//! # Example
//!
//! ```
//! use ssr_analytics::tradeoff;
//!
//! // A phase of 20 tasks, Pareto(alpha = 1.6) durations with t_m = 2 s.
//! // What deadline guarantees an uninterrupted phase transition with
//! // probability 0.9?
//! let d = tradeoff::deadline_for_isolation(0.9, 2.0, 1.6, 20)?;
//! let p = tradeoff::isolation_probability(d, 2.0, 1.6, 20)?;
//! assert!((p - 0.9).abs() < 1e-9);
//! # Ok::<(), ssr_analytics::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod fit;
pub mod straggler;
pub mod tradeoff;

use std::fmt;

/// Error returned when model parameters are outside their domain.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelError {
    what: String,
}

impl ModelError {
    pub(crate) fn new(what: impl Into<String>) -> Self {
        ModelError { what: what.into() }
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid model parameters: {}", self.what)
    }
}

impl std::error::Error for ModelError {}
