//! Workload specification strings: `template[:key=value,...]`.
//!
//! Grammar accepted by `--fg` / `--bg`:
//!
//! ```text
//! kmeans[:par=8,iters=4,prio=10,mean=4,cv=0.35,factor=1,arrival=0]
//! svm[:...]            same keys as kmeans
//! pagerank[:...]       same keys as kmeans
//! sql[:q=3,par=32,prio=10,factor=1]       one TPC-DS-like query (q in 1..=20)
//! sql[:all,par=32,prio=10]                all 20 queries
//! pipeline[:phases=3,par=8,tm=1,alpha=1.6,prio=10]   Pareto pipeline
//! maponly[:tasks=64,secs=30,prio=0]       single-phase batch job
//! google[:jobs=100,factor=1,seed=7,prio=0]           background trace mix
//! ```

use std::collections::BTreeMap;
use std::fmt;

use ssr_dag::{JobSpec, Priority};
use ssr_simcore::rng::SimRng;
use ssr_simcore::{SimDuration, SimTime};
use ssr_workload::google::GoogleTraceGenerator;
use ssr_workload::{mllib, sql, synthetic, GoogleTraceConfig, MllibParams, SqlParams};

/// Error produced when a workload specification string cannot be parsed.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid workload spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn err(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

/// Key/value options after the template name.
#[derive(Debug, Default)]
struct Options {
    kv: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Options {
    fn parse(rest: Option<&str>) -> Result<Options, SpecError> {
        let mut options = Options::default();
        let Some(rest) = rest else { return Ok(options) };
        for part in rest.split(',').filter(|p| !p.is_empty()) {
            match part.split_once('=') {
                Some((k, v)) => {
                    options.kv.insert(k.trim().to_owned(), v.trim().to_owned());
                }
                None => options.flags.push(part.trim().to_owned()),
            }
        }
        Ok(options)
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, SpecError> {
        match self.kv.get(key) {
            Some(v) => v.parse().map_err(|_| err(format!("bad value for {key}: {v}"))),
            None => Ok(default),
        }
    }

    fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }
}

/// Parses one workload spec into job specifications (one job for most
/// templates; many for `sql:all` and `google`).
pub fn parse(spec: &str) -> Result<Vec<JobSpec>, SpecError> {
    let (template, rest) = match spec.split_once(':') {
        Some((t, r)) => (t, Some(r)),
        None => (spec, None),
    };
    let o = Options::parse(rest)?;
    match template {
        "kmeans" | "svm" | "pagerank" => {
            let params = MllibParams::small()
                .with_parallelism(o.num("par", 8u32)?)
                .with_iterations(o.num("iters", 4u32)?)
                .with_priority(Priority::new(o.num("prio", 0i32)?))
                .with_mean_task_secs(o.num("mean", 4.0f64)?)
                .with_runtime_factor(o.num("factor", 1.0f64)?)
                .with_arrival(SimTime::from_secs_f64(o.num("arrival", 0.0f64)?));
            let job = match template {
                "kmeans" => mllib::kmeans(&params),
                "svm" => mllib::svm(&params),
                _ => mllib::pagerank(&params),
            }
            .map_err(|e| err(format!("{template}: {e}")))?;
            Ok(vec![job])
        }
        "sql" => {
            let params = SqlParams::medium()
                .with_base_parallelism(o.num("par", 32u32)?)
                .with_priority(Priority::new(o.num("prio", 0i32)?))
                .with_runtime_factor(o.num("factor", 1.0f64)?);
            if o.has_flag("all") {
                sql::all_queries(&params).map_err(|e| err(format!("sql: {e}")))
            } else {
                let q: usize = o.num("q", 1usize)?;
                if !(1..=sql::QUERY_COUNT).contains(&q) {
                    return Err(err(format!("sql query q={q} out of 1..={}", sql::QUERY_COUNT)));
                }
                Ok(vec![sql::query(q - 1, &params).map_err(|e| err(format!("sql: {e}")))?])
            }
        }
        "pipeline" => {
            let job = synthetic::pareto_pipeline(
                "pipeline",
                o.num("phases", 3u32)?,
                o.num("par", 8u32)?,
                o.num("tm", 1.0f64)?,
                o.num("alpha", 1.6f64)?,
                Priority::new(o.num("prio", 0i32)?),
            )
            .map_err(|e| err(format!("pipeline: {e}")))?;
            Ok(vec![job])
        }
        "maponly" => {
            let job = synthetic::map_only(
                "maponly",
                o.num("tasks", 64u32)?,
                ssr_simcore::dist::constant(o.num("secs", 30.0f64)?),
                Priority::new(o.num("prio", 0i32)?),
            )
            .map_err(|e| err(format!("maponly: {e}")))?;
            Ok(vec![job])
        }
        "google" => {
            let config = GoogleTraceConfig::cluster_hour()
                .with_jobs(o.num("jobs", 100u32)?)
                .with_priority(Priority::new(o.num("prio", 0i32)?))
                .with_runtime_factor(o.num("factor", 1.0f64)?);
            let mut config = config;
            config.horizon = SimDuration::from_secs_f64(o.num("horizon", 3600.0f64)?);
            let mut rng = SimRng::stream(o.num("seed", 7u64)?, 0);
            GoogleTraceGenerator::new(config)
                .generate(&mut rng)
                .map_err(|e| err(format!("google: {e}")))
        }
        other => Err(err(format!(
            "unknown template {other}; known: kmeans svm pagerank sql pipeline maponly google"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mllib_templates_with_defaults() {
        let jobs = parse("kmeans").unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].name(), "kmeans");
        assert_eq!(jobs[0].stages()[0].parallelism(), 8);
        assert!(parse("svm").is_ok());
        assert!(parse("pagerank").is_ok());
    }

    #[test]
    fn mllib_options_apply() {
        let jobs = parse("kmeans:par=16,iters=2,prio=10,arrival=5").unwrap();
        let j = &jobs[0];
        assert_eq!(j.stages().len(), 5); // load + 2x2
        assert_eq!(j.stages()[0].parallelism(), 16);
        assert_eq!(j.priority(), Priority::new(10));
        assert_eq!(j.arrival(), SimTime::from_secs(5));
    }

    #[test]
    fn sql_single_and_all() {
        let one = parse("sql:q=3,par=16").unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].name(), "tpcds-q03");
        let all = parse("sql:all").unwrap();
        assert_eq!(all.len(), 20);
        assert!(parse("sql:q=21").is_err());
        assert!(parse("sql:q=0").is_err());
    }

    #[test]
    fn pipeline_and_maponly() {
        let p = parse("pipeline:phases=4,par=2,alpha=1.3").unwrap();
        assert_eq!(p[0].stages().len(), 4);
        let m = parse("maponly:tasks=5,secs=2").unwrap();
        assert_eq!(m[0].total_tasks(), 5);
    }

    #[test]
    fn google_trace_generates_jobs() {
        let jobs = parse("google:jobs=12,seed=3").unwrap();
        assert_eq!(jobs.len(), 12);
        // Deterministic per seed.
        let again = parse("google:jobs=12,seed=3").unwrap();
        assert_eq!(jobs[0].arrival(), again[0].arrival());
    }

    #[test]
    fn errors_are_informative() {
        let e = parse("nosuch").unwrap_err();
        assert!(e.0.contains("unknown template"));
        let e = parse("kmeans:par=abc").unwrap_err();
        assert!(e.0.contains("bad value for par"));
        assert!(format!("{}", parse("nosuch").unwrap_err()).contains("invalid workload spec"));
    }

    #[test]
    fn empty_option_segments_tolerated() {
        assert!(parse("kmeans:").is_ok());
        assert!(parse("kmeans:par=4,,iters=1").is_ok());
    }
}
