//! Command-line option parsing for `ssr-cli run` (dependency-free).

use std::fmt;

use ssr_cluster::{ClusterSpec, LocalityModel};
use ssr_dag::Priority;
use ssr_scheduler::SpeculationConfig;
use ssr_sim::{FaultPlan, OrderConfig, PolicyConfig};
use ssr_simcore::SimDuration;

/// Error produced when command-line options cannot be parsed.
#[derive(Debug, Clone, PartialEq)]
pub struct OptError(pub String);

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid option: {}", self.0)
    }
}

impl std::error::Error for OptError {}

fn err(msg: impl Into<String>) -> OptError {
    OptError(msg.into())
}

/// Parsed options of the `run` subcommand.
#[derive(Debug)]
pub struct RunOptions {
    /// The cluster topology.
    pub cluster: ClusterSpec,
    /// Locality model (wait + ANY slowdown).
    pub locality: LocalityModel,
    /// Reservation policy.
    pub policy: PolicyConfig,
    /// Job order.
    pub order: OrderConfig,
    /// RNG seed.
    pub seed: u64,
    /// Foreground workload specs (measured; get run-alone baselines).
    pub foreground: Vec<String>,
    /// Background workload specs (load only).
    pub background: Vec<String>,
    /// Enable status-quo progress-based speculation.
    pub speculation: Option<SpeculationConfig>,
    /// Deterministic fault schedule injected into the contended run
    /// (run-alone baselines always run fault-free).
    pub faults: FaultPlan,
    /// Emit the full report as JSON instead of tables.
    pub json: bool,
    /// Worker threads for the parallel trial runner (`None` = `SSR_JOBS`
    /// or the machine's available parallelism).
    pub jobs: Option<usize>,
    /// Write a JSONL decision trace of the contended run to this path.
    pub trace: Option<String>,
    /// Also trace each foreground job's run-alone baseline, writing one
    /// `PREFIX-<job>.jsonl` per job (for `ssr-cli explain --alone`).
    pub trace_alone: Option<String>,
    /// Print an aggregated scheduling-metrics report after the run.
    pub metrics: bool,
    /// Print the deterministic work-counter report after the run (text,
    /// or sorted-key JSON under `--json`). Counters are always collected;
    /// the flag only controls the extra output.
    pub counters: bool,
    /// Attach a wall-clock span profiler to the contended run and print
    /// the flamegraph-style span tree to stderr (non-deterministic
    /// plane).
    pub profile: bool,
    /// Emit a stderr progress heartbeat during the run (non-deterministic
    /// plane).
    pub progress: bool,
}

impl RunOptions {
    /// Parses the arguments following `run`.
    ///
    /// # Errors
    ///
    /// Returns [`OptError`] on unknown flags, missing values or malformed
    /// parameters.
    pub fn parse(args: &[String]) -> Result<RunOptions, OptError> {
        let mut cluster_str = "4x2".to_owned();
        let mut sizing: Option<(u32, u32, u32)> = None;
        let mut racks: Option<u32> = None;
        let mut wait = 3.0f64;
        let mut any_slowdown = 5.0f64;
        let mut policy_str = "ssr".to_owned();
        let mut isolation = 1.0f64;
        let mut prereserve = 0.5f64;
        let mut stragglers = false;
        let mut order = OrderConfig::FifoPriority;
        let mut seed = 0u64;
        let mut foreground = Vec::new();
        let mut background = Vec::new();
        let mut speculation = None;
        let mut faults = FaultPlan::new();
        let mut json = false;
        let mut jobs = None;
        let mut trace = None;
        let mut trace_alone = None;
        let mut metrics = false;
        let mut counters = false;
        let mut profile = false;
        let mut progress = false;

        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| -> Result<String, OptError> {
                it.next().cloned().ok_or_else(|| err(format!("{name} requires a value")))
            };
            match arg.as_str() {
                "--cluster" => cluster_str = value("--cluster")?,
                "--racks" => {
                    racks =
                        Some(value("--racks")?.parse().map_err(|_| err("--racks wants a number"))?)
                }
                "--sizing" => {
                    let v = value("--sizing")?;
                    let parts: Vec<u32> = v
                        .split(',')
                        .map(|p| p.parse().map_err(|_| err(format!("bad --sizing: {v}"))))
                        .collect::<Result<_, _>>()?;
                    if parts.len() != 3 {
                        return Err(err("--sizing wants small,large,every"));
                    }
                    sizing = Some((parts[0], parts[1], parts[2]));
                }
                "--locality-wait" => {
                    wait = value("--locality-wait")?
                        .parse()
                        .map_err(|_| err("--locality-wait wants seconds"))?
                }
                "--any-slowdown" => {
                    any_slowdown = value("--any-slowdown")?
                        .parse()
                        .map_err(|_| err("--any-slowdown wants a factor"))?
                }
                "--policy" => policy_str = value("--policy")?,
                "--isolation" => {
                    isolation = value("--isolation")?
                        .parse()
                        .map_err(|_| err("--isolation wants a probability"))?
                }
                "--prereserve" => {
                    prereserve = value("--prereserve")?
                        .parse()
                        .map_err(|_| err("--prereserve wants a fraction"))?
                }
                "--stragglers" => stragglers = true,
                "--order" => {
                    order = match value("--order")?.as_str() {
                        "fifo-priority" => OrderConfig::FifoPriority,
                        "fair" => OrderConfig::Fair,
                        "fifo" => OrderConfig::Fifo,
                        other => return Err(err(format!("unknown --order {other}"))),
                    }
                }
                "--seed" => {
                    seed = value("--seed")?.parse().map_err(|_| err("--seed wants a number"))?
                }
                "--fg" => foreground.push(value("--fg")?),
                "--bg" => background.push(value("--bg")?),
                "--speculation" => speculation = Some(SpeculationConfig::spark_defaults()),
                "--faults" => faults = FaultPlan::parse(&value("--faults")?).map_err(err)?,
                "--json" => json = true,
                "--jobs" => {
                    jobs = Some(
                        value("--jobs")?.parse().map_err(|_| err("--jobs wants a thread count"))?,
                    )
                }
                "--trace" => trace = Some(value("--trace")?),
                "--trace-alone" => trace_alone = Some(value("--trace-alone")?),
                "--metrics" => metrics = true,
                "--counters" => counters = true,
                "--profile" => profile = true,
                "--progress" => progress = true,
                other => return Err(err(format!("unknown flag {other}"))),
            }
        }

        let (nodes, slots) = cluster_str
            .split_once('x')
            .ok_or_else(|| err(format!("--cluster wants NxS, got {cluster_str}")))?;
        let nodes: u32 = nodes.parse().map_err(|_| err("bad node count"))?;
        let slots: u32 = slots.parse().map_err(|_| err("bad slots-per-node"))?;
        let mut cluster = match racks {
            Some(r) => ClusterSpec::with_racks(nodes, slots, r),
            None => ClusterSpec::new(nodes, slots),
        }
        .map_err(|e| err(format!("bad cluster: {e}")))?;
        if let Some((small, large, every)) = sizing {
            if !(small >= 1 && large >= small && every >= 1) {
                return Err(err("--sizing wants 1 <= small <= large and every >= 1"));
            }
            cluster = cluster.with_slot_sizing(small, large, every);
        }

        let locality = LocalityModel::paper_simulation()
            .with_wait(SimDuration::from_secs_f64(wait))
            .with_any_slowdown(any_slowdown);

        let policy = match policy_str.as_str() {
            "work-conserving" | "wc" => PolicyConfig::WorkConserving,
            "ssr" => {
                let config = ssr_core::SsrConfig::builder()
                    .isolation_target(isolation)
                    .prereserve_threshold(prereserve)
                    .mitigate_stragglers(stragglers)
                    .build()
                    .map_err(|e| err(format!("bad SSR parameters: {e}")))?;
                PolicyConfig::Ssr(config)
            }
            s if s.starts_with("timeout:") => {
                let secs: f64 = s["timeout:".len()..]
                    .parse()
                    .map_err(|_| err("timeout:SECS wants seconds"))?;
                PolicyConfig::Timeout(SimDuration::from_secs_f64(secs))
            }
            s if s.starts_with("static:") => {
                let rest = &s["static:".len()..];
                let (count, class) = rest
                    .split_once(',')
                    .ok_or_else(|| err("static:COUNT,PRIO wanted"))?;
                PolicyConfig::Static {
                    count: count.parse().map_err(|_| err("bad static count"))?,
                    class: Priority::new(class.parse().map_err(|_| err("bad static prio"))?),
                }
            }
            other => {
                return Err(err(format!(
                    "unknown --policy {other}; known: work-conserving ssr timeout:SECS static:COUNT,PRIO"
                )))
            }
        };

        Ok(RunOptions {
            cluster,
            locality,
            policy,
            order,
            seed,
            foreground,
            background,
            speculation,
            faults,
            json,
            jobs,
            trace,
            trace_alone,
            metrics,
            counters,
            profile,
            progress,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<RunOptions, OptError> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        RunOptions::parse(&owned)
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.cluster.total_slots(), 8);
        assert_eq!(o.policy, PolicyConfig::ssr_strict());
        assert_eq!(o.order, OrderConfig::FifoPriority);
        assert_eq!(o.seed, 0);
        assert!(!o.json);
        assert!(o.speculation.is_none());
        assert!(o.faults.is_empty());
        assert_eq!(o.jobs, None);
        assert_eq!(o.trace, None);
        assert_eq!(o.trace_alone, None);
        assert!(!o.metrics);
        assert!(!o.counters);
        assert!(!o.profile);
        assert!(!o.progress);
    }

    #[test]
    fn perf_flags() {
        let o = parse(&["--counters", "--profile", "--progress"]).unwrap();
        assert!(o.counters);
        assert!(o.profile);
        assert!(o.progress);
    }

    #[test]
    fn trace_and_metrics_flags() {
        let o = parse(&["--trace", "out.jsonl", "--metrics", "--trace-alone", "alone"]).unwrap();
        assert_eq!(o.trace.as_deref(), Some("out.jsonl"));
        assert_eq!(o.trace_alone.as_deref(), Some("alone"));
        assert!(o.metrics);
        assert!(parse(&["--trace"]).is_err(), "missing value");
        assert!(parse(&["--trace-alone"]).is_err(), "missing value");
    }

    #[test]
    fn jobs_flag() {
        assert_eq!(parse(&["--jobs", "4"]).unwrap().jobs, Some(4));
        assert!(parse(&["--jobs", "many"]).is_err());
        assert!(parse(&["--jobs"]).is_err(), "missing value");
    }

    #[test]
    fn cluster_and_sizing() {
        let o = parse(&["--cluster", "10x4", "--racks", "5", "--sizing", "1,4,4"]).unwrap();
        assert_eq!(o.cluster.total_slots(), 40);
        assert_eq!(o.cluster.racks(), 2);
        assert_eq!(o.cluster.max_slot_size(), 4);
        assert!(parse(&["--cluster", "bad"]).is_err());
        assert!(parse(&["--sizing", "4,1,1"]).is_err());
        assert!(parse(&["--sizing", "1,2"]).is_err());
    }

    #[test]
    fn policies() {
        assert_eq!(parse(&["--policy", "wc"]).unwrap().policy, PolicyConfig::WorkConserving);
        let t = parse(&["--policy", "timeout:30"]).unwrap().policy;
        assert_eq!(t, PolicyConfig::Timeout(SimDuration::from_secs(30)));
        let s = parse(&["--policy", "static:8,10"]).unwrap().policy;
        assert_eq!(s, PolicyConfig::Static { count: 8, class: Priority::new(10) });
        let ssr = parse(&["--policy", "ssr", "--isolation", "0.4", "--stragglers"])
            .unwrap()
            .policy;
        match ssr {
            PolicyConfig::Ssr(c) => {
                assert_eq!(c.isolation_target(), 0.4);
                assert!(c.mitigate_stragglers());
            }
            other => panic!("expected ssr, got {other:?}"),
        }
        assert!(parse(&["--policy", "nope"]).is_err());
        assert!(parse(&["--isolation", "7"]).is_err());
    }

    #[test]
    fn workloads_and_flags() {
        let o = parse(&[
            "--fg",
            "kmeans:par=8",
            "--fg",
            "svm",
            "--bg",
            "google:jobs=10",
            "--order",
            "fair",
            "--seed",
            "42",
            "--json",
            "--speculation",
        ])
        .unwrap();
        assert_eq!(o.foreground.len(), 2);
        assert_eq!(o.background.len(), 1);
        assert_eq!(o.order, OrderConfig::Fair);
        assert_eq!(o.seed, 42);
        assert!(o.json);
        assert!(o.speculation.is_some());
    }

    #[test]
    fn faults_flag() {
        let o = parse(&["--faults", "crash:node=0,at=30,down=10;revoke:slot=2,at=5"]).unwrap();
        assert_eq!(o.faults.events().len(), 2);
        assert!(parse(&["--faults"]).is_err(), "missing value");
        let e = parse(&["--faults", "meteor:at=1"]).unwrap_err();
        assert!(e.0.contains("unknown fault kind"), "{e}");
    }

    #[test]
    fn unknown_flag_rejected() {
        let e = parse(&["--bogus"]).unwrap_err();
        assert!(e.0.contains("unknown flag"));
        assert!(parse(&["--seed"]).is_err(), "missing value");
    }

    #[test]
    fn locality_flags() {
        let o = parse(&["--locality-wait", "0", "--any-slowdown", "10"]).unwrap();
        assert_eq!(o.locality.wait(), SimDuration::ZERO);
        assert_eq!(
            o.locality.mean_slowdown(ssr_cluster::LocalityLevel::Any),
            Some(10.0)
        );
    }
}
