//! `ssr-cli` — run speculative-slot-reservation experiments from the
//! command line.
//!
//! ```text
//! ssr-cli run --cluster 4x2 --policy ssr --isolation 0.9 \
//!     --fg kmeans:par=8,prio=10 --bg google:jobs=100 --seed 42
//! ssr-cli run --policy work-conserving --fg pipeline:phases=3,par=8,prio=10 \
//!     --bg maponly:tasks=64,secs=60 --json
//! ssr-cli tradeoff --alpha 1.6 --n 20
//! ssr-cli deadline --p 0.9 --tm 2 --alpha 1.6 --n 20
//! ssr-cli run --fg kmeans --bg google:jobs=20 \
//!     --faults "crash:node=1,at=30,down=15" --trace faulted.jsonl
//! ssr-cli explain trace.jsonl --alone alone-kmeans.jsonl
//! ssr-cli check faulted.jsonl
//! ssr-cli check --explore --json
//! ssr-cli lint [--format json] [--baseline lint.baseline] [--explain-chain]
//! ```

#![forbid(unsafe_code)]

mod bench;
mod opts;
mod spec;

use std::process::ExitCode;

use ssr_perf::{SpanProfiler, WorkCounters};
use ssr_sim::walltime::WallClock;
use ssr_sim::{Experiment, SimConfig, Simulation};
use ssr_trace::{JsonlSink, MetricsSink, SplitSink, TraceSink};

use crate::opts::RunOptions;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        usage();
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "run" => cmd_run(rest),
        "tradeoff" => cmd_tradeoff(rest),
        "deadline" => cmd_deadline(rest),
        "explain" => cmd_explain(rest),
        "check" => cmd_check(rest),
        "bench" => cmd_bench(rest),
        "lint" => return ssr_lint::run_cli(rest),
        "--help" | "-h" | "help" => {
            usage();
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "ssr-cli — speculative slot reservation experiments\n\
         \n\
         commands:\n\
         \x20 run       simulate a workload mix (see flags below)\n\
         \x20 tradeoff  print the Eq. 4 isolation/utilization curve\n\
         \x20 deadline  print the Eq. 2 reservation deadline for a target P\n\
         \x20 explain   analyze a JSONL decision trace (timeline, critical\n\
         \x20           paths, slowdown attribution)\n\
         \x20 check     verify the reservation protocol: replay a trace\n\
         \x20           through the invariant checker, or model-check the\n\
         \x20           scheduler exhaustively with --explore\n\
         \x20 bench     diff two BENCH_*.json snapshots with a regression\n\
         \x20           gate: bench diff OLD.json NEW.json\n\
         \x20           [--threshold PCT] [--only SUBSTR]\n\
         \x20 lint      run the workspace determinism linter (ssr-lint):\n\
         \x20           per-file checks plus call-graph taint, panic-path,\n\
         \x20           trace-coverage and hot-path-allocation audits\n\
         \x20           (--baseline, --explain-chain, --format json)\n\
         \n\
         run flags:\n\
         \x20 --cluster NxS        nodes x slots-per-node (default 4x2)\n\
         \x20 --racks K            nodes per rack (default: single rack)\n\
         \x20 --sizing s,l,e       every e-th slot has size l, others s\n\
         \x20 --policy P           work-conserving | ssr | timeout:SECS | static:COUNT,PRIO\n\
         \x20 --isolation P        SSR isolation target (default 1.0)\n\
         \x20 --prereserve R       SSR pre-reservation threshold (default 0.5)\n\
         \x20 --stragglers         SSR: run copies on reserved slots (IV-C)\n\
         \x20 --speculation        status-quo progress-based speculation\n\
         \x20 --faults SPEC        inject deterministic faults; `;`-separated clauses:\n\
         \x20                      crash:node=N,at=S[,down=S] | revoke:slot=N,at=S\n\
         \x20                      | partition:node=N,at=S,secs=S\n\
         \x20                      | storm:at=S,secs=S,factor=F\n\
         \x20                      | restart:node=N,at=S,down=S,rampup=S,cold=F\n\
         \x20 --order O            fifo-priority | fair | fifo\n\
         \x20 --locality-wait S    delay-scheduling wait seconds (default 3)\n\
         \x20 --any-slowdown F     ANY-level task slowdown factor (default 5)\n\
         \x20 --fg SPEC            foreground workload (repeatable, measured)\n\
         \x20 --bg SPEC            background workload (repeatable)\n\
         \x20 --seed N             RNG seed (default 0)\n\
         \x20 --jobs N             worker threads for independent runs\n\
         \x20                      (default: SSR_JOBS env var, then all cores)\n\
         \x20 --json               emit the report as JSON\n\
         \x20 --trace PATH         write a JSONL decision trace of the contended run\n\
         \x20 --trace-alone PREFIX also trace each foreground job's run-alone\n\
         \x20                      baseline to PREFIX-<job>.jsonl\n\
         \x20 --metrics            print aggregated scheduling metrics after the run\n\
         \x20                      (sorted-key JSON with hold-time percentiles under --json)\n\
         \x20 --counters           print the deterministic work-counter report after\n\
         \x20                      the run (sorted-key JSON under --json)\n\
         \x20 --profile            time scheduler phases and print the wall-clock\n\
         \x20                      span tree to stderr\n\
         \x20 --progress           stderr progress heartbeat during the run\n\
         \n\
         explain flags:\n\
         \x20 TRACE                the contended-run JSONL trace to analyze\n\
         \x20 --alone PATH         a run-alone baseline trace (repeatable); adds\n\
         \x20                      slowdown attribution for that job\n\
         \x20 --json               emit the report as sorted-key JSON\n\
         \x20 --width N            gantt width in columns (default 72)\n\
         \n\
         check flags:\n\
         \x20 TRACE                a JSONL decision trace to replay through the\n\
         \x20                      invariant checker (exit 1 on violations)\n\
         \x20 --explore            instead, exhaustively explore every offer/\n\
         \x20                      finish/crash/restore interleaving of a small\n\
         \x20                      configuration against the real scheduler\n\
         \x20 --nodes N            explore: node count (default 2)\n\
         \x20 --slots N            explore: slots per node (default 1)\n\
         \x20 --fg-tasks N         explore: foreground tasks per stage (default 1)\n\
         \x20 --bg-tasks N         explore: background tasks (default 2)\n\
         \x20 --crashes N          explore: crash budget (default 1)\n\
         \x20 --max-steps N        explore: depth bound (default 12)\n\
         \x20 --json               emit the report as sorted-key JSON\n\
         \n\
         SPEC: kmeans|svm|pagerank[:par=8,iters=4,prio=10,...]\n\
         \x20     sql[:q=3|all,par=32,prio=10] | pipeline[:phases=3,par=8,alpha=1.6]\n\
         \x20     maponly[:tasks=64,secs=30] | google[:jobs=100,factor=1,seed=7]"
    );
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let options = RunOptions::parse(args).map_err(|e| e.to_string())?;
    ssr_sim::runner::set_worker_override(options.jobs);
    let mut foreground = Vec::new();
    for s in &options.foreground {
        foreground.extend(spec::parse(s).map_err(|e| e.to_string())?);
    }
    let mut background = Vec::new();
    for s in &options.background {
        background.extend(spec::parse(s).map_err(|e| e.to_string())?);
    }
    if foreground.is_empty() && background.is_empty() {
        return Err("nothing to run: give at least one --fg or --bg".to_owned());
    }

    let mut sim_config = SimConfig::new(options.cluster)
        .with_locality(options.locality.clone())
        .with_seed(options.seed)
        .with_faults(options.faults.clone());
    if let Some(s) = options.speculation {
        sim_config = sim_config.with_speculation(s);
    }

    if foreground.is_empty() {
        // No measured jobs: run the mix once and print the report.
        let mut sim = Simulation::new(
            sim_config,
            options.policy.clone(),
            options.order,
            background,
        );
        if let Some(sink) = make_sink(&options) {
            sim = sim.with_trace_sink(sink);
        }
        if let Some(profiler) = make_profiler(&options) {
            sim = sim.with_span_profiler(profiler);
        }
        if options.progress {
            sim = sim.with_progress_heartbeat(PROGRESS_EVERY_EVENTS);
        }
        let (report, sink, profiler) = sim.run_instrumented();
        print_report_summary(&report, options.json)?;
        emit_trace_outputs(&options, sink)?;
        emit_perf_outputs(&options, &report.counters, profiler);
        return Ok(());
    }

    let mut experiment = Experiment::new(sim_config, options.policy.clone(), options.order)
        .foreground(foreground)
        .background(background);
    if options.progress {
        experiment = experiment.with_progress_heartbeat(PROGRESS_EVERY_EVENTS);
    }
    let (outcome, sink, alone_traces, profiler) = experiment.run_instrumented(
        make_sink(&options),
        make_profiler(&options),
        options.trace_alone.is_some(),
    );
    if let Some(prefix) = &options.trace_alone {
        for alone in &alone_traces {
            let path = format!("{prefix}-{}.jsonl", alone.job);
            std::fs::write(&path, &alone.jsonl)
                .map_err(|e| format!("cannot write alone trace {path}: {e}"))?;
        }
    }
    if options.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&outcome).map_err(|e| e.to_string())?
        );
        emit_trace_outputs(&options, sink)?;
        emit_perf_outputs(&options, &outcome.counters, profiler);
        return Ok(());
    }
    println!("policy: {}   order: {:?}   seed: {}", outcome.policy, options.order, options.seed);
    println!("{:<24} {:>12} {:>14} {:>10}", "foreground job", "alone (s)", "contended (s)", "slowdown");
    for row in &outcome.foreground {
        println!(
            "{:<24} {:>12.2} {:>14.2} {:>9.2}x",
            row.name, row.alone_jct_secs, row.contended_jct_secs, row.slowdown
        );
    }
    println!(
        "\nmean slowdown {:.3}x   utilization {:.1}%   reserved-idle {:.0} slot-s   \
         copies {}   kills {}",
        outcome.mean_slowdown(),
        outcome.contended.utilization() * 100.0,
        outcome.contended.reserved_idle_slot_secs,
        outcome.contended.speculative_copies,
        outcome.contended.kills,
    );
    emit_trace_outputs(&options, sink)?;
    emit_perf_outputs(&options, &outcome.counters, profiler);
    Ok(())
}

/// Heartbeat period for `--progress`, in processed events.
const PROGRESS_EVERY_EVENTS: u64 = 10_000;

/// `ssr-cli bench <subcommand>`: benchmark-snapshot tooling.
fn cmd_bench(args: &[String]) -> Result<(), String> {
    let Some((sub, rest)) = args.split_first() else {
        return Err("bench needs a subcommand: diff (see ssr-cli --help)".to_owned());
    };
    match sub.as_str() {
        "diff" => bench::cmd_diff(rest),
        other => Err(format!("unknown bench subcommand {other}; known: diff")),
    }
}

/// Builds the wall-clock span profiler requested by `--profile`, if any.
fn make_profiler(options: &RunOptions) -> Option<Box<SpanProfiler>> {
    options.profile.then(|| Box::new(SpanProfiler::new(Box::new(WallClock::start()))))
}

/// Prints the work-counter report (stdout) and the span tree (stderr),
/// as requested. Counters are the deterministic plane and may join
/// byte-compared stdout; spans are wall-clock and never touch stdout.
fn emit_perf_outputs(
    options: &RunOptions,
    counters: &WorkCounters,
    profiler: Option<Box<SpanProfiler>>,
) {
    if options.counters {
        if options.json {
            println!("{}", counters.render_json());
        } else {
            print!("{}", counters.render_text());
        }
    }
    if let Some(profiler) = profiler {
        eprint!("{}", profiler.report().render_text());
    }
}

/// `ssr-cli explain TRACE [--alone PATH]... [--json] [--width N]`:
/// reconstructs a traced run and, given alone baselines, attributes each
/// foreground job's slowdown. Output is byte-identical across invocations.
fn cmd_explain(args: &[String]) -> Result<(), String> {
    let mut trace_path: Option<&String> = None;
    let mut alone_paths: Vec<&String> = Vec::new();
    let mut json = false;
    let mut width = 72usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--alone" => {
                alone_paths.push(it.next().ok_or("--alone requires a path")?);
            }
            "--json" => json = true,
            "--width" => {
                width = it
                    .next()
                    .ok_or("--width requires a value")?
                    .parse()
                    .map_err(|_| "--width wants a column count".to_owned())?;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown explain flag {other}"));
            }
            _ if trace_path.is_none() => trace_path = Some(arg),
            other => return Err(format!("unexpected extra argument {other}")),
        }
    }
    let trace_path = trace_path.ok_or("explain needs a trace file (see ssr-cli --help)")?;
    let read = |path: &String| -> Result<ssr_explain::Trace, String> {
        let doc = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        ssr_explain::parse_trace(&doc).map_err(|e| format!("{path}: {e}"))
    };
    let contended = read(trace_path)?;
    let alone = alone_paths.iter().map(|p| read(p)).collect::<Result<Vec<_>, _>>()?;
    let report = ssr_explain::explain(&contended, &alone).map_err(|e| e.to_string())?;
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text(width));
    }
    Ok(())
}

/// `ssr-cli check TRACE [--json]` replays a JSONL decision trace through
/// the reservation-protocol invariant checker; `ssr-cli check --explore`
/// model-checks the real scheduler over every offer/finish/crash/restore
/// interleaving of a small configuration. Both render byte-identical
/// output across invocations and exit nonzero on violations.
fn cmd_check(args: &[String]) -> Result<(), String> {
    let mut trace_path: Option<&String> = None;
    let mut explore = false;
    let mut json = false;
    let mut cfg = ssr_check::ExploreConfig::small();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut num = |name: &str| -> Result<u32, String> {
            let v = it.next().ok_or_else(|| format!("{name} requires a value"))?;
            v.parse().map_err(|_| format!("{name} wants a count, got {v}"))
        };
        match arg.as_str() {
            "--explore" => explore = true,
            "--json" => json = true,
            "--nodes" => cfg.nodes = num("--nodes")?,
            "--slots" => cfg.slots_per_node = num("--slots")?,
            "--fg-tasks" => cfg.fg_tasks = num("--fg-tasks")?,
            "--bg-tasks" => cfg.bg_tasks = num("--bg-tasks")?,
            "--crashes" => cfg.crash_budget = num("--crashes")?,
            "--max-steps" => cfg.max_steps = num("--max-steps")? as usize,
            other if other.starts_with('-') => {
                return Err(format!("unknown check flag {other}"));
            }
            _ if trace_path.is_none() => trace_path = Some(arg),
            other => return Err(format!("unexpected extra argument {other}")),
        }
    }
    if explore {
        if trace_path.is_some() {
            return Err("check --explore takes no trace file".to_owned());
        }
        let report = ssr_check::explore(&cfg);
        if json {
            print!("{}", report.render_json());
        } else {
            print!("{}", report.render_text());
        }
        if !report.is_clean() {
            return Err(format!(
                "{} invariant violation(s) found by exploration",
                report.violations.len()
            ));
        }
        return Ok(());
    }
    let path = trace_path.ok_or("check needs a trace file or --explore (see ssr-cli --help)")?;
    let doc = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let trace = ssr_explain::parse_trace(&doc).map_err(|e| format!("{path}: {e}"))?;
    let report = ssr_check::InvariantChecker::new().check_all(&trace.events);
    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if !report.is_clean() {
        return Err(format!("{} invariant violation(s) in {path}", report.violations.len()));
    }
    Ok(())
}

/// Builds the trace sink requested by `--trace` / `--metrics`, if any.
fn make_sink(options: &RunOptions) -> Option<Box<dyn TraceSink>> {
    if options.trace.is_none() && !options.metrics {
        return None;
    }
    Some(Box::new(SplitSink {
        jsonl: options.trace.as_ref().map(|_| JsonlSink::new()),
        metrics: options.metrics.then(MetricsSink::new),
    }))
}

/// Writes the JSONL trace to disk and prints the metrics report, as
/// requested. No-op when tracing was not enabled.
fn emit_trace_outputs(
    options: &RunOptions,
    sink: Option<Box<dyn TraceSink>>,
) -> Result<(), String> {
    let Some(sink) = sink else { return Ok(()) };
    let split = sink
        .into_any()
        .downcast::<SplitSink>()
        .map_err(|_| "internal: trace sink is not a SplitSink".to_owned())?;
    if let (Some(path), Some(jsonl)) = (&options.trace, split.jsonl) {
        std::fs::write(path, jsonl.finish())
            .map_err(|e| format!("cannot write trace {path}: {e}"))?;
    }
    if let Some(metrics) = split.metrics {
        let report = metrics.into_report();
        if options.json {
            println!("{}", report.render_json());
        } else {
            println!("{}", report.render_text());
        }
    }
    Ok(())
}

fn print_report_summary(report: &ssr_sim::SimReport, json: bool) -> Result<(), String> {
    if json {
        println!("{}", serde_json::to_string_pretty(report).map_err(|e| e.to_string())?);
        return Ok(());
    }
    println!(
        "{} jobs, completed: {}, makespan {:.1}s, utilization {:.1}%",
        report.jobs.len(),
        report.completed,
        report.makespan_secs,
        report.utilization() * 100.0
    );
    Ok(())
}

fn take_flag(args: &[String], name: &str) -> Result<Option<f64>, String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            let v = it.next().ok_or_else(|| format!("{name} requires a value"))?;
            return v.parse().map(Some).map_err(|_| format!("bad value for {name}: {v}"));
        }
    }
    Ok(None)
}

fn cmd_tradeoff(args: &[String]) -> Result<(), String> {
    let alpha = take_flag(args, "--alpha")?.unwrap_or(1.6);
    let n = take_flag(args, "--n")?.unwrap_or(20.0) as u32;
    let points = take_flag(args, "--points")?.unwrap_or(11.0) as usize;
    let curve = ssr_analytics::tradeoff::tradeoff_curve(alpha, n, points)
        .map_err(|e| e.to_string())?;
    println!("P        E[U] lower bound   (alpha={alpha}, N={n})");
    for p in curve {
        println!("{:<8.3} {:.4}", p.isolation, p.utilization);
    }
    Ok(())
}

fn cmd_deadline(args: &[String]) -> Result<(), String> {
    let p = take_flag(args, "--p")?.ok_or("--p required")?;
    let tm = take_flag(args, "--tm")?.ok_or("--tm required")?;
    let alpha = take_flag(args, "--alpha")?.unwrap_or(1.6);
    let n = take_flag(args, "--n")?.ok_or("--n required")? as u32;
    let d = ssr_analytics::tradeoff::deadline_for_isolation(p, tm, alpha, n)
        .map_err(|e| e.to_string())?;
    let u = ssr_analytics::tradeoff::utilization_bound_for_isolation(p, alpha, n)
        .map_err(|e| e.to_string())?;
    println!(
        "isolation P={p}: reserve each slot for D = {d:.3}s after phase start \
         (t_m={tm}, alpha={alpha}, N={n}); utilization lower bound {u:.3}"
    );
    Ok(())
}
