//! `ssr-cli bench diff` — compare two `BENCH_*.json` snapshots.
//!
//! The comparator reads the benchmark harness's JSON output format
//! (`{"results": [{"name", "per_iter_ns", "iters"}, ...]}`), joins the
//! two documents by row name, and renders one verdict per row:
//!
//! * `ok` — |delta| within the threshold,
//! * `REGRESSION` — new slower than old beyond the threshold,
//! * `improvement` — new faster than old beyond the threshold,
//! * `added` / `removed` — the row exists in only one snapshot.
//!
//! The rendered table is a pure function of the two inputs (rows sorted
//! by name), so CI can diff it too. Regressions make the command exit
//! nonzero; added/removed rows do not — baselines legitimately grow.

use serde::Value;

/// One benchmark measurement parsed from a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// The benchmark's full name (e.g. `scheduler/offer_round/4000`).
    pub name: String,
    /// Nanoseconds per iteration.
    pub per_iter_ns: f64,
}

/// The verdict for one joined row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within the threshold.
    Ok,
    /// Slower beyond the threshold — fails the gate.
    Regression,
    /// Faster beyond the threshold.
    Improvement,
    /// Present only in the new snapshot.
    Added,
    /// Present only in the old snapshot.
    Removed,
}

impl Verdict {
    fn label(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Regression => "REGRESSION",
            Verdict::Improvement => "improvement",
            Verdict::Added => "added",
            Verdict::Removed => "removed",
        }
    }
}

/// One row of the rendered diff.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Benchmark name.
    pub name: String,
    /// Old nanoseconds per iteration, if the row existed before.
    pub old_ns: Option<f64>,
    /// New nanoseconds per iteration, if the row still exists.
    pub new_ns: Option<f64>,
    /// `(new - old) / old` in percent, when both sides exist.
    pub delta_pct: Option<f64>,
    /// The row's verdict at the configured threshold.
    pub verdict: Verdict,
}

/// Parses one `BENCH_*.json` document into rows.
///
/// # Errors
///
/// Returns a message naming `label` when the document is not valid JSON
/// or misses the expected `results[].name/per_iter_ns` shape.
pub fn parse_snapshot(doc: &str, label: &str) -> Result<Vec<BenchRow>, String> {
    let root = serde_json::from_str(doc).map_err(|e| format!("{label}: {e}"))?;
    let Value::Object(fields) = &root else {
        return Err(format!("{label}: expected a JSON object at the top level"));
    };
    let results = fields
        .iter()
        .find(|(k, _)| k == "results")
        .map(|(_, v)| v)
        .ok_or_else(|| format!("{label}: missing \"results\" array"))?;
    let Value::Array(items) = results else {
        return Err(format!("{label}: \"results\" is not an array"));
    };
    let mut rows = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let Value::Object(entry) = item else {
            return Err(format!("{label}: results[{i}] is not an object"));
        };
        let get = |key: &str| entry.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let name = match get("name") {
            Some(Value::Str(s)) => s.clone(),
            _ => return Err(format!("{label}: results[{i}] misses a string \"name\"")),
        };
        let per_iter_ns = match get("per_iter_ns") {
            Some(Value::Float(f)) => *f,
            Some(Value::UInt(u)) => *u as f64,
            Some(Value::Int(v)) => *v as f64,
            _ => return Err(format!("{label}: results[{i}] misses a numeric \"per_iter_ns\"")),
        };
        rows.push(BenchRow { name, per_iter_ns });
    }
    Ok(rows)
}

/// Joins two snapshots by name and classifies every row at
/// `threshold_pct`. Rows are returned sorted by name; `only` restricts
/// the join to names containing that substring.
pub fn diff_rows(
    old: &[BenchRow],
    new: &[BenchRow],
    threshold_pct: f64,
    only: Option<&str>,
) -> Vec<DiffRow> {
    let keep = |name: &str| only.is_none_or(|o| name.contains(o));
    let mut names: Vec<&str> = old
        .iter()
        .chain(new)
        .map(|r| r.name.as_str())
        .filter(|n| keep(n))
        .collect();
    names.sort_unstable();
    names.dedup();
    let find = |rows: &[BenchRow], name: &str| {
        rows.iter().find(|r| r.name == name).map(|r| r.per_iter_ns)
    };
    names
        .into_iter()
        .map(|name| {
            let old_ns = find(old, name);
            let new_ns = find(new, name);
            let (delta_pct, verdict) = match (old_ns, new_ns) {
                (Some(o), Some(n)) if o > 0.0 => {
                    let delta = (n - o) / o * 100.0;
                    let verdict = if delta > threshold_pct {
                        Verdict::Regression
                    } else if delta < -threshold_pct {
                        Verdict::Improvement
                    } else {
                        Verdict::Ok
                    };
                    (Some(delta), verdict)
                }
                (Some(_), Some(_)) => (None, Verdict::Ok),
                (None, Some(_)) => (None, Verdict::Added),
                (Some(_), None) => (None, Verdict::Removed),
                (None, None) => unreachable!("name came from one of the snapshots"),
            };
            DiffRow { name: name.to_owned(), old_ns, new_ns, delta_pct, verdict }
        })
        .collect()
}

/// Renders the diff as an aligned text table.
pub fn render(rows: &[DiffRow], threshold_pct: f64) -> String {
    let width = rows.iter().map(|r| r.name.len()).max().unwrap_or(4).max(4);
    let mut out = format!("bench diff (threshold +/-{threshold_pct}%)\n");
    out.push_str(&format!(
        "  {:<width$} {:>14} {:>14} {:>9}  verdict\n",
        "name", "old(ns)", "new(ns)", "delta"
    ));
    let ns = |v: Option<f64>| v.map_or("-".to_owned(), |x| format!("{x:.1}"));
    for r in rows {
        let delta = r.delta_pct.map_or("-".to_owned(), |d| format!("{d:+.1}%"));
        out.push_str(&format!(
            "  {:<width$} {:>14} {:>14} {:>9}  {}\n",
            r.name,
            ns(r.old_ns),
            ns(r.new_ns),
            delta,
            r.verdict.label(),
        ));
    }
    out
}

/// `ssr-cli bench diff OLD.json NEW.json [--threshold PCT] [--only SUBSTR]`.
///
/// Prints the joined verdict table and errors (exit 1) when any row
/// regressed beyond the threshold.
///
/// # Errors
///
/// Returns a message on unreadable or malformed snapshots, bad flags, or
/// when the gate fails.
pub fn cmd_diff(args: &[String]) -> Result<(), String> {
    let mut paths: Vec<&String> = Vec::new();
    let mut threshold = 20.0f64;
    let mut only: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                let v = it.next().ok_or("--threshold requires a value")?;
                threshold =
                    v.parse().map_err(|_| format!("--threshold wants a percentage, got {v}"))?;
                if threshold.is_nan() || threshold < 0.0 {
                    return Err("--threshold wants a non-negative percentage".to_owned());
                }
            }
            "--only" => {
                only = Some(it.next().ok_or("--only requires a substring")?.clone());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown bench diff flag {other}"));
            }
            _ => paths.push(arg),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        return Err("bench diff wants exactly two snapshots: OLD.json NEW.json".to_owned());
    };
    let read = |path: &String| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    };
    let old = parse_snapshot(&read(old_path)?, old_path)?;
    let new = parse_snapshot(&read(new_path)?, new_path)?;
    let rows = diff_rows(&old, &new, threshold, only.as_deref());
    print!("{}", render(&rows, threshold));
    let regressions = rows.iter().filter(|r| r.verdict == Verdict::Regression).count();
    if regressions > 0 {
        return Err(format!(
            "{regressions} benchmark(s) regressed beyond {threshold}% ({old_path} -> {new_path})"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(rows: &[(&str, f64)]) -> Vec<BenchRow> {
        rows.iter().map(|(n, ns)| BenchRow { name: (*n).to_owned(), per_iter_ns: *ns }).collect()
    }

    #[test]
    fn parses_the_checked_in_format() {
        let doc = r#"{
  "results": [
    {"name": "scheduler/offer_round/100", "per_iter_ns": 39001.9, "iters": 5203},
    {"name": "event_queue/push_pop_10k_fresh", "per_iter_ns": 1908233.9, "iters": 105}
  ]
}"#;
        let rows = parse_snapshot(doc, "test").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "scheduler/offer_round/100");
        assert!((rows[0].per_iter_ns - 39001.9).abs() < 1e-9);
    }

    #[test]
    fn malformed_snapshots_are_named_in_the_error() {
        assert!(parse_snapshot("[]", "x.json").unwrap_err().contains("x.json"));
        assert!(parse_snapshot("{}", "x.json").unwrap_err().contains("results"));
        let bad = r#"{"results": [{"per_iter_ns": 1.0}]}"#;
        assert!(parse_snapshot(bad, "x.json").unwrap_err().contains("name"));
    }

    #[test]
    fn classifies_by_threshold() {
        let old = snapshot(&[("a", 100.0), ("b", 100.0), ("c", 100.0), ("gone", 5.0)]);
        let new = snapshot(&[("a", 110.0), ("b", 130.0), ("c", 60.0), ("fresh", 5.0)]);
        let rows = diff_rows(&old, &new, 20.0, None);
        let by_name = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        assert_eq!(by_name("a").verdict, Verdict::Ok);
        assert_eq!(by_name("b").verdict, Verdict::Regression);
        assert_eq!(by_name("c").verdict, Verdict::Improvement);
        assert_eq!(by_name("fresh").verdict, Verdict::Added);
        assert_eq!(by_name("gone").verdict, Verdict::Removed);
        assert!((by_name("b").delta_pct.unwrap() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn only_filter_restricts_the_join() {
        let old = snapshot(&[("scheduler/offer_round/100", 1.0), ("sim/grid", 1.0)]);
        let new = snapshot(&[("scheduler/offer_round/100", 1.0), ("sim/grid", 99.0)]);
        let rows = diff_rows(&old, &new, 20.0, Some("offer_round"));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "scheduler/offer_round/100");
    }

    #[test]
    fn rows_come_out_sorted_and_render_is_stable() {
        let old = snapshot(&[("z", 10.0), ("a", 10.0)]);
        let new = snapshot(&[("m", 10.0), ("a", 10.0)]);
        let rows = diff_rows(&old, &new, 20.0, None);
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["a", "m", "z"]);
        let text = render(&rows, 20.0);
        assert_eq!(text, render(&diff_rows(&old, &new, 20.0, None), 20.0));
        assert!(text.contains("bench diff (threshold +/-20%)"), "{text}");
        assert!(text.lines().count() == 2 + rows.len());
    }

    #[test]
    fn zero_old_time_never_divides() {
        let old = snapshot(&[("a", 0.0)]);
        let new = snapshot(&[("a", 5.0)]);
        let rows = diff_rows(&old, &new, 20.0, None);
        assert_eq!(rows[0].verdict, Verdict::Ok);
        assert_eq!(rows[0].delta_pct, None);
    }
}
