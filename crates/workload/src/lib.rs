//! # ssr-workload
//!
//! Synthetic workload generators standing in for the paper's traces and
//! benchmarks (see DESIGN.md for the substitution rationale):
//!
//! * [`mllib`] — SparkBench-like iterative applications (KMeans, SVM,
//!   PageRank): multi-phase pipelines with a *stable* degree of
//!   parallelism, the foreground jobs of the cluster experiments,
//! * [`sql`] — TPC-DS-like SQL queries: multi-stage DAGs whose degree of
//!   parallelism *changes across phases* (scan → join → aggregate), the
//!   property that stresses pre-reservation (Fig. 16),
//! * [`google`] — Google-trace-like background jobs: Poisson arrivals,
//!   heavy-tailed task counts and Pareto task durations, matching the
//!   published statistics of the trace the paper samples,
//! * [`synthetic`] — small parametric shapes (Pareto pipelines, map-only
//!   jobs) used by the figure harnesses and tests.
//!
//! All generators are deterministic functions of a [`SimRng`] seed.
//!
//! [`SimRng`]: ssr_simcore::rng::SimRng
//!
//! # Example
//!
//! ```
//! use ssr_workload::{mllib, MllibParams};
//! use ssr_dag::Priority;
//!
//! let params = MllibParams::small().with_priority(Priority::new(10));
//! let kmeans = mllib::kmeans(&params)?;
//! assert!(kmeans.stages().len() > 2); // init + iterations
//! # Ok::<(), ssr_dag::DagError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod google;
pub mod mllib;
pub mod sql;
pub mod synthetic;

pub use google::{GoogleTraceConfig, GoogleTraceGenerator};
pub use mllib::MllibParams;
pub use sql::SqlParams;
