//! TPC-DS-like SQL query workloads.
//!
//! The paper's simulation runs "SQL traces consisting of 20 queries
//! provided by the TPC-DS benchmark" (§VI-B) in the foreground. The
//! property that matters — and the reason SQL jobs are "more susceptible
//! to be dragged down" — is that their **degree of parallelism changes
//! across phases**: wide scans feed narrower shuffles, joins and
//! aggregations, so the reserved upstream slots cannot cover a wider
//! downstream phase without pre-reservation (Algorithm 1, Case 2.3).
//!
//! The 20 templates below are deterministic structural sketches of TPC-DS
//! query plans: 3–7 stages, fan-in joins, and per-stage parallelism
//! varying by up to ~8× in both directions.

use ssr_dag::{DagError, JobSpec, JobSpecBuilder, Priority};
use ssr_simcore::dist::lognormal_mean_cv;
use ssr_simcore::SimTime;

/// Number of distinct query templates (matching the paper's 20 TPC-DS
/// queries).
pub const QUERY_COUNT: usize = 20;

/// Parameters for the SQL query templates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SqlParams {
    /// Parallelism of the widest (scan) stages; other stages scale off it.
    pub base_parallelism: u32,
    /// Mean intrinsic task duration of a scan task, seconds.
    pub mean_task_secs: f64,
    /// Scheduling priority.
    pub priority: Priority,
    /// Submission time.
    pub arrival: SimTime,
    /// Multiplier applied to every task duration.
    pub runtime_factor: f64,
}

impl SqlParams {
    /// A medium configuration: 32-task scans.
    pub fn medium() -> Self {
        SqlParams {
            base_parallelism: 32,
            mean_task_secs: 2.0,
            priority: Priority::default(),
            arrival: SimTime::ZERO,
            runtime_factor: 1.0,
        }
    }

    /// Sets the widest-stage parallelism.
    pub fn with_base_parallelism(mut self, parallelism: u32) -> Self {
        self.base_parallelism = parallelism;
        self
    }

    /// Sets the scheduling priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the submission time.
    pub fn with_arrival(mut self, arrival: SimTime) -> Self {
        self.arrival = arrival;
        self
    }

    /// Multiplies every task duration.
    pub fn with_runtime_factor(mut self, factor: f64) -> Self {
        self.runtime_factor = factor;
        self
    }
}

/// One stage of a query sketch: (name, parallelism fraction of base,
/// mean-duration fraction, skew cv).
type StageSketch = (&'static str, f64, f64, f64);

/// The structural sketches. Fractions below 1 shrink parallelism
/// downstream; above 1 widen it (exercising pre-reservation).
fn sketch(query: usize) -> (&'static [StageSketch], &'static [(u32, u32)]) {
    // A few reusable plan shapes; queries map onto them with different
    // width profiles. Edges reference stage indices within the sketch.
    const LINEAR_NARROWING: &[StageSketch] = &[
        ("scan", 1.0, 1.0, 0.6),
        ("filter", 0.5, 0.5, 0.4),
        ("agg", 0.25, 0.8, 0.4),
    ];
    const LINEAR_NARROWING_EDGES: &[(u32, u32)] = &[(0, 1), (1, 2)];

    const LINEAR_WIDENING: &[StageSketch] = &[
        ("scan", 0.5, 1.0, 0.6),
        ("explode", 1.0, 0.7, 0.5),
        ("shuffle", 2.0, 0.5, 0.5),
        ("agg", 0.5, 0.6, 0.4),
    ];
    const LINEAR_WIDENING_EDGES: &[(u32, u32)] = &[(0, 1), (1, 2), (2, 3)];

    const JOIN_DIAMOND: &[StageSketch] = &[
        ("scan-facts", 1.0, 1.2, 0.7),
        ("scan-dims", 0.25, 0.6, 0.4),
        ("join", 0.75, 1.0, 0.6),
        ("agg", 0.25, 0.7, 0.4),
    ];
    const JOIN_DIAMOND_EDGES: &[(u32, u32)] = &[(0, 2), (1, 2), (2, 3)];

    const DEEP_PIPELINE: &[StageSketch] = &[
        ("scan", 1.0, 1.0, 0.6),
        ("join-1", 0.5, 0.9, 0.5),
        ("shuffle", 1.5, 0.6, 0.5),
        ("join-2", 0.75, 0.8, 0.5),
        ("window", 0.5, 0.7, 0.4),
        ("sort", 0.25, 0.5, 0.3),
        ("limit", 0.125, 0.3, 0.2),
    ];
    const DEEP_PIPELINE_EDGES: &[(u32, u32)] =
        &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)];

    const WIDE_UNION: &[StageSketch] = &[
        ("scan-a", 0.5, 1.0, 0.6),
        ("scan-b", 0.5, 1.0, 0.6),
        ("union-shuffle", 1.5, 0.6, 0.5),
        ("dedup", 0.75, 0.6, 0.4),
        ("agg", 0.25, 0.5, 0.3),
    ];
    const WIDE_UNION_EDGES: &[(u32, u32)] = &[(0, 2), (1, 2), (2, 3), (3, 4)];

    match query % 5 {
        0 => (LINEAR_NARROWING, LINEAR_NARROWING_EDGES),
        1 => (LINEAR_WIDENING, LINEAR_WIDENING_EDGES),
        2 => (JOIN_DIAMOND, JOIN_DIAMOND_EDGES),
        3 => (DEEP_PIPELINE, DEEP_PIPELINE_EDGES),
        _ => (WIDE_UNION, WIDE_UNION_EDGES),
    }
}

/// Builds query template `query` (0-based, `query < QUERY_COUNT`).
///
/// Templates with the same plan shape differ in width: the effective base
/// parallelism is scaled by `1 + query / 5`.
///
/// # Errors
///
/// Returns [`DagError`] if the parameters produce an invalid DAG.
///
/// # Panics
///
/// Panics if `query >= QUERY_COUNT`.
pub fn query(query: usize, params: &SqlParams) -> Result<JobSpec, DagError> {
    assert!(query < QUERY_COUNT, "query index {query} out of range (< {QUERY_COUNT})");
    let (stages, edges) = sketch(query);
    let width_scale = 1.0 + (query / 5) as f64 * 0.5;
    let mut b = JobSpecBuilder::new(format!("tpcds-q{:02}", query + 1))
        .priority(params.priority)
        .arrival(params.arrival);
    for &(name, width, mean, cv) in stages {
        let parallelism =
            ((params.base_parallelism as f64 * width * width_scale).round() as u32).max(1);
        let dist = lognormal_mean_cv(
            params.mean_task_secs * mean * params.runtime_factor,
            cv,
        );
        b = b.stage(name, parallelism, dist);
    }
    for &(u, d) in edges {
        b = b.edge(u, d);
    }
    b.build()
}

/// All 20 query templates.
///
/// # Errors
///
/// Returns [`DagError`] if any template fails to build.
pub fn all_queries(params: &SqlParams) -> Result<Vec<JobSpec>, DagError> {
    (0..QUERY_COUNT).map(|q| query(q, params)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_queries_build() {
        let qs = all_queries(&SqlParams::medium()).unwrap();
        assert_eq!(qs.len(), QUERY_COUNT);
        for (i, q) in qs.iter().enumerate() {
            assert_eq!(q.name(), format!("tpcds-q{:02}", i + 1));
            assert!(q.stages().len() >= 3, "{} too shallow", q.name());
        }
    }

    #[test]
    fn parallelism_changes_across_phases() {
        // The defining property: at least one barrier of every query has
        // m != n.
        for q in all_queries(&SqlParams::medium()).unwrap() {
            let mut changes = false;
            for s in q.iter_stage_ids() {
                if q.is_final(s) {
                    continue;
                }
                let m = u64::from(q.stage(s).parallelism());
                if q.downstream_parallelism(s) != Some(m) {
                    changes = true;
                }
            }
            assert!(changes, "{} has constant parallelism", q.name());
        }
    }

    #[test]
    fn some_queries_widen_downstream() {
        // Pre-reservation (Case 2.3) must be exercised: some barrier has
        // n > m.
        let mut widening = 0;
        for q in all_queries(&SqlParams::medium()).unwrap() {
            for s in q.iter_stage_ids() {
                if q.is_final(s) {
                    continue;
                }
                let m = u64::from(q.stage(s).parallelism());
                if q.downstream_parallelism(s).is_some_and(|n| n > m) {
                    widening += 1;
                }
            }
        }
        assert!(widening >= 8, "only {widening} widening barriers across the suite");
    }

    #[test]
    fn diamond_queries_have_fan_in() {
        let q2 = query(2, &SqlParams::medium()).unwrap();
        let join = ssr_dag::StageId::new(2);
        assert_eq!(q2.parents(join).len(), 2);
    }

    #[test]
    fn width_scale_differentiates_query_groups() {
        let params = SqlParams::medium();
        let narrow = query(0, &params).unwrap(); // scale 1.0
        let wide = query(15, &params).unwrap(); // same shape, scale 2.5
        assert!(wide.total_tasks() > narrow.total_tasks());
    }

    #[test]
    fn params_apply() {
        let params = SqlParams::medium()
            .with_base_parallelism(8)
            .with_priority(Priority::new(3))
            .with_arrival(SimTime::from_secs(7))
            .with_runtime_factor(2.0);
        let q = query(0, &params).unwrap();
        assert_eq!(q.priority(), Priority::new(3));
        assert_eq!(q.arrival(), SimTime::from_secs(7));
        assert_eq!(q.stages()[0].parallelism(), 8);
        // Minimum parallelism floor of 1 holds even for tiny bases.
        let tiny = query(3, &SqlParams::medium().with_base_parallelism(1)).unwrap();
        assert!(tiny.stages().iter().all(|s| s.parallelism() >= 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_query_panics() {
        let _ = query(QUERY_COUNT, &SqlParams::medium());
    }
}
