//! Small parametric workload shapes used by the figure harnesses.

use ssr_dag::{DagError, JobSpec, JobSpecBuilder, Priority};
use ssr_simcore::dist::{pareto, DynDistribution};
use ssr_simcore::SimTime;

/// A linear pipeline of `phases` phases, each with `parallelism` tasks
/// drawn from Pareto(`scale_secs`, `shape`) — the canonical workload of
/// the paper's analytical sections.
///
/// # Errors
///
/// Returns [`DagError`] if `phases` or `parallelism` is zero.
pub fn pareto_pipeline(
    name: impl Into<String>,
    phases: u32,
    parallelism: u32,
    scale_secs: f64,
    shape: f64,
    priority: Priority,
) -> Result<JobSpec, DagError> {
    if phases == 0 {
        return Err(DagError::Empty);
    }
    let mut b = JobSpecBuilder::new(name).priority(priority);
    for p in 0..phases {
        b = b.stage(format!("phase-{p}"), parallelism, pareto(scale_secs, shape));
    }
    b.chain().build()
}

/// A single-phase (map-only) job with `tasks` tasks — the "job-2" of the
/// paper's Fig. 13 fair-sharing experiment, and the shape of most
/// background batch jobs.
///
/// # Errors
///
/// Returns [`DagError`] if `tasks` is zero.
pub fn map_only(
    name: impl Into<String>,
    tasks: u32,
    duration: DynDistribution,
    priority: Priority,
) -> Result<JobSpec, DagError> {
    JobSpecBuilder::new(name).priority(priority).stage("map", tasks, duration).build()
}

/// A linear pipeline with explicit per-phase duration distributions.
///
/// # Errors
///
/// Returns [`DagError`] if `stages` is empty or any parallelism is zero.
pub fn pipeline_of(
    name: impl Into<String>,
    stages: &[(u32, DynDistribution)],
    priority: Priority,
    arrival: SimTime,
) -> Result<JobSpec, DagError> {
    let mut b = JobSpecBuilder::new(name).priority(priority).arrival(arrival);
    for (i, (parallelism, dist)) in stages.iter().enumerate() {
        b = b.stage(format!("phase-{i}"), *parallelism, dist.clone());
    }
    b.chain().build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_simcore::dist::constant;

    #[test]
    fn pareto_pipeline_structure() {
        let spec = pareto_pipeline("p", 3, 4, 1.0, 1.6, Priority::new(1)).unwrap();
        assert_eq!(spec.stages().len(), 3);
        assert_eq!(spec.depth(), 3);
        assert_eq!(spec.total_tasks(), 12);
        assert_eq!(spec.priority(), Priority::new(1));
        assert!(pareto_pipeline("p", 0, 4, 1.0, 1.6, Priority::new(1)).is_err());
    }

    #[test]
    fn map_only_is_single_phase() {
        let spec = map_only("m", 16, constant(2.0), Priority::default()).unwrap();
        assert_eq!(spec.stages().len(), 1);
        assert!(spec.is_final(ssr_dag::StageId::new(0)));
        assert!(map_only("m", 0, constant(2.0), Priority::default()).is_err());
    }

    #[test]
    fn pipeline_of_applies_per_stage_settings() {
        let spec = pipeline_of(
            "custom",
            &[(4, constant(1.0)), (2, constant(5.0))],
            Priority::new(2),
            SimTime::from_secs(3),
        )
        .unwrap();
        assert_eq!(spec.stages()[0].parallelism(), 4);
        assert_eq!(spec.stages()[1].parallelism(), 2);
        assert_eq!(spec.arrival(), SimTime::from_secs(3));
        assert!(pipeline_of("e", &[], Priority::default(), SimTime::ZERO).is_err());
    }
}
