//! Google-cluster-trace-like background workloads.
//!
//! The paper's background load is "100 synthesized jobs randomly sampled
//! from the Google cluster traces in a one-hour window" (cluster
//! deployment) and a mix of 8000 such jobs (simulation). We cannot ship
//! the trace, so this module synthesizes statistically similar load from
//! the published trace studies the paper cites:
//!
//! * job inter-arrival times are exponential (Poisson arrivals),
//! * task counts are heavy-tailed — most jobs are small, a few are huge
//!   (geometric-like body with a Pareto tail),
//! * task durations follow Pareto with shape ~1.6 (Facebook/Bing
//!   measurements cited in §IV-B.2),
//! * most jobs have 1–3 phases (batch jobs are shallow; the foreground
//!   workflow jobs are the deep ones).

use ssr_dag::{DagError, JobSpec, JobSpecBuilder, Priority};
use ssr_simcore::dist::{pareto, Distribution, Pareto};
use ssr_simcore::rng::SimRng;
use ssr_simcore::{SimDuration, SimTime};

/// Configuration of the background-trace synthesizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoogleTraceConfig {
    /// Number of jobs to synthesize.
    pub jobs: u32,
    /// Length of the arrival window.
    pub horizon: SimDuration,
    /// Median number of tasks per job.
    pub median_tasks: u32,
    /// Cap on tasks per job (keeps the heavy tail simulable).
    pub max_tasks: u32,
    /// Pareto scale of task durations, seconds (shortest tasks).
    pub duration_scale_secs: f64,
    /// Pareto shape of task durations (1.6 per the cited trace studies).
    pub duration_shape: f64,
    /// Probability that a job has a second phase; squared for a third.
    pub multi_phase_prob: f64,
    /// Priority assigned to every background job.
    pub priority: Priority,
    /// Multiplier on task durations (the "prolonged background" settings
    /// double this).
    pub runtime_factor: f64,
}

impl GoogleTraceConfig {
    /// The cluster-deployment setting: 100 jobs over one hour, runtimes
    /// scaled down 10× as in §II-B ("we scaled down the task runtime in
    /// traces by 10×").
    pub fn cluster_hour() -> Self {
        GoogleTraceConfig {
            jobs: 100,
            horizon: SimDuration::from_secs(3600),
            median_tasks: 10,
            max_tasks: 200,
            duration_scale_secs: 2.0,
            duration_shape: 1.6,
            multi_phase_prob: 0.3,
            priority: Priority::new(0),
            runtime_factor: 1.0,
        }
    }

    /// The large-scale simulation setting (§VI-B): thousands of jobs.
    pub fn simulation(jobs: u32, horizon: SimDuration) -> Self {
        GoogleTraceConfig { jobs, horizon, ..GoogleTraceConfig::cluster_hour() }
    }

    /// Doubles (or otherwise scales) the task runtimes — the paper's
    /// "prolonged background jobs" stress setting.
    pub fn with_runtime_factor(mut self, factor: f64) -> Self {
        self.runtime_factor = factor;
        self
    }

    /// Sets the background priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the number of jobs.
    pub fn with_jobs(mut self, jobs: u32) -> Self {
        self.jobs = jobs;
        self
    }
}

/// Deterministic generator of background job specs.
///
/// # Example
///
/// ```
/// use ssr_workload::GoogleTraceConfig;
/// use ssr_workload::google::GoogleTraceGenerator;
/// use ssr_simcore::rng::SimRng;
///
/// let mut rng = SimRng::seed_from_u64(1);
/// let jobs = GoogleTraceGenerator::new(GoogleTraceConfig::cluster_hour())
///     .generate(&mut rng)?;
/// assert_eq!(jobs.len(), 100);
/// # Ok::<(), ssr_dag::DagError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GoogleTraceGenerator {
    config: GoogleTraceConfig,
}

impl GoogleTraceGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: GoogleTraceConfig) -> Self {
        GoogleTraceGenerator { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &GoogleTraceConfig {
        &self.config
    }

    /// Synthesizes the job specs, sorted by arrival time.
    ///
    /// # Errors
    ///
    /// Returns [`DagError`] if a generated spec fails validation (cannot
    /// happen for a valid configuration; kept fallible for API honesty).
    pub fn generate(&self, rng: &mut SimRng) -> Result<Vec<JobSpec>, DagError> {
        let c = &self.config;
        let mut jobs = Vec::with_capacity(c.jobs as usize);
        for i in 0..c.jobs {
            // Uniform arrivals over the horizon are equivalent to ordered
            // Poisson arrival times conditioned on the count.
            let arrival = SimTime::ZERO
                + SimDuration::from_micros(rng.next_below(c.horizon.as_micros().max(1)));
            let tasks = self.sample_task_count(rng);
            let phases = self.sample_phase_count(rng);
            let dist = pareto(
                c.duration_scale_secs * c.runtime_factor,
                c.duration_shape,
            );
            let mut b = JobSpecBuilder::new(format!("bg-{i:05}"))
                .priority(c.priority)
                .arrival(arrival);
            for p in 0..phases {
                b = b.stage(format!("phase-{p}"), tasks, dist.clone());
            }
            jobs.push(b.chain().build()?);
        }
        jobs.sort_by_key(|j| (j.arrival(), j.name().to_owned()));
        Ok(jobs)
    }

    /// Heavy-tailed task count: Pareto with the configured median, capped.
    fn sample_task_count(&self, rng: &mut SimRng) -> u32 {
        // Pareto(median / 2^(1/alpha), alpha = 1.1) has the right median
        // and a heavy tail of large jobs.
        let alpha = 1.1;
        let scale = self.config.median_tasks as f64 / 2f64.powf(1.0 / alpha);
        let p = Pareto::new(scale.max(0.5), alpha).expect("valid task-count Pareto");
        (p.sample(rng).round() as u32).clamp(1, self.config.max_tasks)
    }

    fn sample_phase_count(&self, rng: &mut SimRng) -> u32 {
        let mut phases = 1;
        if rng.chance(self.config.multi_phase_prob) {
            phases += 1;
            if rng.chance(self.config.multi_phase_prob) {
                phases += 1;
            }
        }
        phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generate(seed: u64) -> Vec<JobSpec> {
        let mut rng = SimRng::seed_from_u64(seed);
        GoogleTraceGenerator::new(GoogleTraceConfig::cluster_hour())
            .generate(&mut rng)
            .unwrap()
    }

    #[test]
    fn generates_requested_job_count() {
        assert_eq!(generate(1).len(), 100);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(7);
        let b = generate(7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name(), y.name());
            assert_eq!(x.arrival(), y.arrival());
            assert_eq!(x.total_tasks(), y.total_tasks());
        }
        let c = generate(8);
        assert!(a.iter().zip(&c).any(|(x, y)| x.arrival() != y.arrival()));
    }

    #[test]
    fn arrivals_within_horizon_and_sorted() {
        let jobs = generate(2);
        let horizon = SimTime::ZERO + SimDuration::from_secs(3600);
        for w in jobs.windows(2) {
            assert!(w[0].arrival() <= w[1].arrival());
        }
        assert!(jobs.iter().all(|j| j.arrival() < horizon));
    }

    #[test]
    fn task_counts_are_heavy_tailed_but_capped() {
        let jobs = generate(3);
        let counts: Vec<u64> = jobs.iter().map(|j| j.stages()[0].parallelism() as u64).collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max <= 200);
        assert!(min >= 1);
        // Most jobs are small (the "smallest 90% of jobs" phenomenon).
        let small = counts.iter().filter(|&&c| c <= 30).count();
        assert!(small > counts.len() / 2, "only {small} small jobs");
        // But the tail exists.
        assert!(max > 50, "no large job in the tail (max {max})");
    }

    #[test]
    fn phase_counts_mostly_shallow() {
        let jobs = generate(4);
        let single = jobs.iter().filter(|j| j.stages().len() == 1).count();
        assert!(single > jobs.len() / 2);
        assert!(jobs.iter().all(|j| j.stages().len() <= 3));
    }

    #[test]
    fn runtime_factor_scales_durations() {
        let base = GoogleTraceConfig::cluster_hour();
        let doubled = base.with_runtime_factor(2.0);
        let mut rng = SimRng::seed_from_u64(5);
        let a = GoogleTraceGenerator::new(base).generate(&mut rng).unwrap();
        let mut rng = SimRng::seed_from_u64(5);
        let b = GoogleTraceGenerator::new(doubled).generate(&mut rng).unwrap();
        let ma = a[0].stages()[0].duration().mean().unwrap();
        let mb = b[0].stages()[0].duration().mean().unwrap();
        assert!((mb / ma - 2.0).abs() < 1e-9);
    }

    #[test]
    fn config_builders() {
        let c = GoogleTraceConfig::simulation(8000, SimDuration::from_secs(7200))
            .with_priority(Priority::new(-5))
            .with_jobs(50);
        assert_eq!(c.jobs, 50);
        assert_eq!(c.priority, Priority::new(-5));
        assert_eq!(c.horizon, SimDuration::from_secs(7200));
    }
}
