//! SparkBench-like iterative machine-learning and graph workloads.
//!
//! The paper's foreground jobs are KMeans, SVM and PageRank from
//! SparkBench (§II-B, §VI-A). What matters to the scheduler is their
//! *structure*: iterative pipelines of many dependent phases with a stable
//! degree of parallelism (the property that makes Algorithm 1's Case-1
//! approximation accurate) and moderately skewed task durations. The
//! templates below reproduce those structures with measured-trace-like
//! log-normal durations.

use ssr_dag::{DagError, JobSpec, JobSpecBuilder, Priority};
use ssr_simcore::dist::lognormal_mean_cv;
use ssr_simcore::SimTime;

/// Parameters shared by the MLlib-like templates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MllibParams {
    /// Degree of parallelism of every phase (the paper uses 8 in Fig. 1
    /// and 20 in Fig. 5).
    pub parallelism: u32,
    /// Number of algorithm iterations (each contributes 2 phases).
    pub iterations: u32,
    /// Mean intrinsic task duration, seconds.
    pub mean_task_secs: f64,
    /// Coefficient of variation of task durations (skew).
    pub cv: f64,
    /// Scheduling priority.
    pub priority: Priority,
    /// Submission time.
    pub arrival: SimTime,
    /// Multiplier applied to every task duration (the "task runtime × 2"
    /// stress settings).
    pub runtime_factor: f64,
}

impl MllibParams {
    /// A small configuration comparable to the paper's Fig. 1 setup
    /// (parallelism 8).
    pub fn small() -> Self {
        MllibParams {
            parallelism: 8,
            iterations: 4,
            mean_task_secs: 4.0,
            cv: 0.35,
            priority: Priority::default(),
            arrival: SimTime::ZERO,
            runtime_factor: 1.0,
        }
    }

    /// The cluster-experiment configuration (parallelism 20, as in the
    /// Fig. 5 microbenchmark).
    pub fn cluster() -> Self {
        MllibParams { parallelism: 20, iterations: 6, ..MllibParams::small() }
    }

    /// Sets the degree of parallelism.
    pub fn with_parallelism(mut self, parallelism: u32) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the iteration count.
    pub fn with_iterations(mut self, iterations: u32) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets the scheduling priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the submission time.
    pub fn with_arrival(mut self, arrival: SimTime) -> Self {
        self.arrival = arrival;
        self
    }

    /// Sets the mean task duration in seconds.
    pub fn with_mean_task_secs(mut self, secs: f64) -> Self {
        self.mean_task_secs = secs;
        self
    }

    /// Multiplies every task duration (stress settings).
    pub fn with_runtime_factor(mut self, factor: f64) -> Self {
        self.runtime_factor = factor;
        self
    }

    fn dist(&self, relative_mean: f64) -> ssr_simcore::dist::DynDistribution {
        lognormal_mean_cv(self.mean_task_secs * relative_mean * self.runtime_factor, self.cv)
    }
}

/// A KMeans-like job: data load/init, then per iteration an *assign*
/// phase (distance computation, the heavy map) and an *update* phase
/// (centroid aggregation).
///
/// # Errors
///
/// Returns [`DagError`] if the parameters produce an invalid DAG (e.g.
/// zero parallelism).
pub fn kmeans(params: &MllibParams) -> Result<JobSpec, DagError> {
    let mut b = JobSpecBuilder::new("kmeans")
        .priority(params.priority)
        .arrival(params.arrival)
        .stage("load", params.parallelism, params.dist(0.8));
    for i in 0..params.iterations {
        b = b
            .stage(format!("assign-{i}"), params.parallelism, params.dist(1.0))
            .stage(format!("update-{i}"), params.parallelism, params.dist(0.4));
    }
    b.chain().build()
}

/// An SVM-like job (mini-batch gradient descent): data load, then per
/// iteration a *gradient* phase and an *aggregate* phase.
///
/// # Errors
///
/// Returns [`DagError`] if the parameters produce an invalid DAG.
pub fn svm(params: &MllibParams) -> Result<JobSpec, DagError> {
    let mut b = JobSpecBuilder::new("svm")
        .priority(params.priority)
        .arrival(params.arrival)
        .stage("load", params.parallelism, params.dist(0.8));
    for i in 0..params.iterations {
        b = b
            .stage(format!("gradient-{i}"), params.parallelism, params.dist(1.2))
            .stage(format!("aggregate-{i}"), params.parallelism, params.dist(0.3));
    }
    b.chain().build()
}

/// A PageRank-like job: graph load, contribution init, then per iteration
/// a *contrib* phase (join + flatMap) and a *rank* phase (reduceByKey).
/// Task skew is higher than in the ML jobs (power-law vertex degrees).
///
/// # Errors
///
/// Returns [`DagError`] if the parameters produce an invalid DAG.
pub fn pagerank(params: &MllibParams) -> Result<JobSpec, DagError> {
    let skewed = |mean: f64| {
        lognormal_mean_cv(
            params.mean_task_secs * mean * params.runtime_factor,
            (params.cv * 2.0).max(0.5),
        )
    };
    let mut b = JobSpecBuilder::new("pagerank")
        .priority(params.priority)
        .arrival(params.arrival)
        .stage("load-graph", params.parallelism, skewed(1.0))
        .stage("init-ranks", params.parallelism, params.dist(0.3));
    for i in 0..params.iterations {
        b = b
            .stage(format!("contrib-{i}"), params.parallelism, skewed(1.1))
            .stage(format!("rank-{i}"), params.parallelism, params.dist(0.4));
    }
    b.chain().build()
}

/// All three foreground applications, in the order the paper plots them.
///
/// # Errors
///
/// Returns [`DagError`] if the parameters produce an invalid DAG.
pub fn foreground_suite(params: &MllibParams) -> Result<Vec<JobSpec>, DagError> {
    Ok(vec![kmeans(params)?, svm(params)?, pagerank(params)?])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_dag::StageId;

    #[test]
    fn kmeans_structure() {
        let spec = kmeans(&MllibParams::small()).unwrap();
        assert_eq!(spec.name(), "kmeans");
        // load + 4 iterations x 2 phases.
        assert_eq!(spec.stages().len(), 9);
        assert_eq!(spec.depth(), 9); // linear chain
        assert!(spec.stages().iter().all(|s| s.parallelism() == 8));
    }

    #[test]
    fn svm_and_pagerank_structures() {
        let params = MllibParams::small().with_iterations(3);
        let svm = svm(&params).unwrap();
        assert_eq!(svm.stages().len(), 7);
        let pr = pagerank(&params).unwrap();
        assert_eq!(pr.stages().len(), 8); // 2 init + 3 x 2
        assert!(pr.depth() == 8);
    }

    #[test]
    fn stable_parallelism_property() {
        // The property the paper relies on: MLlib jobs never change their
        // degree of parallelism across phases.
        for spec in foreground_suite(&MllibParams::cluster()).unwrap() {
            let p0 = spec.stages()[0].parallelism();
            assert!(spec.stages().iter().all(|s| s.parallelism() == p0), "{}", spec.name());
            // Hence Algorithm 1 sees m == n at every barrier.
            for s in spec.iter_stage_ids() {
                if !spec.is_final(s) {
                    assert_eq!(spec.downstream_parallelism(s), Some(u64::from(p0)));
                }
            }
        }
    }

    #[test]
    fn params_builders() {
        let p = MllibParams::small()
            .with_parallelism(16)
            .with_iterations(2)
            .with_priority(Priority::new(9))
            .with_arrival(SimTime::from_secs(5))
            .with_mean_task_secs(2.0)
            .with_runtime_factor(2.0);
        assert_eq!(p.parallelism, 16);
        let spec = kmeans(&p).unwrap();
        assert_eq!(spec.priority(), Priority::new(9));
        assert_eq!(spec.arrival(), SimTime::from_secs(5));
        assert_eq!(spec.stages().len(), 5);
    }

    #[test]
    fn runtime_factor_scales_means() {
        let base = kmeans(&MllibParams::small()).unwrap();
        let doubled = kmeans(&MllibParams::small().with_runtime_factor(2.0)).unwrap();
        let m0 = base.stage(StageId::new(1)).duration().mean().unwrap();
        let m1 = doubled.stage(StageId::new(1)).duration().mean().unwrap();
        assert!((m1 / m0 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_parallelism_propagates_error() {
        assert!(kmeans(&MllibParams::small().with_parallelism(0)).is_err());
    }
}
