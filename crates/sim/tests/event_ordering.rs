//! Same-timestamp event-ordering regression tests.
//!
//! The simulation queue breaks time ties by insertion order (FIFO). These
//! tests pin the user-visible consequences of that rule at the one place it
//! matters most: a reservation expiry colliding with a task finish (and the
//! offer round it triggers) at the same `SimTime`. If the tie-break ever
//! drifts — a different queue discipline, a reordered wakeup push — the
//! byte-identity assertions here catch it.

use ssr_cluster::{ClusterSpec, LocalityModel};
use ssr_dag::Priority;
use ssr_sim::{FaultKind, FaultPlan, OrderConfig, PolicyConfig, SimConfig, Simulation};
use ssr_simcore::dist::constant;
use ssr_simcore::{SimDuration, SimTime};
use ssr_trace::{JsonlSink, TraceEventKind, VecSink};
use ssr_workload::synthetic::{map_only, pipeline_of};

/// Cluster of 1 node x 3 slots where, under a 30 s timeout-reservation
/// policy, three things collide at t = 31 s:
///
/// - a background task (launched at t = 0, 31 s long) finishes,
/// - the foreground's idle reservation (granted at t = 1) expires,
/// - and each triggers an offer round.
///
/// Timeline: fg's two up-tasks run on slots 0-1 and finish at t = 1; both
/// freed slots are reserved for fg with deadline 31. The single down-task
/// consumes slot 0; slot 1's reservation idles (the background's priority
/// is too low to be approved). The background task on slot 2 finishes at
/// exactly t = 31 — the same instant the slot-1 reservation lapses.
fn collision_sim() -> Simulation {
    let fg = pipeline_of(
        "fg",
        &[(2, constant(1.0)), (1, constant(40.0))],
        Priority::new(10),
        SimTime::ZERO,
    )
    .unwrap();
    let bg = map_only("bg", 3, constant(31.0), Priority::new(0)).unwrap();
    let config = SimConfig::new(ClusterSpec::new(1, 3).unwrap())
        .with_locality(LocalityModel::paper_simulation().with_wait(SimDuration::ZERO))
        .with_seed(11);
    Simulation::new(
        config,
        PolicyConfig::Timeout(SimDuration::from_secs(30)),
        OrderConfig::FifoPriority,
        vec![fg, bg],
    )
}

#[test]
fn colliding_expiry_and_finish_replay_byte_identically() {
    let run = || {
        let (report, sink) =
            collision_sim().with_trace_sink(Box::new(JsonlSink::new())).run_traced();
        let jsonl = sink
            .expect("sink attached")
            .into_any()
            .downcast::<JsonlSink>()
            .expect("JsonlSink recovered")
            .finish();
        (serde_json::to_string_pretty(&report).unwrap(), jsonl)
    };
    let (report_a, trace_a) = run();
    let (report_b, trace_b) = run();
    assert_eq!(report_a, report_b, "same-seed reports must be byte-identical");
    assert_eq!(trace_a, trace_b, "same-seed decision traces must be byte-identical");
    // The collision actually happened: the trace holds an expiry at t=31.
    assert!(
        trace_a.contains(r#""event":"reservation-expired""#),
        "scenario must produce a reservation expiry"
    );
}

#[test]
fn finish_processes_before_expiry_at_equal_time() {
    let (report, sink) = collision_sim().with_trace_sink(Box::new(VecSink::new())).run_traced();
    assert!(report.completed);
    let events = sink
        .expect("sink attached")
        .into_any()
        .downcast::<VecSink>()
        .expect("VecSink recovered")
        .into_events();

    let t31 = SimTime::from_secs(31);
    let finish_idx = events
        .iter()
        .position(|e| e.time == t31 && matches!(e.kind, TraceEventKind::TaskFinished { .. }))
        .expect("a task finishes at t=31");
    let expiry_idx = events
        .iter()
        .position(|e| e.time == t31 && matches!(e.kind, TraceEventKind::ReservationExpired { .. }))
        .expect("a reservation expires at t=31");
    // The finish event was queued at t=0, the expiry wakeup at t=1: FIFO
    // tie-break processes the finish (and its offer round) first.
    assert!(
        finish_idx < expiry_idx,
        "task finish must process before reservation expiry at the same instant"
    );
    // The expired slot is only handed out *after* the expiry: the launch
    // onto it appears later in the stream.
    let expired_slot = match events[expiry_idx].kind {
        TraceEventKind::ReservationExpired { slot, .. } => slot,
        _ => unreachable!(),
    };
    let launch_on_expired = events
        .iter()
        .position(|e| {
            e.time == t31
                && matches!(e.kind, TraceEventKind::TaskLaunched { slot, .. } if slot == expired_slot)
        })
        .expect("the freed slot is re-used in the same instant");
    assert!(
        expiry_idx < launch_on_expired,
        "the lapsed slot can only be claimed after its expiry processed"
    );
    // Between the finish and the expiry, the freed-but-still-reserved slot
    // denied the backlogged background job at least once.
    assert!(
        events[..expiry_idx]
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::OfferDeclined { .. })),
        "the idle reservation must deny the background job before expiring"
    );
}

/// The same collision with a third collider: a slot revocation strikes
/// slot 1 at exactly t = 31, the instant its idle reservation would
/// lapse (and the background task finishes). Fault events are queued at
/// simulation construction — before any task finish or expiry wakeup can
/// be pushed — so the FIFO tie-break processes the revocation first.
fn revocation_collision_sim() -> Simulation {
    let fg = pipeline_of(
        "fg",
        &[(2, constant(1.0)), (1, constant(40.0))],
        Priority::new(10),
        SimTime::ZERO,
    )
    .unwrap();
    let bg = map_only("bg", 3, constant(31.0), Priority::new(0)).unwrap();
    let faults = FaultPlan::new()
        .with(SimTime::from_secs(31), FaultKind::SlotRevocation { slot: 1 });
    let config = SimConfig::new(ClusterSpec::new(1, 3).unwrap())
        .with_locality(LocalityModel::paper_simulation().with_wait(SimDuration::ZERO))
        .with_seed(11)
        .with_faults(faults);
    Simulation::new(
        config,
        PolicyConfig::Timeout(SimDuration::from_secs(30)),
        OrderConfig::FifoPriority,
        vec![fg, bg],
    )
}

#[test]
fn revocation_preempts_expiry_at_equal_time() {
    let (report, sink) =
        revocation_collision_sim().with_trace_sink(Box::new(VecSink::new())).run_traced();
    assert!(report.completed, "losing one of three slots must not wedge the run");
    let events = sink
        .expect("sink attached")
        .into_any()
        .downcast::<VecSink>()
        .expect("VecSink recovered")
        .into_events();

    let t31 = SimTime::from_secs(31);
    // The construction-queued fault wins every t=31 tie: the revocation
    // processes before the background finish (pushed at dispatch, t=0)
    // and before the expiry wakeup (pushed at grant, t=1).
    let revoked_idx = events
        .iter()
        .position(|e| {
            e.time == t31
                && matches!(e.kind, TraceEventKind::ReservationRevoked { slot: 1, .. })
        })
        .expect("the fault revokes slot 1's reservation at t=31");
    let finish_idx = events
        .iter()
        .position(|e| e.time == t31 && matches!(e.kind, TraceEventKind::TaskFinished { .. }))
        .expect("a task still finishes at t=31");
    assert!(
        revoked_idx < finish_idx,
        "the construction-queued fault must process before the task finish"
    );
    assert!(
        events.iter().any(|e| {
            e.time == t31
                && matches!(e.kind, TraceEventKind::SlotOffline { slot: 1, cause: "revocation" })
        }),
        "the revoked slot leaves service in the same instant"
    );
    // The expiry wakeup still fires at t=31, but the reservation is gone:
    // expiring an already-revoked slot is a no-op, not a double release.
    assert!(
        !events.iter().any(|e| matches!(e.kind, TraceEventKind::ReservationExpired { .. })),
        "a revoked reservation must not also expire"
    );
}

#[test]
fn revocation_collision_replays_byte_identically() {
    let run = || {
        let (report, sink) =
            revocation_collision_sim().with_trace_sink(Box::new(JsonlSink::new())).run_traced();
        let jsonl = sink
            .expect("sink attached")
            .into_any()
            .downcast::<JsonlSink>()
            .expect("JsonlSink recovered")
            .finish();
        (serde_json::to_string_pretty(&report).unwrap(), jsonl)
    };
    let (report_a, trace_a) = run();
    let (report_b, trace_b) = run();
    assert_eq!(report_a, report_b, "same-plan reports must be byte-identical");
    assert_eq!(trace_a, trace_b, "same-plan decision traces must be byte-identical");
    assert!(
        trace_a.contains(r#""event":"reservation-revoked""#),
        "scenario must produce the revocation"
    );
}
