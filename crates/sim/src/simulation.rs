//! The discrete-event simulation loop.

use std::collections::BTreeMap;

use ssr_cluster::{ClusterSpec, LocalityLevel, LocalityModel, SlotId};
use ssr_dag::{JobId, JobSpec};
use ssr_faults::{FaultKind, FaultPlan};
use ssr_perf::SpanProfiler;
use ssr_scheduler::TaskScheduler;
use ssr_simcore::events::EventQueue;
use ssr_simcore::rng::SimRng;
use ssr_simcore::{SimDuration, SimTime};

use crate::experiment::{OrderConfig, PolicyConfig};
use crate::report::{Collector, JobResult, SimReport, TimeSample};

/// Configuration of one simulated run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    cluster: ClusterSpec,
    locality: LocalityModel,
    seed: u64,
    horizon: SimTime,
    track_jobs: Vec<String>,
    speculation: Option<ssr_scheduler::SpeculationConfig>,
    record_trace: bool,
    stop_after: Vec<String>,
    faults: FaultPlan,
}

impl SimConfig {
    /// Creates a configuration over `cluster` with the paper's simulation
    /// locality model, seed 0 and a one-simulated-week safety horizon.
    pub fn new(cluster: ClusterSpec) -> Self {
        SimConfig {
            cluster,
            locality: LocalityModel::paper_simulation(),
            seed: 0,
            horizon: SimTime::from_secs(7 * 24 * 3600),
            track_jobs: Vec::new(),
            speculation: None,
            record_trace: false,
            stop_after: Vec::new(),
            faults: FaultPlan::default(),
        }
    }

    /// Injects a deterministic fault schedule (see [`FaultPlan`]). The
    /// default plan is empty; an empty plan adds no events and leaves the
    /// run byte-identical to a fault-free build.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Drops any injected fault schedule — used for alone-baseline runs,
    /// which measure the undisturbed job.
    pub fn without_faults(mut self) -> Self {
        self.faults = FaultPlan::default();
        self
    }

    /// The injected fault schedule.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Stops the run as soon as every job with one of the given names has
    /// completed — a large speed-up for slowdown experiments where the
    /// background's tail is irrelevant. The report then has
    /// `completed = false` (the background was cut short).
    pub fn stop_after<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.stop_after = names.into_iter().map(Into::into).collect();
        self
    }

    /// Records a per-instance execution trace
    /// ([`SimReport::trace`](crate::SimReport)): placement, locality
    /// level, finish/kill — the raw data behind Gantt charts.
    pub fn record_trace(mut self, enabled: bool) -> Self {
        self.record_trace = enabled;
        self
    }

    /// Enables status-quo progress-based speculative execution in the
    /// scheduler (the baseline the paper's §IV-C strategy is compared
    /// against).
    pub fn with_speculation(mut self, config: ssr_scheduler::SpeculationConfig) -> Self {
        self.speculation = Some(config);
        self
    }

    /// Sets the locality model.
    pub fn with_locality(mut self, locality: LocalityModel) -> Self {
        self.locality = locality;
        self
    }

    /// Sets the RNG seed (runs are bit-for-bit deterministic per seed).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the safety horizon after which the run aborts (reported as
    /// `completed = false`).
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Enables the running-task time series for the named jobs (Figs. 5
    /// and 13).
    pub fn track_jobs<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.track_jobs = names.into_iter().map(Into::into).collect();
        self
    }

    /// The cluster topology.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    JobArrival(usize),
    TaskFinish { slot: SlotId, token: u64 },
    ReservationExpiry,
    LocalityUnlock,
    /// A scheduled fault strikes (index into the plan's event list).
    Fault(usize),
    /// A bounded fault heals (node rejoin, partition end).
    FaultHeal(usize),
}

/// One end-to-end simulated run: jobs arrive, tasks execute with locality
/// penalties, the scheduler's policy reserves or releases slots, and
/// metrics are integrated exactly between events.
#[derive(Debug)]
pub struct Simulation {
    sched: TaskScheduler,
    events: EventQueue<Event>,
    seed: u64,
    now: SimTime,
    jobs: Vec<JobSpec>,
    submitted: BTreeMap<JobId, usize>,
    slot_tokens: Vec<u64>,
    collector: Collector,
    tracked: Vec<(JobId, String)>,
    track_names: Vec<String>,
    scheduled_expiry: Option<SimTime>,
    scheduled_unlock: Option<SimTime>,
    horizon: SimTime,
    last_integrated: SimTime,
    record_trace: bool,
    open_trace: Vec<Option<OpenTrace>>,
    stop_names: Vec<String>,
    stop_pending: usize,
    faults: FaultPlan,
    storm_until: SimTime,
    storm_factor: f64,
    cold_until: Vec<SimTime>,
    cold_factor: Vec<f64>,
    progress_every: Option<u64>,
}

#[derive(Debug, Clone)]
struct OpenTrace {
    job: String,
    stage: u32,
    partition: u32,
    attempt: u32,
    start: SimTime,
    level: ssr_cluster::LocalityLevel,
    speculative: bool,
}

impl Simulation {
    /// Creates a run over `jobs` with the given policy and job order.
    pub fn new(
        config: SimConfig,
        policy: PolicyConfig,
        order: OrderConfig,
        jobs: Vec<JobSpec>,
    ) -> Self {
        let mut sched = TaskScheduler::new(
            config.cluster,
            config.locality.clone(),
            policy.build(),
            order.build(),
        );
        if let Some(spec_cfg) = config.speculation {
            sched = sched.with_speculation(spec_cfg);
        }
        let total_slots = config.cluster.total_slots() as usize;
        // Recycle the event-queue allocation across trials on this thread:
        // a benchmark or figure grid runs thousands of simulations, each
        // pushing one finish event per task instance.
        let mut events = recycled_event_queue(jobs.len() * 2 + 16);
        for (i, job) in jobs.iter().enumerate() {
            events.push(job.arrival(), Event::JobArrival(i));
        }
        // Fault strikes are scheduled up front, after the arrivals: an
        // empty plan pushes nothing, so the event sequence numbering (and
        // therefore every tie-break) is identical to a fault-free run.
        for (i, f) in config.faults.events().iter().enumerate() {
            events.push(f.at, Event::Fault(i));
        }
        let stop_pending = jobs
            .iter()
            .filter(|j| config.stop_after.iter().any(|n| n == j.name()))
            .count();
        Simulation {
            sched,
            events,
            seed: config.seed,
            now: SimTime::ZERO,
            jobs,
            submitted: BTreeMap::new(),
            slot_tokens: vec![0; total_slots],
            collector: Collector::new(),
            tracked: Vec::new(),
            track_names: config.track_jobs,
            scheduled_expiry: None,
            scheduled_unlock: None,
            horizon: config.horizon,
            last_integrated: SimTime::ZERO,
            record_trace: config.record_trace,
            open_trace: vec![None; total_slots],
            stop_pending,
            stop_names: config.stop_after,
            faults: config.faults,
            storm_until: SimTime::ZERO,
            storm_factor: 1.0,
            cold_until: vec![SimTime::ZERO; total_slots],
            cold_factor: vec![1.0; total_slots],
            progress_every: None,
        }
    }

    /// Attaches a scheduler decision-trace sink: every offer round,
    /// denial, reservation transition and launch is reported to it as an
    /// `ssr_trace::TraceEvent`. Recover the sink with
    /// [`run_traced`](Simulation::run_traced).
    pub fn with_trace_sink(mut self, sink: Box<dyn ssr_trace::TraceSink>) -> Self {
        self.sched.set_trace_sink(sink);
        self
    }

    /// Attaches a wall-clock span profiler (the `--profile` plane): the
    /// run loop, event dispatch, offer rounds, speculation scans and
    /// trace emission are timed on one shared span stack. Recover the
    /// profiler with [`run_instrumented`](Simulation::run_instrumented).
    ///
    /// Profiling never influences the simulation: spans only observe.
    pub fn with_span_profiler(mut self, profiler: Box<SpanProfiler>) -> Self {
        self.sched.set_span_profiler(profiler);
        self
    }

    /// Enables a stderr progress heartbeat every `every_events` processed
    /// events. Wall-clock plane: the output goes to stderr only and never
    /// influences the simulation or anything serialized from it.
    pub fn with_progress_heartbeat(mut self, every_events: u64) -> Self {
        self.progress_every = Some(every_events.max(1));
        self
    }

    /// Runs to completion (or the safety horizon) and returns the report.
    pub fn run(self) -> SimReport {
        self.run_traced().0
    }

    /// Runs to completion like [`run`](Simulation::run) and additionally
    /// returns the decision-trace sink attached via
    /// [`with_trace_sink`](Simulation::with_trace_sink) (`None` if none
    /// was).
    pub fn run_traced(self) -> (SimReport, Option<Box<dyn ssr_trace::TraceSink>>) {
        let (report, sink, _) = self.run_instrumented();
        (report, sink)
    }

    /// [`run_traced`](Simulation::run_traced) plus the span profiler
    /// attached via
    /// [`with_span_profiler`](Simulation::with_span_profiler) (`None` if
    /// none was), carrying the run's aggregated wall-clock spans.
    pub fn run_instrumented(
        mut self,
    ) -> (SimReport, Option<Box<dyn ssr_trace::TraceSink>>, Option<Box<SpanProfiler>>) {
        let started = crate::walltime::Stopwatch::start();
        self.run_loop();
        let sink = self.sched.take_trace_sink();
        let profiler = self.sched.take_span_profiler();
        let mut report = self.finish_report();
        report.wall_secs = started.elapsed_secs();
        (report, sink, profiler)
    }

    /// Opens a profiler span on the scheduler's span stack, if a
    /// profiler is attached.
    #[inline]
    fn span_enter(&mut self, name: &str) {
        if let Some(p) = self.sched.span_profiler_mut() {
            p.enter(name);
        }
    }

    /// Closes the innermost profiler span, if a profiler is attached.
    #[inline]
    fn span_exit(&mut self) {
        if let Some(p) = self.sched.span_profiler_mut() {
            p.exit();
        }
    }

    fn run_loop(&mut self) {
        let heartbeat =
            self.progress_every.map(|every| (crate::walltime::Stopwatch::start(), every));
        self.span_enter("run_loop");
        while let Some((t, event)) = self.events.pop() {
            if t > self.horizon {
                break;
            }
            self.collector.events_processed += 1;
            if let Some((clock, every)) = &heartbeat {
                if self.collector.events_processed.is_multiple_of(*every) {
                    // Non-deterministic plane: stderr only, never reports.
                    eprintln!(
                        "[ssr-perf] {:7.1}s wall  {:>10} events  sim t={:.1}s  {} pending",
                        clock.elapsed_secs(),
                        self.collector.events_processed,
                        t.as_secs_f64(),
                        self.events.len(),
                    );
                }
            }
            self.integrate_to(t);
            self.now = t;
            self.span_enter("event_dispatch");
            match event {
                Event::JobArrival(index) => {
                    let spec = self.jobs[index].clone();
                    let id = self.sched.submit(spec, t);
                    self.submitted.insert(id, index);
                    if self.track_names.iter().any(|n| n == self.jobs[index].name()) {
                        self.tracked.push((id, self.jobs[index].name().to_owned()));
                    }
                }
                Event::TaskFinish { slot, token } => {
                    if self.slot_tokens[slot.index()] != token {
                        self.span_exit(); // event_dispatch
                        continue; // the instance on this slot was killed
                    }
                    let outcome = self.sched.task_finished(slot, t);
                    self.slot_tokens[slot.index()] += 1;
                    self.close_trace(slot, t, "finished");
                    for killed in &outcome.killed {
                        self.slot_tokens[killed.index()] += 1;
                        self.collector.kills += 1;
                        self.close_trace(*killed, t, "killed");
                    }
                    if outcome.job_completed {
                        self.record_job_completion(outcome.instance.task.job, t);
                    }
                }
                Event::ReservationExpiry => {
                    self.scheduled_expiry = None;
                    self.sched.expire_reservations(t);
                }
                Event::LocalityUnlock => {
                    self.scheduled_unlock = None;
                    self.sched.trace_locality_unlock(t);
                }
                Event::Fault(index) => self.apply_fault(index, t),
                Event::FaultHeal(index) => self.heal_fault(index, t),
            }
            self.span_exit(); // event_dispatch
            self.dispatch();
            self.sample_timeseries();
            if !self.stop_names.is_empty() && self.stop_pending == 0 {
                break;
            }
            if !self.sched.has_unfinished_jobs() && self.submitted.len() == self.jobs.len() {
                break;
            }
        }
        self.span_exit(); // run_loop
    }

    /// Applies one scheduled [`FaultEvent`](ssr_faults::FaultEvent) and,
    /// for bounded faults, schedules the matching heal.
    fn apply_fault(&mut self, index: usize, t: SimTime) {
        let kind = self.faults.events()[index].kind.clone();
        match kind {
            FaultKind::NodeCrash { node, down } => {
                let slots = self.node_slots(node);
                self.kill_and_offline(&slots, t, "crash");
                if let Some(d) = down {
                    self.events.push(t + d, Event::FaultHeal(index));
                }
            }
            FaultKind::SlotRevocation { slot } => {
                self.kill_and_offline(&[SlotId::new(slot)], t, "revocation");
            }
            FaultKind::NetworkPartition { node, secs } => {
                // Running tasks survive the partition and may finish out of
                // service; only the master-side reservations are revoked.
                let slots = self.node_slots(node);
                self.sched.fail_slots(&slots, t, false, "partition");
                self.events.push(t + secs, Event::FaultHeal(index));
            }
            FaultKind::StragglerStorm { factor, secs } => {
                self.storm_until = self.storm_until.max(t + secs);
                self.storm_factor = factor;
            }
            FaultKind::ExecutorRestart { node, down, .. } => {
                let slots = self.node_slots(node);
                self.kill_and_offline(&slots, t, "restart");
                self.events.push(t + down, Event::FaultHeal(index));
            }
        }
    }

    /// Heals a bounded fault: the slots rejoin the pool (executor restarts
    /// additionally run cold for the configured ramp-up window).
    fn heal_fault(&mut self, index: usize, t: SimTime) {
        let kind = self.faults.events()[index].kind.clone();
        match kind {
            FaultKind::NodeCrash { node, .. } | FaultKind::NetworkPartition { node, .. } => {
                let slots = self.node_slots(node);
                self.sched.restore_slots(&slots, t);
            }
            FaultKind::ExecutorRestart { node, rampup, cold_factor, .. } => {
                let slots = self.node_slots(node);
                self.sched.restore_slots(&slots, t);
                for slot in slots {
                    self.cold_until[slot.index()] = t + rampup;
                    self.cold_factor[slot.index()] = cold_factor;
                }
            }
            FaultKind::SlotRevocation { .. } | FaultKind::StragglerStorm { .. } => {}
        }
    }

    /// Takes `slots` out of service, killing whatever runs on them: the
    /// scheduler requeues the work, and the pending finish events are
    /// cancelled through the slot-token generation bump.
    fn kill_and_offline(&mut self, slots: &[SlotId], t: SimTime, cause: &'static str) {
        let outcome = self.sched.fail_slots(slots, t, true, cause);
        for slot in outcome.killed {
            self.slot_tokens[slot.index()] += 1;
            self.collector.kills += 1;
            self.close_trace(slot, t, "crashed");
        }
    }

    /// All slots hosted on `node` (an out-of-range node has none — the
    /// fault is then a no-op).
    fn node_slots(&self, node: u32) -> Vec<SlotId> {
        let spec = self.sched.cluster_spec();
        spec.iter_slots().filter(|&s| spec.node_of(s).as_u32() == node).collect()
    }

    /// Runs one resource-offer round and schedules the resulting finish,
    /// expiry and unlock events.
    fn dispatch(&mut self) {
        let assignments = self.sched.resource_offers(self.now);
        for a in &assignments {
            let task = a.instance.task;
            let spec = self
                .sched
                .jobs()
                .get(task.job)
                .expect("assigned job exists")
                .spec()
                .clone();
            // Durations are a deterministic function of (job name, stage,
            // partition, attempt): a job draws identical intrinsic
            // durations whether it runs alone or in contention, so
            // slowdown measurements carry no sampling noise.
            let mut rng = self.task_rng(spec.name(), a.instance);
            let intrinsic = spec.stage(task.stage).duration().sample(&mut rng).max(1e-6);
            let factor = if a.speculative && a.warm {
                // §IV-C: copies run on warm slots of the same phase.
                1.0
            } else {
                self.sched.locality().sample_slowdown(a.level, &mut rng).max(0.0)
            };
            // Fault multipliers stretch the already-sampled duration: no
            // extra RNG draw, so an empty plan leaves the stream untouched.
            let mut secs = intrinsic * factor;
            if self.now < self.storm_until {
                secs *= self.storm_factor;
            }
            if self.now < self.cold_until[a.slot.index()] {
                secs *= self.cold_factor[a.slot.index()];
            }
            let duration = SimDuration::from_secs_f64(secs);
            let token = self.slot_tokens[a.slot.index()];
            self.events.push(self.now + duration, Event::TaskFinish { slot: a.slot, token });
            self.collector.locality_counts[locality_index(a.level)] += 1;
            if self.record_trace {
                self.open_trace[a.slot.index()] = Some(OpenTrace {
                    job: spec.name().to_owned(),
                    stage: task.stage.as_u32(),
                    partition: task.partition,
                    attempt: a.instance.attempt,
                    start: self.now,
                    level: a.level,
                    speculative: a.speculative,
                });
            }
            if a.speculative {
                self.collector.speculative_copies += 1;
            }
        }
        // Reservation-expiry wakeup.
        if let Some(expiry) = self.sched.next_reservation_expiry() {
            let wake = expiry.max(self.now);
            if self.scheduled_expiry.is_none_or(|s| wake < s) {
                self.events.push(wake, Event::ReservationExpiry);
                self.scheduled_expiry = Some(wake);
            }
        }
        // Delay-scheduling wakeup.
        if let Some(unlock) = self.sched.next_locality_unlock(self.now) {
            let wake = unlock.max(self.now);
            if self.scheduled_unlock.is_none_or(|s| wake < s) {
                self.events.push(wake, Event::LocalityUnlock);
                self.scheduled_unlock = Some(wake);
            }
        }
    }

    /// Derives the per-instance RNG: FNV-1a over the job name and task
    /// coordinates, mixed with the run seed.
    fn task_rng(&self, name: &str, instance: ssr_scheduler::TaskInstance) -> SimRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for b in name.bytes() {
            mix(u64::from(b));
        }
        mix(u64::from(instance.task.stage.as_u32()));
        mix(u64::from(instance.task.partition));
        mix(u64::from(instance.attempt));
        // stream(root, index) == seed_from_u64(root ^ index), so this is
        // byte-identical to the former `seed_from_u64(h ^ self.seed)`.
        SimRng::stream(self.seed, h)
    }

    /// Integrates slot-state occupancy exactly over `[last, t]` (states
    /// are piecewise constant between events).
    fn integrate_to(&mut self, t: SimTime) {
        let dt = t.saturating_since(self.last_integrated).as_secs_f64();
        if dt > 0.0 {
            let (free, running, reserved) = self.sched.slot_pool().counts();
            self.collector.busy_slot_secs += running as f64 * dt;
            self.collector.reserved_idle_slot_secs += reserved as f64 * dt;
            self.collector.free_slot_secs += free as f64 * dt;
        }
        self.last_integrated = t;
    }

    fn sample_timeseries(&mut self) {
        if self.tracked.is_empty() {
            return;
        }
        // One pass over the engine's per-job running map instead of a
        // per-tracked-job lookup on every event.
        let per_job = self.sched.running_per_job();
        let running: Vec<(String, usize)> = self
            .tracked
            .iter()
            .map(|(id, name)| (name.clone(), per_job.get(id).copied().unwrap_or(0)))
            .collect();
        self.collector.timeseries.push(TimeSample {
            time_secs: self.now.as_secs_f64(),
            running,
        });
    }

    fn close_trace(&mut self, slot: SlotId, end: SimTime, outcome: &str) {
        if !self.record_trace {
            return;
        }
        if let Some(open) = self.open_trace[slot.index()].take() {
            self.collector.trace.push(crate::report::TaskTraceRecord {
                job: open.job,
                stage: open.stage,
                partition: open.partition,
                attempt: open.attempt,
                slot: slot.as_u32(),
                start_secs: open.start.as_secs_f64(),
                end_secs: end.as_secs_f64(),
                level: open.level.to_string(),
                speculative: open.speculative,
                outcome: outcome.to_owned(),
            });
        }
    }

    fn record_job_completion(&mut self, job: JobId, t: SimTime) {
        let state = self.sched.jobs().get(job).expect("completed job exists");
        if self.stop_names.iter().any(|n| n == state.spec().name()) {
            self.stop_pending = self.stop_pending.saturating_sub(1);
        }
        let result = JobResult {
            name: state.spec().name().to_owned(),
            job_id: job.as_u64(),
            priority: state.priority().level(),
            arrival_secs: state.submitted_at().as_secs_f64(),
            completed_secs: Some(t.as_secs_f64()),
            jct: t.saturating_since(state.submitted_at()),
        };
        self.collector.results.push((job, result));
        self.collector.makespan = self.collector.makespan.max(t);
    }

    fn finish_report(mut self) -> SimReport {
        // Close the occupancy integral at the last event time.
        let end = self.now;
        self.integrate_to(end);
        // Fold the event queue's flow statistics into the run's work
        // counters, then hand the allocation back for the next trial.
        let counters = self.sched.work_counters().clone();
        counters.events_pushed.add(self.events.pushed());
        counters.events_popped.add(self.events.popped());
        counters.peak_event_queue_len.high_water(self.events.peak_len() as u64);
        recycle_event_queue(std::mem::take(&mut self.events));
        // Report unfinished jobs too.
        let mut jobs: Vec<JobResult> =
            self.collector.results.iter().map(|(_, r)| r.clone()).collect();
        let mut all_done = self.submitted.len() == self.jobs.len();
        for state in self.sched.jobs().iter() {
            if state.is_complete() {
                continue;
            }
            all_done = false;
            jobs.push(JobResult {
                name: state.spec().name().to_owned(),
                job_id: state.id().as_u64(),
                priority: state.priority().level(),
                arrival_secs: state.submitted_at().as_secs_f64(),
                completed_secs: None,
                jct: SimDuration::ZERO,
            });
        }
        jobs.sort_by_key(|j| j.job_id);
        SimReport {
            policy: self.sched.policy_name().to_owned(),
            order: self.sched.order_name().to_owned(),
            jobs,
            completed: all_done,
            makespan_secs: self.collector.makespan.as_secs_f64(),
            busy_slot_secs: self.collector.busy_slot_secs,
            reserved_idle_slot_secs: self.collector.reserved_idle_slot_secs,
            free_slot_secs: self.collector.free_slot_secs,
            speculative_copies: self.collector.speculative_copies,
            kills: self.collector.kills,
            locality_counts: self.collector.locality_counts,
            timeseries: self.collector.timeseries,
            trace: self.collector.trace,
            events_processed: self.collector.events_processed,
            wall_secs: 0.0,
            counters,
        }
    }
}

fn locality_index(level: LocalityLevel) -> usize {
    match level {
        LocalityLevel::ProcessLocal => 0,
        LocalityLevel::NodeLocal => 1,
        LocalityLevel::RackLocal => 2,
        LocalityLevel::Any => 3,
    }
}

thread_local! {
    /// One recycled event queue per worker thread; trials on a thread run
    /// sequentially, so a single slot suffices.
    static QUEUE_POOL: std::cell::RefCell<Option<EventQueue<Event>>> =
        const { std::cell::RefCell::new(None) };
}

/// Takes the thread's recycled event queue (or builds one), reset to the
/// fresh-queue state with capacity for at least `cap` events.
fn recycled_event_queue(cap: usize) -> EventQueue<Event> {
    QUEUE_POOL.with(|pool| {
        let mut q = pool.borrow_mut().take().unwrap_or_default();
        q.reset();
        q.reserve(cap);
        q
    })
}

/// Returns a finished trial's queue to the thread's pool.
fn recycle_event_queue(q: EventQueue<Event>) {
    QUEUE_POOL.with(|pool| {
        *pool.borrow_mut() = Some(q);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_dag::Priority;
    use ssr_simcore::dist::constant;
    use ssr_workload::synthetic::{map_only, pareto_pipeline, pipeline_of};

    fn config(nodes: u32, slots: u32) -> SimConfig {
        SimConfig::new(ClusterSpec::new(nodes, slots).unwrap())
            .with_locality(LocalityModel::paper_simulation().with_wait(SimDuration::ZERO))
            .with_seed(1)
    }

    #[test]
    fn single_job_completes_with_exact_jct() {
        let job = map_only("m", 8, constant(2.0), Priority::default()).unwrap();
        let report =
            Simulation::new(config(2, 2), PolicyConfig::WorkConserving, OrderConfig::FifoPriority, vec![job])
                .run();
        assert!(report.completed);
        assert_eq!(report.jct_secs("m"), Some(4.0)); // 8 tasks / 4 slots x 2 s
        assert_eq!(report.makespan_secs, 4.0);
        // Utilization: 8 tasks x 2 s busy over 4 slots x 4 s.
        assert!((report.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pipeline_jct_accounts_for_barriers() {
        let job = pipeline_of(
            "p",
            &[(4, constant(1.0)), (4, constant(2.0))],
            Priority::default(),
            SimTime::ZERO,
        )
        .unwrap();
        let report =
            Simulation::new(config(2, 2), PolicyConfig::WorkConserving, OrderConfig::FifoPriority, vec![job])
                .run();
        assert_eq!(report.jct_secs("p"), Some(3.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let jobs = || {
            vec![
                pareto_pipeline("a", 3, 8, 1.0, 1.6, Priority::new(5)).unwrap(),
                pareto_pipeline("b", 2, 8, 1.0, 1.6, Priority::new(0)).unwrap(),
            ]
        };
        let r1 = Simulation::new(
            config(2, 4).with_seed(42),
            PolicyConfig::WorkConserving,
            OrderConfig::FifoPriority,
            jobs(),
        )
        .run();
        let r2 = Simulation::new(
            config(2, 4).with_seed(42),
            PolicyConfig::WorkConserving,
            OrderConfig::FifoPriority,
            jobs(),
        )
        .run();
        assert_eq!(r1.jct_secs("a"), r2.jct_secs("a"));
        assert_eq!(r1.jct_secs("b"), r2.jct_secs("b"));
        assert_eq!(r1.busy_slot_secs, r2.busy_slot_secs);
        let r3 = Simulation::new(
            config(2, 4).with_seed(43),
            PolicyConfig::WorkConserving,
            OrderConfig::FifoPriority,
            jobs(),
        )
        .run();
        assert_ne!(r1.jct_secs("a"), r3.jct_secs("a"));
    }

    #[test]
    fn ssr_protects_foreground_from_background() {
        // The paper's core claim, end to end: a 3-phase foreground job
        // contends with long background tasks. Work conserving interleaves
        // them; SSR keeps the foreground's slots across barriers.
        let fg = || {
            pipeline_of(
                "fg",
                &[(4, constant(2.0)), (4, constant(2.0)), (4, constant(2.0))],
                Priority::new(10),
                SimTime::ZERO,
            )
            .unwrap()
        };
        let bg = || map_only("bg", 32, constant(50.0), Priority::new(0)).unwrap();
        // Phase durations are constant, so the only skew source is the
        // per-task sampling... constant() has none: all tasks finish
        // together and even work conserving loses nothing. Introduce skew
        // via Pareto.
        let fg_skewed = || pareto_pipeline("fg", 3, 4, 1.0, 1.3, Priority::new(10)).unwrap();
        let run = |policy: PolicyConfig, jobs: Vec<JobSpec>| {
            Simulation::new(config(1, 4), policy, OrderConfig::FifoPriority, jobs).run()
        };
        let _ = fg;
        let wc = run(PolicyConfig::WorkConserving, vec![fg_skewed(), bg()]);
        let ssr = run(PolicyConfig::ssr_strict(), vec![fg_skewed(), bg()]);
        let alone = run(PolicyConfig::WorkConserving, vec![fg_skewed()]);
        let jct_wc = wc.jct_secs("fg").unwrap();
        let jct_ssr = ssr.jct_secs("fg").unwrap();
        let jct_alone = alone.jct_secs("fg").unwrap();
        // Under work conservation the foreground waits behind 50 s
        // background tasks at each barrier.
        assert!(
            jct_wc > jct_alone * 1.5,
            "work conserving should inflate JCT: {jct_wc} vs alone {jct_alone}"
        );
        // SSR keeps it within a whisker of running alone.
        assert!(
            jct_ssr < jct_alone * 1.2,
            "SSR should isolate: {jct_ssr} vs alone {jct_alone}"
        );
    }

    #[test]
    fn background_still_completes_under_ssr() {
        let fg = pareto_pipeline("fg", 3, 4, 1.0, 1.3, Priority::new(10)).unwrap();
        let bg = map_only("bg", 16, constant(5.0), Priority::new(0)).unwrap();
        let report = Simulation::new(
            config(1, 4),
            PolicyConfig::ssr_strict(),
            OrderConfig::FifoPriority,
            vec![fg, bg],
        )
        .run();
        assert!(report.completed, "all jobs must finish");
        assert!(report.jct_secs("bg").is_some());
    }

    #[test]
    fn timeseries_tracks_requested_jobs() {
        let fg = pareto_pipeline("fg", 2, 4, 1.0, 1.5, Priority::new(10)).unwrap();
        let report = Simulation::new(
            config(1, 4).track_jobs(["fg"]),
            PolicyConfig::WorkConserving,
            OrderConfig::FifoPriority,
            vec![fg],
        )
        .run();
        assert!(!report.timeseries.is_empty());
        let max_running = report
            .timeseries
            .iter()
            .flat_map(|s| s.running.iter().map(|(_, c)| *c))
            .max()
            .unwrap();
        assert_eq!(max_running, 4);
    }

    #[test]
    fn straggler_mitigation_reduces_phase_tail() {
        // Heavy-tailed single foreground job alone on the cluster: copies
        // on reserved slots cut the tail (the §IV-C effect).
        let job = || pareto_pipeline("fg", 4, 16, 1.0, 1.2, Priority::new(10)).unwrap();
        let without = Simulation::new(
            config(4, 4).with_seed(7),
            PolicyConfig::ssr_strict(),
            OrderConfig::FifoPriority,
            vec![job()],
        )
        .run();
        let with = Simulation::new(
            config(4, 4).with_seed(7),
            PolicyConfig::ssr_strict_with_stragglers(),
            OrderConfig::FifoPriority,
            vec![job()],
        )
        .run();
        assert!(with.speculative_copies > 0);
        let a = without.jct_secs("fg").unwrap();
        let b = with.jct_secs("fg").unwrap();
        assert!(b < a, "mitigation must shorten the heavy tail: {b} !< {a}");
    }

    #[test]
    fn horizon_aborts_incomplete_runs() {
        let job = map_only("long", 4, constant(1000.0), Priority::default()).unwrap();
        let report = Simulation::new(
            config(1, 2).with_horizon(SimTime::from_secs(10)),
            PolicyConfig::WorkConserving,
            OrderConfig::FifoPriority,
            vec![job],
        )
        .run();
        assert!(!report.completed);
        assert_eq!(report.jobs.len(), 1);
        assert_eq!(report.jobs[0].completed_secs, None);
    }

    #[test]
    fn locality_counts_accumulate() {
        let job = pipeline_of(
            "p",
            &[(4, constant(1.0)), (4, constant(1.0))],
            Priority::default(),
            SimTime::ZERO,
        )
        .unwrap();
        let report =
            Simulation::new(config(2, 2), PolicyConfig::WorkConserving, OrderConfig::FifoPriority, vec![job])
                .run();
        let total: u64 = report.locality_counts.iter().sum();
        assert_eq!(total, 8);
        // Downstream tasks land on their upstream slots (free at barrier).
        assert_eq!(report.locality_counts[0], 8);
    }

    #[test]
    fn trace_records_every_instance() {
        let job = pipeline_of(
            "p",
            &[(4, constant(1.0)), (4, constant(2.0))],
            Priority::default(),
            SimTime::ZERO,
        )
        .unwrap();
        let report = Simulation::new(
            config(2, 2).record_trace(true),
            PolicyConfig::WorkConserving,
            OrderConfig::FifoPriority,
            vec![job],
        )
        .run();
        assert_eq!(report.trace.len(), 8);
        for r in &report.trace {
            assert_eq!(r.job, "p");
            assert_eq!(r.outcome, "finished");
            assert!(r.end_secs > r.start_secs);
            assert!(!r.speculative);
        }
        // Stage 1 records start after stage 0's barrier clears.
        let s0_end = report
            .trace
            .iter()
            .filter(|r| r.stage == 0)
            .map(|r| r.end_secs)
            .fold(0.0f64, f64::max);
        for r in report.trace.iter().filter(|r| r.stage == 1) {
            assert!(r.start_secs >= s0_end);
        }
        // Disabled by default.
        let quiet = Simulation::new(
            config(2, 2),
            PolicyConfig::WorkConserving,
            OrderConfig::FifoPriority,
            vec![pipeline_of("q", &[(2, constant(1.0))], Priority::default(), SimTime::ZERO)
                .unwrap()],
        )
        .run();
        assert!(quiet.trace.is_empty());
    }

    #[test]
    fn trace_marks_killed_copies() {
        let job = pareto_pipeline("h", 2, 8, 1.0, 1.2, Priority::new(10)).unwrap();
        let report = Simulation::new(
            config(2, 4).with_seed(3).record_trace(true),
            PolicyConfig::ssr_strict_with_stragglers(),
            OrderConfig::FifoPriority,
            vec![job],
        )
        .run();
        let killed = report.trace.iter().filter(|r| r.outcome == "killed").count() as u64;
        assert_eq!(killed, report.kills);
        if report.speculative_copies > 0 {
            assert!(report.trace.iter().any(|r| r.speculative));
        }
    }

    fn jsonl_of(sink: Box<dyn ssr_trace::TraceSink>) -> String {
        sink.into_any()
            .downcast::<ssr_trace::JsonlSink>()
            .expect("JsonlSink recovered")
            .finish()
    }

    #[test]
    fn empty_fault_plan_is_byte_identical() {
        let jobs = || {
            vec![
                pareto_pipeline("fg", 3, 8, 1.0, 1.4, Priority::new(10)).unwrap(),
                map_only("bg", 16, constant(5.0), Priority::new(0)).unwrap(),
            ]
        };
        let run = |cfg: SimConfig| {
            Simulation::new(cfg, PolicyConfig::ssr_strict(), OrderConfig::FifoPriority, jobs())
                .with_trace_sink(Box::new(ssr_trace::JsonlSink::new()))
                .run_traced()
        };
        let (plain, plain_sink) = run(config(2, 4).with_seed(11).record_trace(true));
        let (faulted, faulted_sink) = run(
            config(2, 4).with_seed(11).record_trace(true).with_faults(FaultPlan::default()),
        );
        assert_eq!(
            jsonl_of(plain_sink.unwrap()),
            jsonl_of(faulted_sink.unwrap()),
            "empty plan must not perturb the decision trace"
        );
        assert_eq!(plain.jct_secs("fg"), faulted.jct_secs("fg"));
        assert_eq!(plain.jct_secs("bg"), faulted.jct_secs("bg"));
        assert_eq!(plain.busy_slot_secs, faulted.busy_slot_secs);
        assert_eq!(plain.events_processed, faulted.events_processed);
        assert_eq!(plain.trace.len(), faulted.trace.len());
    }

    #[test]
    fn node_crash_requeues_and_still_completes() {
        let job = map_only("m", 8, constant(2.0), Priority::default()).unwrap();
        let plan = FaultPlan::new()
            .with(SimTime::from_secs(1), FaultKind::NodeCrash { node: 1, down: None });
        let report = Simulation::new(
            config(2, 2).record_trace(true).with_faults(plan),
            PolicyConfig::WorkConserving,
            OrderConfig::FifoPriority,
            vec![job],
        )
        .run();
        assert!(report.completed, "requeued tasks must finish on the surviving node");
        let crashed = report.trace.iter().filter(|r| r.outcome == "crashed").count();
        assert_eq!(crashed, 2, "both tasks on the crashed node are killed");
        // 8 x 2 s tasks on 2 surviving slots after losing 2 mid-flight.
        assert!(report.jct_secs("m").unwrap() > 4.0);
        // Every partition still finishes exactly once.
        let finished = report.trace.iter().filter(|r| r.outcome == "finished").count();
        assert_eq!(finished, 8);
    }

    #[test]
    fn crashed_node_rejoins_after_downtime() {
        let job = map_only("m", 12, constant(2.0), Priority::default()).unwrap();
        let heal = FaultPlan::new().with(
            SimTime::from_secs(1),
            FaultKind::NodeCrash { node: 1, down: Some(SimDuration::from_secs(3)) },
        );
        let permanent = FaultPlan::new()
            .with(SimTime::from_secs(1), FaultKind::NodeCrash { node: 1, down: None });
        let run = |plan: FaultPlan| {
            Simulation::new(
                config(2, 2).with_faults(plan),
                PolicyConfig::WorkConserving,
                OrderConfig::FifoPriority,
                vec![map_only("m", 12, constant(2.0), Priority::default()).unwrap()],
            )
            .run()
        };
        let _ = job;
        let healed = run(heal);
        let down = run(permanent);
        assert!(healed.completed && down.completed);
        assert!(
            healed.jct_secs("m").unwrap() < down.jct_secs("m").unwrap(),
            "a rejoining node must speed the job up versus a permanent loss"
        );
    }

    #[test]
    fn partition_survivors_finish_out_of_service() {
        let job = map_only("m", 8, constant(2.0), Priority::default()).unwrap();
        let plan = FaultPlan::new().with(
            SimTime::from_secs(1),
            FaultKind::NetworkPartition { node: 1, secs: SimDuration::from_secs(10) },
        );
        let report = Simulation::new(
            config(2, 2).record_trace(true).with_faults(plan),
            PolicyConfig::WorkConserving,
            OrderConfig::FifoPriority,
            vec![job],
        )
        .run();
        assert!(report.completed);
        // Nothing is killed: tasks running through the partition finish.
        assert!(report.trace.iter().all(|r| r.outcome == "finished"));
        // The partitioned slots take no new work until the heal at t=11:
        // 4 done by t=2, the rest run on node 0's two slots.
        assert_eq!(report.jct_secs("m"), Some(6.0));
    }

    #[test]
    fn straggler_storm_stretches_in_flight_window() {
        let plan = FaultPlan::new().with(
            SimTime::from_secs(1),
            FaultKind::StragglerStorm { factor: 2.0, secs: SimDuration::from_secs(100) },
        );
        let report = Simulation::new(
            config(2, 2).with_faults(plan),
            PolicyConfig::WorkConserving,
            OrderConfig::FifoPriority,
            vec![map_only("m", 8, constant(2.0), Priority::default()).unwrap()],
        )
        .run();
        // First wave (launched at t=0) predates the storm and takes 2 s;
        // the second wave launches at t=2 inside the storm window: 4 s.
        assert_eq!(report.jct_secs("m"), Some(6.0));
    }

    #[test]
    fn executor_restart_runs_cold_through_rampup() {
        let plan = FaultPlan::new().with(
            SimTime::from_secs(1),
            FaultKind::ExecutorRestart {
                node: 1,
                down: SimDuration::from_secs(1),
                rampup: SimDuration::from_secs(100),
                cold_factor: 3.0,
            },
        );
        let report = Simulation::new(
            config(2, 2).record_trace(true).with_faults(plan),
            PolicyConfig::WorkConserving,
            OrderConfig::FifoPriority,
            vec![map_only("m", 8, constant(2.0), Priority::default()).unwrap()],
        )
        .run();
        assert!(report.completed);
        // Tasks relaunched on the restarted executor run 3x slower.
        let cold = report
            .trace
            .iter()
            .filter(|r| r.outcome == "finished" && (r.end_secs - r.start_secs - 6.0).abs() < 1e-9)
            .count();
        assert!(cold > 0, "some task must run cold on the restarted node");
    }

    #[test]
    fn occupancy_integral_accounts_every_slot_second() {
        let job = pareto_pipeline("p", 2, 4, 1.0, 1.6, Priority::default()).unwrap();
        let report =
            Simulation::new(config(1, 4), PolicyConfig::ssr_strict(), OrderConfig::FifoPriority, vec![job])
                .run();
        let total = report.busy_slot_secs + report.reserved_idle_slot_secs + report.free_slot_secs;
        let expected = 4.0 * report.makespan_secs;
        assert!(
            (total - expected).abs() < 1e-6,
            "integral {total} != slots x makespan {expected}"
        );
    }

    #[test]
    fn work_counters_are_harvested_into_the_report() {
        let job = pareto_pipeline("p", 2, 8, 1.0, 1.6, Priority::default()).unwrap();
        let report =
            Simulation::new(config(1, 4), PolicyConfig::ssr_strict(), OrderConfig::FifoPriority, vec![job])
                .run();
        let c = &report.counters;
        assert!(!c.is_zero());
        assert_eq!(c.tasks_assigned.get(), 16, "2 phases x 8 partitions, no copies");
        assert!(c.offer_rounds.get() >= report.events_processed, "one round per event");
        // Every processed event was popped; pops past the break are legal.
        assert!(c.events_popped.get() >= report.events_processed);
        assert!(c.events_pushed.get() >= c.events_popped.get());
        assert!(c.peak_event_queue_len.get() > 0);
        assert!(c.slots_scanned.get() > 0);
        assert!(c.peak_running_instances.get() as usize <= 4, "cluster has 4 slots");
    }

    #[test]
    fn span_profiling_only_observes() {
        // The two-plane rule, end to end: a profiled run must produce a
        // byte-identical report, and its spans must balance.
        struct Zero;
        impl ssr_perf::SpanClock for Zero {
            fn now_secs(&self) -> f64 {
                0.0
            }
        }
        let job = || pareto_pipeline("p", 2, 8, 1.0, 1.6, Priority::default()).unwrap();
        let build = || {
            Simulation::new(
                config(1, 4),
                PolicyConfig::ssr_strict(),
                OrderConfig::FifoPriority,
                vec![job()],
            )
        };
        let plain = build().run();
        let (profiled, _, profiler) = build()
            .with_span_profiler(Box::new(SpanProfiler::new(Box::new(Zero))))
            .run_instrumented();
        let profiler = profiler.expect("profiler attached");
        assert_eq!(profiler.open_spans(), 0, "all spans must close");
        let spans = profiler.report();
        let paths: Vec<&str> = spans.rows.iter().map(|r| r.path.as_str()).collect();
        assert!(paths.contains(&"run_loop"), "{paths:?}");
        assert!(paths.contains(&"run_loop/event_dispatch"), "{paths:?}");
        assert!(paths.contains(&"run_loop/offer_round"), "{paths:?}");
        assert_eq!(plain.jct_secs("p"), profiled.jct_secs("p"));
        assert_eq!(plain.events_processed, profiled.events_processed);
        assert_eq!(plain.counters, profiled.counters, "counters ignore the profiler");
    }

    #[test]
    fn progress_heartbeat_only_observes() {
        let job = || map_only("m", 8, constant(2.0), Priority::default()).unwrap();
        let build = |hb: bool| {
            let sim = Simulation::new(
                config(2, 2),
                PolicyConfig::WorkConserving,
                OrderConfig::FifoPriority,
                vec![job()],
            );
            if hb {
                sim.with_progress_heartbeat(1).run()
            } else {
                sim.run()
            }
        };
        let quiet = build(false);
        let chatty = build(true);
        assert_eq!(quiet.jct_secs("m"), chatty.jct_secs("m"));
        assert_eq!(quiet.events_processed, chatty.events_processed);
        assert_eq!(quiet.counters, chatty.counters);
    }
}
