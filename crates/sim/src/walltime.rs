//! The workspace's single sanctioned wall-clock access point.
//!
//! Determinism lint **D002** forbids `Instant`/`SystemTime` everywhere
//! except this module: real time must never influence simulated results,
//! so every wall-clock read in the workspace funnels through
//! [`Stopwatch`], whose readings only ever reach *stderr* timing output
//! (`--timing`) and `#[serde(skip)]` fields — never serialized reports.
//!
//! If you need timing somewhere new, take a [`Stopwatch`] here rather
//! than adding another file to the lint's allowlist.

use std::time::Instant;

/// A started wall-clock timer.
///
/// # Example
///
/// ```
/// use ssr_sim::walltime::Stopwatch;
///
/// let sw = Stopwatch::start();
/// assert!(sw.elapsed_secs() >= 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch { started: Instant::now() }
    }

    /// Seconds elapsed since [`start`](Stopwatch::start).
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic_nonnegative() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_secs();
        let b = sw.elapsed_secs();
        assert!(a >= 0.0);
        assert!(b >= a);
    }
}
