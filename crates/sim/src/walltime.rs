//! The workspace's single sanctioned wall-clock access point.
//!
//! Determinism lint **D002** forbids `Instant`/`SystemTime` everywhere
//! except this module: real time must never influence simulated results,
//! so every wall-clock read in the workspace funnels through
//! [`Stopwatch`], whose readings only ever reach *stderr* timing output
//! (`--timing`) and `#[serde(skip)]` fields — never serialized reports.
//!
//! If you need timing somewhere new, take a [`Stopwatch`] here rather
//! than adding another file to the lint's allowlist.

use std::time::Instant;

/// A started wall-clock timer.
///
/// # Example
///
/// ```
/// use ssr_sim::walltime::Stopwatch;
///
/// let sw = Stopwatch::start();
/// assert!(sw.elapsed_secs() >= 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch { started: Instant::now() }
    }

    /// Seconds elapsed since [`start`](Stopwatch::start).
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// The real-time [`SpanClock`](ssr_perf::SpanClock) behind `--profile`
/// span reports: a [`Stopwatch`] started at construction, read on demand.
///
/// This is the *only* real-time implementation of the trait in the
/// workspace; everything else injects scripted clocks. Keeping it here
/// means span profiling inherits the barrier's guarantee — wall-clock
/// readings reach stderr and explicitly wall-clock-plane reports only.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    origin: Stopwatch,
}

impl WallClock {
    /// Starts the clock's origin now.
    pub fn start() -> WallClock {
        WallClock { origin: Stopwatch::start() }
    }
}

impl ssr_perf::SpanClock for WallClock {
    fn now_secs(&self) -> f64 {
        self.origin.elapsed_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_perf::SpanClock;

    #[test]
    fn elapsed_is_monotonic_nonnegative() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_secs();
        let b = sw.elapsed_secs();
        assert!(a >= 0.0);
        assert!(b >= a);
    }

    #[test]
    fn wall_clock_reads_are_monotonic() {
        let clock = WallClock::start();
        let a = clock.now_secs();
        let b = clock.now_secs();
        assert!(a >= 0.0);
        assert!(b >= a);
    }
}
