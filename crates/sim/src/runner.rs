//! Deterministic parallel trial execution.
//!
//! Experiments in this crate are pure functions of their configuration
//! and seed, so independent trials can run on any number of worker
//! threads without changing a single output bit. This module provides the
//! three pieces that make that safe and convenient:
//!
//! * [`par_map`] — an order-preserving parallel map over a slice: workers
//!   claim items through an atomic cursor, but results are merged back in
//!   input order, so the output is identical to a sequential map at every
//!   worker count.
//! * worker-count resolution ([`worker_count`] / [`resolve_workers`]) with
//!   the precedence *explicit `--jobs` flag > `SSR_JOBS` environment
//!   variable > available hardware parallelism*.
//! * [`TrialGrid`] — expands a set of [`Experiment`]s × repetitions into
//!   independent [`Trial`]s, each with its own RNG stream derived purely
//!   from `(root_seed, trial index)` ([`SimRng::stream`]), and runs them
//!   on the pool.
//!
//! [`SimRng::stream`]: ssr_simcore::rng::SimRng::stream

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::Serialize;

use crate::experiment::{Experiment, ExperimentOutcome};

/// Process-wide worker-count override (0 = none); set by binaries from
/// their `--jobs` flag so library code never parses CLI arguments.
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets (or, with `None`, clears) the explicit worker-count override.
///
/// `Some(0)` is treated as `Some(1)`: the pool always has at least one
/// worker.
pub fn set_worker_override(workers: Option<usize>) {
    WORKER_OVERRIDE.store(workers.map_or(0, |w| w.max(1)), Ordering::Relaxed);
}

/// The number of workers trial execution uses right now: the explicit
/// override if set, else `SSR_JOBS`, else the machine's available
/// parallelism.
pub fn worker_count() -> usize {
    let flag = match WORKER_OVERRIDE.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    };
    let env = std::env::var("SSR_JOBS").ok().and_then(|v| v.trim().parse().ok());
    let available = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    resolve_workers(flag, env, available)
}

/// Resolves the worker count from its three sources, in precedence order:
/// explicit flag, then environment, then available parallelism. Never
/// returns 0.
pub fn resolve_workers(flag: Option<usize>, env: Option<usize>, available: usize) -> usize {
    flag.or(env).unwrap_or(available).max(1)
}

/// Maps `f` over `items` on up to `workers` threads, returning results in
/// input order.
///
/// Workers claim items through a shared atomic cursor, so the schedule is
/// nondeterministic — but each result lands in its item's slot and the
/// merge happens in input order, making the output byte-identical to
/// `items.iter().map(f).collect()` regardless of worker count or thread
/// timing. With one worker (or at most one item) no threads are spawned.
///
/// # Panics
///
/// Propagates a panic from `f` once all workers have stopped.
pub fn par_map<T, U, F>(workers: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = workers.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot is filled once the scope joins")
        })
        .collect()
}

/// One independent unit of work expanded from a [`TrialGrid`]: a single
/// repetition of a single experiment, with its own derived seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Trial {
    /// Position in grid order (experiment-major, repetition-minor).
    pub index: u64,
    /// Index of the experiment within the grid.
    pub experiment: usize,
    /// Repetition number within the experiment.
    pub repetition: u32,
    /// The trial's seed: `root_seed ^ index`, so each trial reads an
    /// independent, individually reproducible RNG stream
    /// ([`ssr_simcore::rng::SimRng::stream`]).
    pub seed: u64,
}

/// The outcome of one trial, tagged with its grid coordinates and timing.
#[derive(Debug, Clone, Serialize)]
pub struct TrialResult {
    /// The trial that produced this result.
    pub trial: Trial,
    /// The experiment outcome (deterministic per trial seed).
    pub outcome: ExperimentOutcome,
    /// Wall-clock seconds this trial took on its worker. Excluded from
    /// serialization to keep results byte-identical across runs.
    #[serde(skip)]
    pub wall_secs: f64,
}

impl TrialResult {
    /// Simulation events processed by this trial (contended run + alone
    /// baselines).
    pub fn events_processed(&self) -> u64 {
        self.outcome.events_processed
    }
}

/// Merges the work counters of `results` in trial order.
///
/// Results arrive from [`par_map`] already merged back in grid order, so
/// the merged counters — like everything else derived from a grid — are
/// identical at every worker count.
pub fn merged_counters(results: &[TrialResult]) -> ssr_perf::WorkCounters {
    let merged = ssr_perf::WorkCounters::new();
    for result in results {
        merged.merge(&result.outcome.counters);
    }
    merged
}

/// Aggregate execution statistics of a grid run — the `--timing` report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridStats {
    /// Trials executed.
    pub trials: usize,
    /// Simulation events processed across all trials.
    pub events_processed: u64,
    /// Sum of per-trial wall-clock seconds (total CPU-side work).
    pub busy_secs: f64,
    /// The longest single trial, the lower bound on parallel makespan.
    pub max_trial_secs: f64,
}

impl GridStats {
    /// Aggregates the stats of a slice of results.
    pub fn of(results: &[TrialResult]) -> GridStats {
        GridStats {
            trials: results.len(),
            events_processed: results.iter().map(TrialResult::events_processed).sum(),
            busy_secs: results.iter().map(|r| r.wall_secs).sum(),
            max_trial_secs: results.iter().map(|r| r.wall_secs).fold(0.0, f64::max),
        }
    }
}

/// A grid of experiments × repetitions, expanded into independent
/// [`Trial`]s and executed on the worker pool.
///
/// Trials are merged in grid order and each derives its seed purely from
/// `(root_seed, trial index)`, so a grid's results — and anything
/// serialized from them — are identical at every worker count, and any
/// single trial can be reproduced in isolation.
#[derive(Debug, Clone)]
pub struct TrialGrid {
    experiments: Vec<Experiment>,
    repetitions: u32,
    root_seed: u64,
}

impl TrialGrid {
    /// An empty grid rooted at `root_seed`, with one repetition per
    /// experiment.
    pub fn new(root_seed: u64) -> Self {
        TrialGrid { experiments: Vec::new(), repetitions: 1, root_seed }
    }

    /// Adds one experiment.
    #[must_use]
    pub fn experiment(mut self, experiment: Experiment) -> Self {
        self.experiments.push(experiment);
        self
    }

    /// Adds several experiments.
    #[must_use]
    pub fn experiments(mut self, experiments: impl IntoIterator<Item = Experiment>) -> Self {
        self.experiments.extend(experiments);
        self
    }

    /// Sets the number of repetitions per experiment (minimum 1).
    #[must_use]
    pub fn repetitions(mut self, repetitions: u32) -> Self {
        self.repetitions = repetitions.max(1);
        self
    }

    /// The root seed trials derive their streams from.
    pub fn root_seed(&self) -> u64 {
        self.root_seed
    }

    /// Number of trials the grid expands to.
    pub fn len(&self) -> usize {
        self.experiments.len() * self.repetitions as usize
    }

    /// `true` if the grid holds no experiments.
    pub fn is_empty(&self) -> bool {
        self.experiments.is_empty()
    }

    /// Expands the grid into trials, in grid order: all repetitions of
    /// experiment 0, then experiment 1, and so on.
    pub fn trials(&self) -> Vec<Trial> {
        let mut trials = Vec::with_capacity(self.len());
        for experiment in 0..self.experiments.len() {
            for repetition in 0..self.repetitions {
                let index = trials.len() as u64;
                trials.push(Trial {
                    index,
                    experiment,
                    repetition,
                    seed: self.root_seed ^ index,
                });
            }
        }
        trials
    }

    /// Runs every trial on [`worker_count`] workers.
    pub fn run(&self) -> Vec<TrialResult> {
        self.run_with(worker_count())
    }

    /// Runs every trial on exactly `workers` workers, merging results in
    /// grid order.
    pub fn run_with(&self, workers: usize) -> Vec<TrialResult> {
        let trials = self.trials();
        par_map(workers, &trials, |trial| {
            let started = crate::walltime::Stopwatch::start();
            let outcome =
                self.experiments[trial.experiment].clone().with_seed(trial.seed).run();
            TrialResult { trial: *trial, outcome, wall_secs: started.elapsed_secs() }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{OrderConfig, PolicyConfig};
    use crate::simulation::SimConfig;
    use ssr_cluster::ClusterSpec;
    use ssr_dag::Priority;
    use ssr_simcore::dist::uniform;
    use ssr_workload::synthetic::map_only;

    fn tiny_experiment(tasks: u32) -> Experiment {
        let config = SimConfig::new(ClusterSpec::new(1, 2).unwrap()).with_seed(0);
        Experiment::new(config, PolicyConfig::WorkConserving, OrderConfig::FifoPriority)
            .foreground([map_only("fg", tasks, uniform(1.0, 2.0), Priority::new(10)).unwrap()])
    }

    #[test]
    fn resolve_workers_precedence() {
        // Explicit flag beats everything.
        assert_eq!(resolve_workers(Some(3), Some(5), 8), 3);
        // Environment beats the hardware default.
        assert_eq!(resolve_workers(None, Some(5), 8), 5);
        // Hardware default otherwise.
        assert_eq!(resolve_workers(None, None, 8), 8);
        // Never zero workers.
        assert_eq!(resolve_workers(None, None, 0), 1);
        assert_eq!(resolve_workers(Some(0), Some(5), 8), 1);
    }

    #[test]
    fn override_takes_precedence_until_cleared() {
        // Serialized against other tests touching the global by running
        // set + read + clear in one test.
        set_worker_override(Some(2));
        let flag = match WORKER_OVERRIDE.load(Ordering::Relaxed) {
            0 => None,
            n => Some(n),
        };
        assert_eq!(flag, Some(2));
        assert_eq!(resolve_workers(flag, Some(7), 8), 2);
        set_worker_override(Some(0));
        assert_eq!(WORKER_OVERRIDE.load(Ordering::Relaxed), 1, "Some(0) clamps to 1");
        set_worker_override(None);
        assert_eq!(WORKER_OVERRIDE.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 8, 200] {
            assert_eq!(par_map(workers, &items, |x| x * x), expected);
        }
    }

    #[test]
    fn par_map_on_empty_slice() {
        let out: Vec<u64> = par_map(4, &[], |x: &u64| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn grid_expands_in_experiment_major_order_with_derived_seeds() {
        let grid = TrialGrid::new(0xABCD)
            .experiments([tiny_experiment(2), tiny_experiment(3)])
            .repetitions(3);
        assert_eq!(grid.len(), 6);
        let trials = grid.trials();
        assert_eq!(trials.len(), 6);
        for (i, t) in trials.iter().enumerate() {
            assert_eq!(t.index, i as u64);
            assert_eq!(t.experiment, i / 3);
            assert_eq!(t.repetition, (i % 3) as u32);
            assert_eq!(t.seed, 0xABCD ^ i as u64);
        }
    }

    #[test]
    fn empty_grid_runs_to_no_results() {
        let grid = TrialGrid::new(1);
        assert!(grid.is_empty());
        assert_eq!(grid.len(), 0);
        assert!(grid.run_with(4).is_empty());
    }

    #[test]
    fn repetitions_floor_at_one() {
        let grid = TrialGrid::new(0).experiment(tiny_experiment(2)).repetitions(0);
        assert_eq!(grid.len(), 1);
    }

    #[test]
    fn grid_results_are_identical_across_worker_counts() {
        let grid =
            TrialGrid::new(99).experiments([tiny_experiment(4), tiny_experiment(6)]).repetitions(2);
        let sequential = grid.run_with(1);
        let parallel = grid.run_with(4);
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.trial, p.trial);
            assert_eq!(s.outcome.policy, p.outcome.policy);
            assert_eq!(s.outcome.foreground, p.outcome.foreground);
            assert_eq!(s.events_processed(), p.events_processed());
        }
    }

    #[test]
    fn distinct_trials_see_distinct_streams() {
        let grid = TrialGrid::new(5).experiment(tiny_experiment(8)).repetitions(2);
        let results = grid.run_with(2);
        // uniform(1, 2) task durations: different seeds give different
        // alone JCTs for the same experiment.
        let a = results[0].outcome.foreground[0].alone_jct_secs;
        let b = results[1].outcome.foreground[0].alone_jct_secs;
        assert_ne!(a, b, "repetitions must not reuse one RNG stream");
    }

    #[test]
    fn par_map_overlaps_independent_work() {
        // Wait-bound items: four 100 ms waits on 4 workers must complete
        // well under the 400 ms a sequential map needs. Holds even on a
        // single hardware core, since blocked threads overlap.
        let items = [0u8; 4];
        let started = std::time::Instant::now();
        par_map(4, &items, |_| std::thread::sleep(std::time::Duration::from_millis(100)));
        assert!(
            started.elapsed() < std::time::Duration::from_millis(350),
            "4 workers took {:?} for 4 x 100ms of independent waiting",
            started.elapsed()
        );
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            /// The counter plane obeys the same contract as every other
            /// grid output: merged in trial order, byte-identical at any
            /// worker count.
            #[test]
            fn merged_counters_are_worker_count_invariant(
                seed in 0u64..1_000,
                repetitions in 1u32..3,
            ) {
                let grid = TrialGrid::new(seed)
                    .experiments([tiny_experiment(4), tiny_experiment(6)])
                    .repetitions(repetitions);
                let solo = merged_counters(&grid.run_with(1));
                let pool = merged_counters(&grid.run_with(8));
                prop_assert!(!solo.is_zero(), "trials must count work");
                prop_assert_eq!(solo.render_json(), pool.render_json());
                prop_assert_eq!(solo.render_text(), pool.render_text());
            }
        }
    }

    #[test]
    fn grid_stats_aggregate() {
        let grid = TrialGrid::new(3).experiment(tiny_experiment(4)).repetitions(2);
        let results = grid.run_with(2);
        let stats = GridStats::of(&results);
        assert_eq!(stats.trials, 2);
        assert_eq!(
            stats.events_processed,
            results.iter().map(TrialResult::events_processed).sum::<u64>()
        );
        assert!(stats.events_processed > 0);
        assert!(stats.busy_secs >= stats.max_trial_secs);
    }
}
