//! Metrics collected by a simulation run.

use serde::{Deserialize, Serialize};
use ssr_dag::{JobId, Priority};
use ssr_perf::WorkCounters;
use ssr_simcore::{SimDuration, SimTime};

/// The outcome of one job in a simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// The job's name (as given by the workload generator).
    pub name: String,
    /// The id it ran under (raw, for cross-referencing).
    pub job_id: u64,
    /// Its scheduling priority level.
    pub priority: i32,
    /// Submission time (seconds).
    pub arrival_secs: f64,
    /// Completion time (seconds), if the job finished.
    pub completed_secs: Option<f64>,
    /// Job completion time = completion − arrival.
    #[serde(skip)]
    pub jct: SimDuration,
}

impl JobResult {
    /// JCT in seconds (0 if the job never finished).
    pub fn jct_secs(&self) -> f64 {
        self.jct.as_secs_f64()
    }
}

/// One sample of the running-task time series (recorded at every event
/// when tracking is enabled) — the data behind Figs. 5 and 13.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSample {
    /// Sample time (seconds).
    pub time_secs: f64,
    /// `(job name, running task count)` for each tracked job.
    pub running: Vec<(String, usize)>,
}

/// One task-instance execution record (enabled via
/// [`SimConfig::record_trace`]): everything needed to draw a Gantt chart
/// or audit placements.
///
/// [`SimConfig::record_trace`]: crate::SimConfig::record_trace
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskTraceRecord {
    /// Owning job's name.
    pub job: String,
    /// Phase index within the job.
    pub stage: u32,
    /// Partition index within the phase.
    pub partition: u32,
    /// Attempt number (0 = original, >= 1 = copy).
    pub attempt: u32,
    /// Slot the instance ran on.
    pub slot: u32,
    /// Placement time (seconds).
    pub start_secs: f64,
    /// Finish or kill time (seconds).
    pub end_secs: f64,
    /// Locality level of the placement.
    pub level: String,
    /// `true` for straggler-mitigation / speculation copies.
    pub speculative: bool,
    /// `"finished"` or `"killed"`.
    pub outcome: String,
}

/// The full report of one simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// The reservation policy that ran.
    pub policy: String,
    /// The job-ordering policy that ran.
    pub order: String,
    /// Per-job outcomes, in submission order.
    pub jobs: Vec<JobResult>,
    /// `true` if every submitted job completed before the horizon.
    pub completed: bool,
    /// Time of the last job completion (seconds).
    pub makespan_secs: f64,
    /// Slot-seconds spent running tasks.
    pub busy_slot_secs: f64,
    /// Slot-seconds spent reserved but idle — the §IV utilization loss.
    pub reserved_idle_slot_secs: f64,
    /// Slot-seconds spent free.
    pub free_slot_secs: f64,
    /// Straggler copies launched (§IV-C).
    pub speculative_copies: u64,
    /// Task instances killed because a sibling finished first.
    pub kills: u64,
    /// Task placements per locality level
    /// `[PROCESS_LOCAL, NODE_LOCAL, RACK_LOCAL, ANY]`.
    pub locality_counts: [u64; 4],
    /// Running-task time series for tracked jobs.
    pub timeseries: Vec<TimeSample>,
    /// Per-instance execution trace (empty unless enabled).
    pub trace: Vec<TaskTraceRecord>,
    /// Events processed by the run loop. Deterministic per seed, so it is
    /// serialized and pinned by the determinism regression tests.
    pub events_processed: u64,
    /// Wall-clock seconds the run took. Machine- and load-dependent, so
    /// it is excluded from serialization: serialized reports stay
    /// byte-identical across runs and worker counts.
    #[serde(skip)]
    pub wall_secs: f64,
    /// Deterministic work counters accumulated by the scheduler and the
    /// event queue over the run. Excluded from serialization — counters
    /// carry their own sorted-key report
    /// ([`WorkCounters::render_json`]), and keeping them out of
    /// `SimReport` JSON preserves the byte-pinned figure artifacts.
    #[serde(skip)]
    pub counters: WorkCounters,
}

impl SimReport {
    /// Fraction of slot time spent busy over the makespan.
    pub fn utilization(&self) -> f64 {
        let total = self.busy_slot_secs + self.reserved_idle_slot_secs + self.free_slot_secs;
        if total <= 0.0 {
            0.0
        } else {
            self.busy_slot_secs / total
        }
    }

    /// The result of the first job with the given name.
    pub fn job(&self, name: &str) -> Option<&JobResult> {
        self.jobs.iter().find(|j| j.name == name)
    }

    /// JCT (seconds) of the first job with the given name, if it finished.
    pub fn jct_secs(&self, name: &str) -> Option<f64> {
        let j = self.job(name)?;
        j.completed_secs?;
        Some(j.jct_secs())
    }

    /// Mean JCT (seconds) over jobs whose priority equals `priority`.
    pub fn mean_jct_at_priority(&self, priority: Priority) -> Option<f64> {
        let jcts: Vec<f64> = self
            .jobs
            .iter()
            .filter(|j| j.priority == priority.level() && j.completed_secs.is_some())
            .map(JobResult::jct_secs)
            .collect();
        if jcts.is_empty() {
            None
        } else {
            Some(jcts.iter().sum::<f64>() / jcts.len() as f64)
        }
    }
}

/// Internal collector the simulation writes into.
#[derive(Debug)]
pub(crate) struct Collector {
    pub(crate) results: Vec<(JobId, JobResult)>,
    pub(crate) busy_slot_secs: f64,
    pub(crate) reserved_idle_slot_secs: f64,
    pub(crate) free_slot_secs: f64,
    pub(crate) speculative_copies: u64,
    pub(crate) kills: u64,
    pub(crate) locality_counts: [u64; 4],
    pub(crate) timeseries: Vec<TimeSample>,
    pub(crate) trace: Vec<TaskTraceRecord>,
    pub(crate) makespan: SimTime,
    pub(crate) events_processed: u64,
}

impl Collector {
    pub(crate) fn new() -> Self {
        Collector {
            results: Vec::new(),
            busy_slot_secs: 0.0,
            reserved_idle_slot_secs: 0.0,
            free_slot_secs: 0.0,
            speculative_copies: 0,
            kills: 0,
            locality_counts: [0; 4],
            timeseries: Vec::new(),
            trace: Vec::new(),
            makespan: SimTime::ZERO,
            events_processed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            policy: "p".into(),
            order: "o".into(),
            jobs: vec![
                JobResult {
                    name: "a".into(),
                    job_id: 0,
                    priority: 10,
                    arrival_secs: 0.0,
                    completed_secs: Some(5.0),
                    jct: SimDuration::from_secs(5),
                },
                JobResult {
                    name: "b".into(),
                    job_id: 1,
                    priority: 0,
                    arrival_secs: 1.0,
                    completed_secs: Some(11.0),
                    jct: SimDuration::from_secs(10),
                },
                JobResult {
                    name: "c".into(),
                    job_id: 2,
                    priority: 0,
                    arrival_secs: 2.0,
                    completed_secs: None,
                    jct: SimDuration::ZERO,
                },
            ],
            completed: false,
            makespan_secs: 11.0,
            busy_slot_secs: 30.0,
            reserved_idle_slot_secs: 10.0,
            free_slot_secs: 4.0,
            speculative_copies: 2,
            kills: 1,
            locality_counts: [5, 1, 0, 2],
            timeseries: vec![],
            trace: vec![],
            events_processed: 12,
            wall_secs: 0.0,
            counters: WorkCounters::default(),
        }
    }

    #[test]
    fn utilization_from_integrals() {
        let r = report();
        assert!((r.utilization() - 30.0 / 44.0).abs() < 1e-12);
    }

    #[test]
    fn job_lookup() {
        let r = report();
        assert_eq!(r.jct_secs("a"), Some(5.0));
        assert_eq!(r.jct_secs("c"), None, "unfinished job has no JCT");
        assert_eq!(r.jct_secs("nope"), None);
    }

    #[test]
    fn mean_jct_by_priority() {
        let r = report();
        assert_eq!(r.mean_jct_at_priority(Priority::new(10)), Some(5.0));
        assert_eq!(r.mean_jct_at_priority(Priority::new(0)), Some(10.0));
        assert_eq!(r.mean_jct_at_priority(Priority::new(7)), None);
    }

    #[test]
    fn zero_total_utilization() {
        let mut r = report();
        r.busy_slot_secs = 0.0;
        r.reserved_idle_slot_secs = 0.0;
        r.free_slot_secs = 0.0;
        assert_eq!(r.utilization(), 0.0);
    }

}
