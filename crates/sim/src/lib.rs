//! # ssr-sim
//!
//! The discrete-event cluster simulator that drives the `ssr-scheduler`
//! framework: it realises task durations (intrinsic sample × locality
//! slowdown), delivers task-finish / reservation-expiry / locality-unlock
//! events, cancels the finish events of killed straggler copies, and
//! collects the metrics the paper reports — job completion time,
//! *slowdown* (JCT normalised by the run-alone JCT, the paper's §VI
//! metric), slot utilization and reserved-idle time, and per-job running
//! task time series (Figs. 5 and 13).
//!
//! * [`Simulation`] — one end-to-end simulated run,
//! * [`SimReport`] / [`JobResult`] — the collected metrics,
//! * [`experiment`] — the contention harness: foreground vs background
//!   workloads, run-alone baselines, slowdown computation and repetition.
//!
//! # Example
//!
//! ```
//! use ssr_sim::{Simulation, SimConfig, PolicyConfig, OrderConfig};
//! use ssr_cluster::ClusterSpec;
//! use ssr_workload::synthetic::map_only;
//! use ssr_dag::Priority;
//! use ssr_simcore::dist::constant;
//!
//! let job = map_only("demo", 8, constant(2.0), Priority::default())?;
//! let config = SimConfig::new(ClusterSpec::new(2, 2)?).with_seed(7);
//! let report = Simulation::new(config, PolicyConfig::WorkConserving, OrderConfig::FifoPriority, vec![job])
//!     .run();
//! assert!(report.completed);
//! // 8 tasks of 2 s on 4 slots: two waves, JCT = 4 s.
//! assert_eq!(report.jobs[0].jct.as_secs_f64(), 4.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod report;
pub mod runner;
pub mod simulation;
pub mod walltime;

pub use experiment::{Experiment, ExperimentOutcome, OrderConfig, PolicyConfig, SlowdownRow};
pub use report::{JobResult, SimReport, TaskTraceRecord, TimeSample};
pub use runner::{merged_counters, par_map, worker_count, GridStats, Trial, TrialGrid, TrialResult};
pub use simulation::{SimConfig, Simulation};
pub use ssr_faults::{FaultEvent, FaultKind, FaultPlan};
