//! The contention-experiment harness: foreground jobs vs background
//! workloads, run-alone baselines, and the paper's *slowdown* metric
//! (§VI: measured JCT normalised by the minimum JCT when running alone).

use serde::{Deserialize, Serialize};
use ssr_cluster::ClusterSpec;
use ssr_core::{SpeculativeReservation, SsrConfig};
use ssr_dag::{JobSpec, Priority};
use ssr_perf::SpanProfiler;
use ssr_scheduler::{
    Fair, Fifo, FifoPriority, JobOrder, ReservationPolicy, StaticReservation, TimeoutReservation,
    WorkConserving,
};
use ssr_simcore::SimDuration;

use crate::report::SimReport;
use crate::simulation::{SimConfig, Simulation};

/// A cloneable description of a reservation policy, so experiments can
/// instantiate fresh policy state per run.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyConfig {
    /// The work-conserving status quo (no reservations).
    WorkConserving,
    /// Blind timeout-based reservation (§III-A.2).
    Timeout(SimDuration),
    /// A static pool of `count` slots for priorities ≥ `class` (§III-A.1).
    Static {
        /// Pool size in slots.
        count: u32,
        /// Priority class served by the pool.
        class: Priority,
    },
    /// Speculative slot reservation (Algorithm 1 + §IV).
    Ssr(SsrConfig),
}

impl PolicyConfig {
    /// SSR with strict isolation (`P = 1`), the paper's default.
    pub fn ssr_strict() -> Self {
        PolicyConfig::Ssr(SsrConfig::default())
    }

    /// SSR with strict isolation and §IV-C straggler mitigation.
    pub fn ssr_strict_with_stragglers() -> Self {
        PolicyConfig::Ssr(
            SsrConfig::builder()
                .mitigate_stragglers(true)
                .build()
                .expect("valid static configuration"),
        )
    }

    /// SSR reserving only for jobs at or above `level` — the paper's
    /// deployment model (foreground opt-in; batch jobs stay
    /// work-conserving).
    ///
    /// # Panics
    ///
    /// Never panics; the default configuration is always valid.
    pub fn ssr_foreground_only(level: i32) -> Self {
        PolicyConfig::Ssr(
            SsrConfig::builder()
                .reserve_only_at_or_above(level)
                .build()
                .expect("valid static configuration"),
        )
    }

    /// SSR with isolation target `p` (the §IV-B knob).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn ssr_with_isolation(p: f64) -> Self {
        PolicyConfig::Ssr(
            SsrConfig::builder()
                .isolation_target(p)
                .build()
                .expect("isolation target must lie in [0, 1]"),
        )
    }

    /// SSR with pre-reservation threshold `r` (Fig. 16's sweep).
    ///
    /// # Panics
    ///
    /// Panics if `r` is outside `[0, 1]`.
    pub fn ssr_with_prereserve_threshold(r: f64) -> Self {
        PolicyConfig::Ssr(
            SsrConfig::builder()
                .prereserve_threshold(r)
                .build()
                .expect("threshold must lie in [0, 1]"),
        )
    }

    /// Instantiates the policy.
    pub fn build(&self) -> Box<dyn ReservationPolicy> {
        match self {
            PolicyConfig::WorkConserving => Box::new(WorkConserving),
            PolicyConfig::Timeout(timeout) => Box::new(TimeoutReservation::new(*timeout)),
            PolicyConfig::Static { count, class } => {
                Box::new(StaticReservation::new(*count, *class))
            }
            PolicyConfig::Ssr(config) => Box::new(SpeculativeReservation::with_config(*config)),
        }
    }

    /// A short label for tables.
    pub fn label(&self) -> String {
        match self {
            PolicyConfig::WorkConserving => "work-conserving".to_owned(),
            PolicyConfig::Timeout(t) => format!("timeout({t})"),
            PolicyConfig::Static { count, .. } => format!("static({count})"),
            PolicyConfig::Ssr(c) => format!(
                "ssr(P={},R={}{})",
                c.isolation_target(),
                c.prereserve_threshold(),
                if c.mitigate_stragglers() { ",strag" } else { "" }
            ),
        }
    }
}

/// A cloneable description of the job-ordering policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderConfig {
    /// Strict priority with FIFO tie-break.
    FifoPriority,
    /// Dynamic-priority fair sharing.
    Fair,
    /// Pure FIFO.
    Fifo,
}

impl OrderConfig {
    /// Instantiates the order.
    pub fn build(&self) -> Box<dyn JobOrder> {
        match self {
            OrderConfig::FifoPriority => Box::new(FifoPriority),
            OrderConfig::Fair => Box::new(Fair),
            OrderConfig::Fifo => Box::new(Fifo),
        }
    }
}

/// One foreground job's slowdown measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlowdownRow {
    /// The foreground job's name.
    pub name: String,
    /// JCT running alone in the cluster (seconds) — the denominator.
    pub alone_jct_secs: f64,
    /// JCT in contention (seconds).
    pub contended_jct_secs: f64,
    /// `contended / alone`, the paper's §VI metric.
    pub slowdown: f64,
}

/// The outcome of one contention experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentOutcome {
    /// Policy label.
    pub policy: String,
    /// Per-foreground-job slowdowns.
    pub foreground: Vec<SlowdownRow>,
    /// The full contended-run report.
    pub contended: SimReport,
    /// Events processed across the contended run and every alone
    /// baseline. Deterministic per seed.
    pub events_processed: u64,
    /// Wall-clock seconds the whole experiment took. Excluded from
    /// serialization so outcomes stay byte-identical across runs and
    /// worker counts.
    #[serde(skip)]
    pub wall_secs: f64,
    /// Deterministic work counters merged over the contended run and
    /// every alone baseline, in foreground order — identical at any
    /// worker count. Excluded from serialization; counters carry their
    /// own sorted-key report.
    #[serde(skip)]
    pub counters: ssr_perf::WorkCounters,
}

impl ExperimentOutcome {
    /// Mean foreground slowdown.
    pub fn mean_slowdown(&self) -> f64 {
        if self.foreground.is_empty() {
            return 0.0;
        }
        self.foreground.iter().map(|r| r.slowdown).sum::<f64>() / self.foreground.len() as f64
    }

    /// The slowdown row for a named foreground job.
    pub fn slowdown_of(&self, name: &str) -> Option<&SlowdownRow> {
        self.foreground.iter().find(|r| r.name == name)
    }
}

/// The JSONL decision trace of one run-alone baseline, produced by
/// [`Experiment::run_traced_with_baselines`].
///
/// The alone run is the attribution reference: `ssr-explain` subtracts
/// its per-cause waits from the contended run's to decompose the
/// slowdown gap.
#[derive(Debug, Clone, PartialEq)]
pub struct AloneTrace {
    /// The foreground job's name.
    pub job: String,
    /// The complete JSONL trace document of the job running alone.
    pub jsonl: String,
}

/// What [`Experiment::run_instrumented`] hands back: the outcome plus
/// every attached instrument returned for harvesting — the contended
/// run's trace sink, the alone-baseline traces, and the span profiler.
pub type InstrumentedOutcome = (
    ExperimentOutcome,
    Option<Box<dyn ssr_trace::TraceSink>>,
    Vec<AloneTrace>,
    Option<Box<SpanProfiler>>,
);

/// A contention experiment: foreground jobs (measured) run against
/// background jobs (load), each foreground job also measured running
/// alone to obtain the slowdown denominator.
#[derive(Debug, Clone)]
pub struct Experiment {
    sim_config: SimConfig,
    policy: PolicyConfig,
    order: OrderConfig,
    foreground: Vec<JobSpec>,
    background: Vec<JobSpec>,
    progress_every: Option<u64>,
}

impl Experiment {
    /// Creates an experiment on the given cluster configuration.
    pub fn new(sim_config: SimConfig, policy: PolicyConfig, order: OrderConfig) -> Self {
        Experiment {
            sim_config,
            policy,
            order,
            foreground: Vec::new(),
            background: Vec::new(),
            progress_every: None,
        }
    }

    /// Enables the contended run's stderr progress heartbeat every
    /// `every_events` processed events (wall-clock plane; run-alone
    /// baselines stay quiet).
    #[must_use]
    pub fn with_progress_heartbeat(mut self, every_events: u64) -> Self {
        self.progress_every = Some(every_events.max(1));
        self
    }

    /// Adds measured foreground jobs.
    pub fn foreground(mut self, jobs: impl IntoIterator<Item = JobSpec>) -> Self {
        self.foreground.extend(jobs);
        self
    }

    /// Adds background load.
    pub fn background(mut self, jobs: impl IntoIterator<Item = JobSpec>) -> Self {
        self.background.extend(jobs);
        self
    }

    /// The configured cluster.
    pub fn cluster(&self) -> &ClusterSpec {
        self.sim_config.cluster()
    }

    /// Re-seeds the underlying simulation — the hook the trial runner uses
    /// to give each repetition of a grid its own RNG stream.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.sim_config = self.sim_config.with_seed(seed);
        self
    }

    /// Runs one foreground job alone (work-conserving — reservations are
    /// irrelevant without contention, and any injected fault plan is
    /// stripped: the baseline measures the undisturbed job) and returns
    /// the full report.
    fn alone_report(&self, job: &JobSpec) -> SimReport {
        Simulation::new(
            self.sim_config.clone().without_faults(),
            PolicyConfig::WorkConserving,
            self.order,
            vec![job.clone()],
        )
        .run()
    }

    /// [`alone_report`](Self::alone_report) with a JSONL decision-trace
    /// sink attached, returning the report and the rendered trace.
    fn alone_report_traced(&self, job: &JobSpec) -> (SimReport, String) {
        let (report, sink) = Simulation::new(
            self.sim_config.clone().without_faults(),
            PolicyConfig::WorkConserving,
            self.order,
            vec![job.clone()],
        )
        .with_trace_sink(Box::new(ssr_trace::JsonlSink::new()))
        .run_traced();
        let jsonl = sink
            .expect("sink attached above")
            .into_any()
            .downcast::<ssr_trace::JsonlSink>()
            .expect("JsonlSink recovered")
            .finish();
        (report, jsonl)
    }

    /// Runs one foreground job alone (work-conserving — reservations are
    /// irrelevant without contention) and returns its JCT in seconds.
    ///
    /// # Panics
    ///
    /// Panics if the job does not finish within the horizon.
    pub fn run_alone(&self, job: &JobSpec) -> f64 {
        self.alone_report(job)
            .jct_secs(job.name())
            .unwrap_or_else(|| panic!("job {} did not finish alone", job.name()))
    }

    /// Runs the contended mix and returns the full report.
    pub fn run_contended(&self) -> SimReport {
        self.run_contended_traced(None).0
    }

    /// Runs the contended mix with an optional scheduler decision-trace
    /// sink attached, returning the report and the sink (pass-through
    /// `None` when no sink was given).
    pub fn run_contended_traced(
        &self,
        sink: Option<Box<dyn ssr_trace::TraceSink>>,
    ) -> (SimReport, Option<Box<dyn ssr_trace::TraceSink>>) {
        let (report, sink, _) = self.run_contended_instrumented(sink, None);
        (report, sink)
    }

    /// [`run_contended_traced`](Experiment::run_contended_traced) plus an
    /// optional wall-clock span profiler, returned with its aggregated
    /// spans after the run.
    fn run_contended_instrumented(
        &self,
        sink: Option<Box<dyn ssr_trace::TraceSink>>,
        profiler: Option<Box<SpanProfiler>>,
    ) -> (SimReport, Option<Box<dyn ssr_trace::TraceSink>>, Option<Box<SpanProfiler>>) {
        let mut jobs = self.foreground.clone();
        jobs.extend(self.background.iter().cloned());
        let mut sim =
            Simulation::new(self.sim_config.clone(), self.policy.clone(), self.order, jobs);
        if let Some(sink) = sink {
            sim = sim.with_trace_sink(sink);
        }
        if let Some(profiler) = profiler {
            sim = sim.with_span_profiler(profiler);
        }
        if let Some(every) = self.progress_every {
            sim = sim.with_progress_heartbeat(every);
        }
        sim.run_instrumented()
    }

    /// Runs the complete experiment: alone baselines + contended run +
    /// slowdowns. The per-job alone baselines are independent simulations
    /// and fan out across the runner's worker pool; results are merged in
    /// foreground order, so the outcome is identical at any worker count.
    ///
    /// # Panics
    ///
    /// Panics if a foreground job fails to finish in either setting.
    pub fn run(&self) -> ExperimentOutcome {
        self.run_traced(None).0
    }

    /// [`run`](Experiment::run) with an optional decision-trace sink on
    /// the *contended* simulation. The alone baselines are not traced on
    /// this path; use
    /// [`run_traced_with_baselines`](Experiment::run_traced_with_baselines)
    /// when the attribution reference is needed.
    pub fn run_traced(
        &self,
        sink: Option<Box<dyn ssr_trace::TraceSink>>,
    ) -> (ExperimentOutcome, Option<Box<dyn ssr_trace::TraceSink>>) {
        let (outcome, sink, _, _) = self.run_instrumented(sink, None, false);
        (outcome, sink)
    }

    /// [`run_traced`](Experiment::run_traced) plus a JSONL decision trace
    /// of every run-alone baseline, in foreground order.
    ///
    /// Attaching the baseline sinks never changes the simulations
    /// themselves (tracing is observation-only), so the outcome is
    /// byte-identical to [`run`](Experiment::run); the explicit method
    /// keeps the common untraced path free of even the sink allocation.
    pub fn run_traced_with_baselines(
        &self,
        sink: Option<Box<dyn ssr_trace::TraceSink>>,
    ) -> (ExperimentOutcome, Option<Box<dyn ssr_trace::TraceSink>>, Vec<AloneTrace>) {
        let (outcome, sink, alone, _) = self.run_instrumented(sink, None, true);
        (outcome, sink, alone)
    }

    /// The fully instrumented experiment run: optional decision-trace
    /// sink and wall-clock span profiler on the contended simulation,
    /// optional JSONL traces of the alone baselines. Instrumentation is
    /// observation-only — the outcome is byte-identical to
    /// [`run`](Experiment::run) whatever is attached.
    pub fn run_instrumented(
        &self,
        sink: Option<Box<dyn ssr_trace::TraceSink>>,
        profiler: Option<Box<SpanProfiler>>,
        trace_baselines: bool,
    ) -> InstrumentedOutcome {
        let started = crate::walltime::Stopwatch::start();
        let (contended, sink, profiler) = self.run_contended_instrumented(sink, profiler);
        let alone_runs: Vec<(SimReport, Option<String>)> = crate::runner::par_map(
            crate::runner::worker_count(),
            &self.foreground,
            |job| {
                if trace_baselines {
                    let (report, jsonl) = self.alone_report_traced(job);
                    (report, Some(jsonl))
                } else {
                    (self.alone_report(job), None)
                }
            },
        );
        let alone_traces: Vec<AloneTrace> = self
            .foreground
            .iter()
            .zip(&alone_runs)
            .filter_map(|(job, (_, jsonl))| {
                jsonl.as_ref().map(|jsonl| AloneTrace {
                    job: job.name().to_owned(),
                    jsonl: jsonl.clone(),
                })
            })
            .collect();
        let alone_reports: Vec<&SimReport> = alone_runs.iter().map(|(r, _)| r).collect();
        let mut events_processed = contended.events_processed;
        let counters = contended.counters.clone();
        let foreground = self
            .foreground
            .iter()
            .zip(alone_reports)
            .map(|(job, alone_report)| {
                events_processed += alone_report.events_processed;
                counters.merge(&alone_report.counters);
                let alone = alone_report
                    .jct_secs(job.name())
                    .unwrap_or_else(|| panic!("job {} did not finish alone", job.name()));
                let in_contention = contended.jct_secs(job.name()).unwrap_or_else(|| {
                    panic!("foreground job {} did not finish in contention", job.name())
                });
                SlowdownRow {
                    name: job.name().to_owned(),
                    alone_jct_secs: alone,
                    contended_jct_secs: in_contention,
                    slowdown: in_contention / alone,
                }
            })
            .collect();
        let outcome = ExperimentOutcome {
            policy: self.policy.label(),
            foreground,
            contended,
            events_processed,
            wall_secs: started.elapsed_secs(),
            counters,
        };
        (outcome, sink, alone_traces, profiler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_simcore::dist::constant;
    use ssr_simcore::SimTime;
    use ssr_workload::synthetic::{map_only, pipeline_of};
    use ssr_simcore::dist::uniform;

    fn sim_config() -> SimConfig {
        SimConfig::new(ClusterSpec::new(1, 4).unwrap())
            .with_locality(
                ssr_cluster::LocalityModel::paper_simulation().with_wait(SimDuration::ZERO),
            )
            .with_seed(3)
    }

    fn foreground() -> JobSpec {
        // Bounded skew: every barrier opens a give-up window of a few
        // seconds without letting a single straggler dominate the JCT.
        pipeline_of(
            "fg",
            &[
                (4, uniform(1.0, 4.0)),
                (4, uniform(1.0, 4.0)),
                (4, uniform(1.0, 4.0)),
            ],
            Priority::new(10),
            SimTime::ZERO,
        )
        .unwrap()
    }

    fn background() -> JobSpec {
        map_only("bg", 24, constant(30.0), Priority::new(0)).unwrap()
    }

    #[test]
    fn slowdown_is_one_without_contention() {
        let outcome = Experiment::new(sim_config(), PolicyConfig::WorkConserving, OrderConfig::FifoPriority)
            .foreground([foreground()])
            .run();
        let row = outcome.slowdown_of("fg").unwrap();
        assert!((row.slowdown - 1.0).abs() < 1e-9);
        assert_eq!(outcome.mean_slowdown(), row.slowdown);
    }

    #[test]
    fn ssr_beats_work_conserving_under_contention() {
        let run = |policy: PolicyConfig| {
            Experiment::new(sim_config(), policy, OrderConfig::FifoPriority)
                .foreground([foreground()])
                .background([background()])
                .run()
        };
        let wc = run(PolicyConfig::WorkConserving);
        let ssr = run(PolicyConfig::ssr_strict());
        assert!(
            wc.mean_slowdown() > 1.5,
            "work conserving should suffer: {}",
            wc.mean_slowdown()
        );
        assert!(
            ssr.mean_slowdown() < 1.2,
            "SSR should isolate: {}",
            ssr.mean_slowdown()
        );
        assert!(ssr.mean_slowdown() < wc.mean_slowdown());
    }

    #[test]
    fn policy_labels() {
        assert_eq!(PolicyConfig::WorkConserving.label(), "work-conserving");
        assert!(PolicyConfig::Timeout(SimDuration::from_secs(5)).label().contains("timeout"));
        assert!(
            PolicyConfig::Static { count: 3, class: Priority::new(1) }.label().contains("static(3)")
        );
        assert!(PolicyConfig::ssr_strict().label().contains("P=1"));
        assert!(PolicyConfig::ssr_strict_with_stragglers().label().contains("strag"));
        assert!(PolicyConfig::ssr_with_isolation(0.4).label().contains("P=0.4"));
        assert!(PolicyConfig::ssr_with_prereserve_threshold(0.2).label().contains("R=0.2"));
    }

    #[test]
    fn order_configs_build() {
        assert_eq!(OrderConfig::FifoPriority.build().name(), "fifo-priority");
        assert_eq!(OrderConfig::Fair.build().name(), "fair");
        assert_eq!(OrderConfig::Fifo.build().name(), "fifo");
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn invalid_isolation_target_panics() {
        let _ = PolicyConfig::ssr_with_isolation(3.0);
    }

    #[test]
    fn disabled_counters_change_nothing() {
        // Counters are always on and `#[serde(skip)]`ed: the serialized
        // outcome — the bytes `--json` runs and figure artifacts commit —
        // is byte-identical whether or not anyone reads the counters, and
        // never carries a counter key.
        let run = || {
            Experiment::new(sim_config(), PolicyConfig::ssr_strict(), OrderConfig::FifoPriority)
                .foreground([foreground()])
                .background([background()])
                .run()
        };
        let silent = run();
        let observed = run();
        assert!(!observed.counters.is_zero(), "the engine must count work");
        let _ = observed.counters.render_json();
        let _ = observed.counters.render_text();
        let a = serde_json::to_string_pretty(&silent).expect("serializes");
        let b = serde_json::to_string_pretty(&observed).expect("serializes");
        assert_eq!(a, b, "reading counters must not move a byte of output");
        assert!(!a.contains("counters"), "counters must stay out of committed artifacts");
    }

    #[test]
    fn traced_baselines_match_untraced_run() {
        let build = || {
            Experiment::new(sim_config(), PolicyConfig::ssr_strict(), OrderConfig::FifoPriority)
                .foreground([foreground()])
                .background([background()])
        };
        let plain = build().run();
        let (traced, sink, alone) =
            build().run_traced_with_baselines(Some(Box::new(ssr_trace::JsonlSink::new())));
        // The contended trace sink must not perturb the outcome, and the
        // alone baselines must agree whether or not they carry a sink.
        assert_eq!(plain.foreground.len(), traced.foreground.len());
        for (a, b) in plain.foreground.iter().zip(&traced.foreground) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.alone_jct_secs.to_bits(), b.alone_jct_secs.to_bits());
            assert_eq!(a.contended_jct_secs.to_bits(), b.contended_jct_secs.to_bits());
        }
        assert!(sink.is_some());
        assert_eq!(alone.len(), 1);
        assert_eq!(alone[0].job, "fg");
        assert!(alone[0].jsonl.starts_with(
            r#"{"event":"trace-start","fields":{"schema_version":3}"#
        ));
        assert!(alone[0].jsonl.contains(r#""event":"job-completed""#));
    }

    #[test]
    fn experiment_reports_background_jobs_too() {
        let outcome = Experiment::new(sim_config(), PolicyConfig::ssr_strict(), OrderConfig::FifoPriority)
            .foreground([foreground()])
            .background([background()])
            .run();
        assert!(outcome.contended.job("bg").is_some());
        assert_eq!(outcome.foreground.len(), 1);
        let _ = SimTime::ZERO;
    }
}
