//! The scheduler hot-path benchmark suite tracked in
//! `BENCH_scheduler.json` at the repo root: resource-offer rounds at
//! 100 / 1000 / 4000 slots (the paper's simulator scale), saturated
//! re-offer rounds at the same scales, a full small-grid simulation, and
//! event-queue throughput including the recycled-allocation path.
//!
//! Regenerate the JSON with:
//!
//! ```text
//! CRITERION_OUTPUT_JSON=BENCH_scheduler.json \
//!     cargo bench -p ssr-bench --bench scheduler --offline
//! ```

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use ssr_cluster::{ClusterSpec, LocalityModel};
use ssr_dag::{JobSpecBuilder, Priority};
use ssr_scheduler::{FifoPriority, TaskScheduler, WorkConserving};
use ssr_sim::{OrderConfig, PolicyConfig, SimConfig, Simulation};
use ssr_simcore::dist::{constant, pareto};
use ssr_simcore::events::EventQueue;
use ssr_simcore::{SimDuration, SimTime};

/// The scales the acceptance criteria track: a small rack, a mid-size
/// cluster, and the paper's 1000-node / 4000-slot simulator.
const SCALES: [u32; 3] = [100, 1000, 4000];

/// Extra offer-round scales beyond the paper's simulator, exercising the
/// index and scratch-reuse paths well past their design point. Only the
/// single-round benchmark runs these — the saturated re-offer and
/// full-sim benchmarks stay at the tracked scales.
const OFFER_ROUND_EXTRA_SCALES: [u32; 2] = [20_000, 50_000];

fn backlogged_scheduler(slots: u32) -> TaskScheduler {
    let mut sched = TaskScheduler::new(
        ClusterSpec::with_racks(slots / 4, 4, 20).expect("valid"),
        LocalityModel::paper_simulation().with_wait(SimDuration::ZERO),
        Box::new(WorkConserving),
        Box::new(FifoPriority),
    );
    let job = JobSpecBuilder::new("big")
        .priority(Priority::new(5))
        .stage("map", slots * 2, constant(1.0))
        .build()
        .expect("valid");
    sched.submit(job, SimTime::ZERO);
    sched
}

/// One offer round that fills the whole cluster from a backlogged job —
/// `slots` assignment decisions in a single `resource_offers` call.
fn bench_offer_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/offer_round");
    for &slots in SCALES.iter().chain(&OFFER_ROUND_EXTRA_SCALES) {
        group.bench_with_input(BenchmarkId::from_parameter(slots), &slots, |b, &slots| {
            b.iter_batched(
                || backlogged_scheduler(slots),
                |mut sched| black_box(sched.resource_offers(SimTime::ZERO).len()),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// A re-offer round on an already saturated cluster: the scheduler must
/// conclude "nothing to do" — the old engine paid a full slot scan per
/// backlogged job to learn that.
fn bench_saturated_reoffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/saturated_reoffer");
    for &slots in &SCALES {
        group.bench_with_input(BenchmarkId::from_parameter(slots), &slots, |b, &slots| {
            let mut sched = backlogged_scheduler(slots);
            assert_eq!(sched.resource_offers(SimTime::ZERO).len(), slots as usize);
            b.iter(|| black_box(sched.resource_offers(SimTime::ZERO).len()))
        });
    }
    group.finish();
}

/// Full small-grid simulation: a contended foreground/background mix on a
/// 100-slot cluster, end to end through the event loop.
fn bench_full_sim_small_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/full_small_grid_100slots");
    for (name, policy) in [
        ("work_conserving", PolicyConfig::WorkConserving),
        ("ssr", PolicyConfig::ssr_strict()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let fg = JobSpecBuilder::new("fg")
                    .priority(Priority::new(10))
                    .stage("up", 40, pareto(1.0, 1.6))
                    .stage("down", 40, pareto(1.0, 1.6))
                    .chain()
                    .build()
                    .expect("valid");
                let bg = JobSpecBuilder::new("bg")
                    .priority(Priority::new(0))
                    .stage("map", 400, constant(5.0))
                    .build()
                    .expect("valid");
                let report = Simulation::new(
                    SimConfig::new(ClusterSpec::with_racks(25, 4, 20).expect("valid"))
                        .with_seed(7),
                    policy.clone(),
                    OrderConfig::FifoPriority,
                    vec![fg, bg],
                )
                .run();
                black_box(report.makespan_secs)
            })
        });
    }
    group.finish();
}

/// Event-queue push/pop throughput, including the recycled-allocation
/// path (`reset` keeps the heap buffer across trials).
fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.bench_function("push_pop_10k_fresh", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                q.push(SimTime::from_micros((i * 2_654_435_761) % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
    group.bench_function("push_pop_10k_recycled", |b| {
        let mut q = EventQueue::with_capacity(10_000);
        b.iter(|| {
            q.reset();
            for i in 0..10_000u64 {
                q.push(SimTime::from_micros((i * 2_654_435_761) % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_offer_round,
    bench_saturated_reoffer,
    bench_full_sim_small_grid,
    bench_event_queue
);
criterion_main!(benches);
