//! Criterion micro-benchmarks for the hot paths of the SSR stack:
//! event-queue operations, duration sampling, resource-offer rounds at
//! paper scale (4000 slots), the Algorithm-1 completion handler, the
//! analytical model, and a small end-to-end simulation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use ssr_analytics::straggler::mitigation_study;
use ssr_analytics::tradeoff::{deadline_for_isolation, utilization_bound_for_isolation};
use ssr_cluster::{ClusterSpec, LocalityModel};
use ssr_dag::{JobSpecBuilder, Priority};
use ssr_scheduler::{FifoPriority, TaskScheduler, WorkConserving};
use ssr_sim::{OrderConfig, PolicyConfig, SimConfig, Simulation};
use ssr_simcore::dist::{constant, pareto, Distribution, Pareto};
use ssr_simcore::events::EventQueue;
use ssr_simcore::rng::SimRng;
use ssr_simcore::{SimDuration, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for i in 0..10_000u64 {
                q.push(SimTime::from_micros((i * 2_654_435_761) % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
}

fn bench_sampling(c: &mut Criterion) {
    let p = Pareto::new(1.0, 1.6).expect("valid");
    c.bench_function("dist/pareto_sample_10k", |b| {
        let mut rng = SimRng::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += p.sample(&mut rng);
            }
            black_box(acc)
        })
    });
}

fn bench_analytics(c: &mut Criterion) {
    c.bench_function("analytics/eq4_curve_1k_points", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..1000 {
                let p = i as f64 / 1000.0;
                acc += utilization_bound_for_isolation(black_box(p), 1.6, 200).expect("valid");
                acc += deadline_for_isolation(black_box(p * 0.99), 2.0, 1.6, 200).expect("valid");
            }
            black_box(acc)
        })
    });
    c.bench_function("analytics/mitigation_study_n100_r50", |b| {
        b.iter(|| black_box(mitigation_study(1.6, 100, 50, 7).expect("valid")))
    });
}

/// One resource-offer round on a paper-scale cluster (1000 nodes x 4
/// slots) with a backlogged job — the scheduler's hottest path.
fn bench_resource_offers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/resource_offers");
    for &slots in &[400u32, 4000] {
        group.bench_with_input(BenchmarkId::from_parameter(slots), &slots, |b, &slots| {
            b.iter_batched(
                || {
                    let mut sched = TaskScheduler::new(
                        ClusterSpec::with_racks(slots / 4, 4, 20).expect("valid"),
                        LocalityModel::paper_simulation().with_wait(SimDuration::ZERO),
                        Box::new(WorkConserving),
                        Box::new(FifoPriority),
                    );
                    let job = JobSpecBuilder::new("big")
                        .priority(Priority::new(5))
                        .stage("map", slots * 2, constant(1.0))
                        .build()
                        .expect("valid");
                    sched.submit(job, SimTime::ZERO);
                    sched
                },
                |mut sched| black_box(sched.resource_offers(SimTime::ZERO).len()),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// The Algorithm-1 seam: a full submit/offer/finish cycle under SSR on a
/// mid-size cluster.
fn bench_ssr_cycle(c: &mut Criterion) {
    c.bench_function("scheduler/ssr_two_phase_cycle_64slots", |b| {
        b.iter_batched(
            || {
                let policy = ssr_core::SpeculativeReservation::builder()
                    .isolation_target(0.9)
                    .build()
                    .expect("valid");
                let mut sched = TaskScheduler::new(
                    ClusterSpec::new(16, 4).expect("valid"),
                    LocalityModel::paper_simulation().with_wait(SimDuration::ZERO),
                    Box::new(policy),
                    Box::new(FifoPriority),
                );
                let job = JobSpecBuilder::new("p")
                    .priority(Priority::new(5))
                    .stage("up", 64, constant(1.0))
                    .stage("down", 64, constant(1.0))
                    .chain()
                    .build()
                    .expect("valid");
                sched.submit(job, SimTime::ZERO);
                sched
            },
            |mut sched| {
                let a = sched.resource_offers(SimTime::ZERO);
                let t1 = SimTime::from_secs(1);
                for x in &a {
                    sched.task_finished(x.slot, t1);
                }
                let b2 = sched.resource_offers(t1);
                let t2 = SimTime::from_secs(2);
                for x in &b2 {
                    sched.task_finished(x.slot, t2);
                }
                black_box(sched.has_unfinished_jobs())
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

/// End-to-end: a contended simulation of a 5-phase foreground job vs a
/// batch job on 16 slots.
fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/end_to_end_16slots");
    for (name, policy) in [
        ("work_conserving", PolicyConfig::WorkConserving),
        ("ssr", PolicyConfig::ssr_strict()),
        ("ssr_stragglers", PolicyConfig::ssr_strict_with_stragglers()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let fg = JobSpecBuilder::new("fg")
                    .priority(Priority::new(10))
                    .stage("p0", 16, pareto(1.0, 1.6))
                    .stage("p1", 16, pareto(1.0, 1.6))
                    .stage("p2", 16, pareto(1.0, 1.6))
                    .stage("p3", 16, pareto(1.0, 1.6))
                    .stage("p4", 16, pareto(1.0, 1.6))
                    .chain()
                    .build()
                    .expect("valid");
                let bg = JobSpecBuilder::new("bg")
                    .priority(Priority::new(0))
                    .stage("map", 64, constant(10.0))
                    .build()
                    .expect("valid");
                let report = Simulation::new(
                    SimConfig::new(ClusterSpec::new(4, 4).expect("valid")).with_seed(3),
                    policy.clone(),
                    OrderConfig::FifoPriority,
                    vec![fg, bg],
                )
                .run();
                black_box(report.makespan_secs)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_sampling,
    bench_analytics,
    bench_resource_offers,
    bench_ssr_cycle,
    bench_end_to_end
);
criterion_main!(benches);
