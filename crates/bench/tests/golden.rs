//! Golden equivalence tests: reduced-scale figure output is pinned
//! byte-for-byte against checked-in snapshots.
//!
//! These guard the scheduler hot-path optimizations (indexed slot pool,
//! incremental offer rounds) against behavioral drift: any change to the
//! engine that alters a single byte of figure output fails here.
//!
//! To regenerate the snapshots after an *intentional* behavior change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p ssr-bench --test golden
//! ```

use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Compares `actual` against the checked-in snapshot `name`, or rewrites
/// the snapshot when `UPDATE_GOLDEN=1`.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()));
    assert!(
        expected == actual,
        "{name} drifted from its golden snapshot.\n\
         If the change is intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test -p ssr-bench --test golden\n\
         --- expected ---\n{expected}\n--- actual ---\n{actual}"
    );
}

#[test]
fn fig08_matches_golden_snapshot() {
    // Closed-form Eq. 4 curves; worker-count independent by the par_map
    // merge contract, pinned at one worker anyway for belt and braces.
    ssr_sim::runner::set_worker_override(Some(1));
    assert_golden("fig08.txt", &ssr_bench::figures::fig08::run());
}

#[test]
fn fig15_reduced_matches_golden_snapshot() {
    // Small grid (12 background jobs, seed 5 — the same scale the unit
    // tests use), single worker: the full simulator pipeline end to end.
    ssr_sim::runner::set_worker_override(Some(1));
    assert_golden("fig15_reduced.txt", &ssr_bench::figures::fig15::run_scaled(12, 5));
}
