//! Golden equivalence tests: reduced-scale figure output is pinned
//! byte-for-byte against checked-in snapshots.
//!
//! These guard the scheduler hot-path optimizations (indexed slot pool,
//! incremental offer rounds) against behavioral drift: any change to the
//! engine that alters a single byte of figure output fails here.
//!
//! To regenerate the snapshots after an *intentional* behavior change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p ssr-bench --test golden
//! ```

use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Compares `actual` against the checked-in snapshot `name`, or rewrites
/// the snapshot when `UPDATE_GOLDEN=1`.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()));
    assert!(
        expected == actual,
        "{name} drifted from its golden snapshot.\n\
         If the change is intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test -p ssr-bench --test golden\n\
         --- expected ---\n{expected}\n--- actual ---\n{actual}"
    );
}

#[test]
fn fig08_matches_golden_snapshot() {
    // Closed-form Eq. 4 curves; worker-count independent by the par_map
    // merge contract, pinned at one worker anyway for belt and braces.
    ssr_sim::runner::set_worker_override(Some(1));
    assert_golden("fig08.txt", &ssr_bench::figures::fig08::run());
}

#[test]
fn fig15_reduced_matches_golden_snapshot() {
    // Small grid (12 background jobs, seed 5 — the same scale the unit
    // tests use), single worker: the full simulator pipeline end to end.
    ssr_sim::runner::set_worker_override(Some(1));
    assert_golden("fig15_reduced.txt", &ssr_bench::figures::fig15::run_scaled(12, 5));
}

#[test]
fn empty_fault_plan_is_zero_cost_on_figure_scenarios() {
    // The fault hooks' zero-cost contract, made explicit: figure
    // SimConfigs carry the default (empty) FaultPlan, and attaching an
    // explicitly empty plan changes nothing — so the two snapshot tests
    // above, whose goldens predate fault injection, double as the proof
    // that an empty plan leaves figure output byte-identical.
    use ssr_sim::{FaultPlan, OrderConfig, PolicyConfig, Simulation};
    use ssr_simcore::dist::constant;
    use ssr_simcore::SimTime;
    use ssr_trace::JsonlSink;
    use ssr_workload::synthetic::{map_only, pipeline_of};

    let cluster = ssr_cluster::ClusterSpec::new(4, 2).unwrap();
    let config = ssr_bench::figures::common::cluster_sim(cluster, 7);
    assert!(config.faults().is_empty(), "figure SimConfigs must not schedule faults");

    // The canonical contended scenario replays byte-identically with the
    // default plan and with an explicitly attached empty plan.
    let run = |config: ssr_sim::SimConfig| {
        let fg = pipeline_of(
            "fg",
            &[(4, constant(2.0)), (2, constant(6.0))],
            ssr_bench::figures::common::FG_PRIORITY,
            SimTime::from_secs(5),
        )
        .unwrap();
        let bg =
            map_only("bg", 16, constant(9.0), ssr_bench::figures::common::BG_PRIORITY).unwrap();
        let (report, sink) = Simulation::new(
            config,
            PolicyConfig::ssr_strict(),
            OrderConfig::FifoPriority,
            vec![fg, bg],
        )
        .with_trace_sink(Box::new(JsonlSink::new()))
        .run_traced();
        let jsonl = sink
            .expect("sink attached")
            .into_any()
            .downcast::<JsonlSink>()
            .expect("JsonlSink recovered")
            .finish();
        (serde_json::to_string_pretty(&report).unwrap(), jsonl)
    };
    let default_plan = run(config.clone());
    let explicit_empty = run(config.with_faults(FaultPlan::new()));
    assert_eq!(default_plan, explicit_empty, "an empty FaultPlan must be a no-op");
}
