//! Regenerates the paper's evaluation figures as text tables.
//!
//! Usage:
//!
//! ```text
//! figures all                # every figure, in paper order
//! figures fig08 fig10        # selected figures
//! figures --list             # available ids
//! figures all --jobs 4       # run on exactly 4 worker threads
//! figures all --timing       # per-figure wall-clock stats on stderr
//! ```
//!
//! Figures driven by the simulator run at a scaled-down default; set
//! `SSR_FULL=1` for paper-scale runs (slower).
//!
//! Independent simulations fan out across a worker pool sized by `--jobs`,
//! the `SSR_JOBS` environment variable, or the machine's available
//! parallelism (in that precedence order). Results are merged
//! deterministically: stdout is byte-identical at every worker count.
//! Timing output goes to stderr only, so it never perturbs that guarantee.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use ssr_bench::figures;
use ssr_sim::walltime::Stopwatch;

struct Args {
    ids: Vec<String>,
    list: bool,
    timing: bool,
    trace: Option<String>,
    explain: Option<String>,
    counters: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut ids = Vec::new();
    let mut list = false;
    let mut timing = false;
    let mut jobs: Option<usize> = None;
    let mut trace = None;
    let mut explain = None;
    let mut counters = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => list = true,
            "--timing" => timing = true,
            "--jobs" => {
                let v = it.next().ok_or("--jobs requires a value")?;
                jobs = Some(v.parse().map_err(|_| format!("bad --jobs value: {v}"))?);
            }
            "--trace" => {
                trace = Some(it.next().ok_or("--trace requires a path")?.to_owned());
            }
            "--explain" => {
                explain = Some(it.next().ok_or("--explain requires a path")?.to_owned());
            }
            "--counters" => {
                counters = Some(it.next().ok_or("--counters requires a path")?.to_owned());
            }
            other => ids.push(other.to_owned()),
        }
    }
    ssr_sim::runner::set_worker_override(jobs);
    Ok(Args { ids, list, timing, trace, explain, counters })
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: figures <all | --list | fig-id...> [--jobs N] [--timing] [--trace PATH] [--explain PATH] [--counters PATH]"
        );
        eprintln!("known ids: {}", figures::ALL.join(" "));
        return ExitCode::from(2);
    }
    let args = match parse_args(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if args.list {
        for id in figures::ALL {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    if let Some(path) = &args.trace {
        // The canonical contended-SSR decision trace; byte-stable per seed,
        // diffed by CI across invocations.
        if let Err(e) = std::fs::write(path, figures::decision_trace_jsonl(11)) {
            eprintln!("cannot write trace {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.explain {
        // The canonical scenario pushed through the whole ssr-explain
        // pipeline (trace → parse → timeline → attribution → render);
        // byte-stable per seed, diffed by CI across invocations.
        if let Err(e) = std::fs::write(path, figures::explain_report(11)) {
            eprintln!("cannot write explain report {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.counters {
        // The canonical scenario's deterministic work counters as
        // sorted-key JSON; byte-stable per seed, diffed by CI across
        // invocations to pin the whole counter plane.
        if let Err(e) = std::fs::write(path, figures::counters_report(11)) {
            eprintln!("cannot write counters report {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let ids: Vec<&str> = if args.ids.iter().any(|a| a == "all") {
        figures::ALL.to_vec()
    } else {
        args.ids.iter().map(String::as_str).collect()
    };
    // Figures are independent of one another: run them all on the worker
    // pool, then print in request order.
    let started = Stopwatch::start();
    let rendered = ssr_sim::par_map(ssr_sim::worker_count(), &ids, |id| {
        let figure_started = Stopwatch::start();
        (figures::run(id), figure_started.elapsed_secs())
    });
    for (id, (output, wall)) in ids.iter().zip(&rendered) {
        match output {
            Some(output) => {
                println!("==================================================================");
                println!("{output}");
                if args.timing {
                    eprintln!("[timing] {id}: {wall:.2}s");
                }
            }
            None => {
                eprintln!("unknown figure id: {id} (known: {})", figures::ALL.join(" "));
                return ExitCode::FAILURE;
            }
        }
    }
    if args.timing {
        eprintln!(
            "[timing] total {:.2}s on {} worker(s)",
            started.elapsed_secs(),
            ssr_sim::worker_count()
        );
    }
    ExitCode::SUCCESS
}
