//! Regenerates the paper's evaluation figures as text tables.
//!
//! Usage:
//!
//! ```text
//! figures all            # every figure, in paper order
//! figures fig08 fig10    # selected figures
//! figures --list         # available ids
//! ```
//!
//! Figures driven by the simulator run at a scaled-down default; set
//! `SSR_FULL=1` for paper-scale runs (slower).

use std::process::ExitCode;

use ssr_bench::figures;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: figures <all | --list | fig-id...>");
        eprintln!("known ids: {}", figures::ALL.join(" "));
        return ExitCode::from(2);
    }
    if args.iter().any(|a| a == "--list") {
        for id in figures::ALL {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        figures::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        match figures::run(id) {
            Some(output) => {
                println!("==================================================================");
                println!("{output}");
            }
            None => {
                eprintln!("unknown figure id: {id} (known: {})", figures::ALL.join(" "));
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
