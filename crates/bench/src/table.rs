//! A minimal aligned text-table renderer for figure output.

use std::fmt::Write as _;

/// An aligned text table: a header row plus data rows, rendered with
/// column padding — the output format of the `figures` binary.
///
/// # Example
///
/// ```
/// use ssr_bench::Table;
///
/// let mut t = Table::new(["alpha", "reduction"]);
/// t.row(["1.6", "0.73"]);
/// let s = t.render();
/// assert!(s.contains("alpha"));
/// assert!(s.contains("0.73"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a data row; short rows are padded with empty cells.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows exist.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a separator line.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV (no quoting; cells must be comma-free).
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 3 decimal places (the tables' numeric style).
pub fn num(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float as a percentage with 1 decimal place.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["a", "long-header"]);
        t.row(["xxxxx", "1"]);
        t.row(["y", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a      long-header"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("xxxxx  1"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let csv = t.to_csv();
        assert_eq!(csv, "a,b,c\n1,,\n");
    }

    #[test]
    fn truncates_long_rows() {
        let mut t = Table::new(["a"]);
        t.row(["1", "2", "3"]);
        let s = t.render();
        assert!(!s.contains('2'));
    }

    #[test]
    fn numeric_formatting() {
        assert_eq!(num(1.23456), "1.235");
        assert_eq!(pct(0.731), "73.1%");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(["only"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}
