//! **Fig. 1** — Priority scheduling provides no service isolation.
//!
//! Two MLlib jobs (KMeans at high priority, SVM at low priority) on a
//! 4-node × 2-slot cluster with degree of parallelism 8, under the
//! *work-conserving* status quo. The paper measures a 3.9× slowdown of
//! the high-priority KMeans in contention; the reproduction must show the
//! same *shape*: KMeans, despite outranking SVM, is slowed down severely.

use ssr_cluster::ClusterSpec;
use ssr_sim::{Experiment, OrderConfig, PolicyConfig};
use ssr_workload::mllib;
use ssr_workload::MllibParams;

use crate::figures::common::{cluster_sim, BG_PRIORITY, FG_PRIORITY};
use crate::table::{num, Table};

/// Runs the figure and renders its table.
pub fn run() -> String {
    run_seeded(11)
}

pub(crate) fn run_seeded(seed: u64) -> String {
    let cluster = ClusterSpec::new(4, 2).expect("valid cluster");
    let params = MllibParams::small(); // parallelism 8, as in the paper
    let kmeans = mllib::kmeans(&params.with_priority(FG_PRIORITY)).expect("valid template");
    // SVM's gradient tasks are the heavy ones in SparkBench; the long
    // low-priority tasks are what the high-priority job gets stuck behind
    // at each barrier.
    let svm = mllib::svm(&params.with_priority(BG_PRIORITY).with_mean_task_secs(10.0))
        .expect("valid template");

    let experiment = Experiment::new(
        cluster_sim(cluster, seed),
        PolicyConfig::WorkConserving,
        OrderConfig::FifoPriority,
    )
    .foreground([kmeans.clone(), svm.clone()]);
    // Both jobs are "foreground" here in the measurement sense (both get
    // alone baselines); contention is between the two of them.
    let outcome = experiment.run();

    let mut table = Table::new(["job", "priority", "alone JCT (s)", "contended JCT (s)", "slowdown"]);
    for name in ["kmeans", "svm"] {
        let row = outcome.slowdown_of(name).expect("both jobs measured");
        let prio = if name == "kmeans" { "high" } else { "low" };
        table.row([
            name.to_owned(),
            prio.to_owned(),
            num(row.alone_jct_secs),
            num(row.contended_jct_secs),
            format!("{:.2}x", row.slowdown),
        ]);
    }
    format!(
        "Fig. 1 — priority scheduling provides no isolation (work conserving)\n\
         paper: KMeans (high priority) suffers 3.9x slowdown in contention with SVM\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn kmeans_is_slowed_despite_priority() {
        let out = super::run_seeded(3);
        assert!(out.contains("kmeans"));
        // Extract the kmeans slowdown cell and check the shape: clearly
        // above 1.5x.
        let line = out.lines().find(|l| l.starts_with("kmeans")).unwrap();
        let slowdown: f64 = line
            .split_whitespace()
            .last()
            .unwrap()
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!(slowdown > 1.5, "kmeans slowdown {slowdown} too small for the Fig. 1 effect");
    }
}
