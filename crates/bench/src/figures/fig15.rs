//! **Fig. 15** — Large-scale trace-driven simulation: average slowdown of
//! the foreground suites (SQL, MLlib, MLlib with 2× parallelism) with and
//! without speculative slot reservation, in three settings:
//!
//! * (a) standard (locality wait 3 s, `ANY` slowdown 5×),
//! * (b) background task runtime × 2,
//! * (c) locality slowdown factor × 2 (`ANY` = 10×).
//!
//! Paper findings reproduced: background duration barely matters in a
//! large cluster (slots are plentiful); the locality factor dominates;
//! with SSR the MLlib suites see < 10% slowdown while SQL (changing
//! parallelism) retains a moderate slowdown; background jobs are
//! essentially unaffected by SSR.

use ssr_cluster::LocalityModel;
use ssr_dag::JobSpec;
use ssr_sim::{OrderConfig, PolicyConfig, SimConfig, Simulation};
use ssr_simcore::SimDuration;
use ssr_workload::{mllib, sql, MllibParams, SqlParams};

use crate::figures::common::{
    background_jobs_large, large_cluster, scaled, BG_PRIORITY, FG_PRIORITY,
};
use crate::table::{num, Table};

/// Runs the figure and renders its tables.
pub fn run() -> String {
    run_scaled(scaled(700, 8000), 81)
}

fn suites() -> Vec<(&'static str, Vec<JobSpec>)> {
    let sql_params = SqlParams::medium().with_priority(FG_PRIORITY);
    let ml = MllibParams::cluster().with_priority(FG_PRIORITY);
    let ml2 = ml.with_parallelism(40);
    // Foreground jobs are latency-sensitive requests submitted over time.
    let window = SimDuration::from_secs(600);
    vec![
        (
            "sql",
            crate::figures::common::stagger(
                sql::all_queries(&sql_params).expect("valid queries"),
                window,
            ),
        ),
        (
            "mllib",
            crate::figures::common::stagger(
                mllib::foreground_suite(&ml).expect("valid templates"),
                window,
            ),
        ),
        (
            "mllib-2x-par",
            crate::figures::common::stagger(
                mllib::foreground_suite(&ml2).expect("valid templates"),
                window,
            ),
        ),
    ]
}

struct Setting {
    label: &'static str,
    bg_factor: f64,
    locality: LocalityModel,
}

fn settings() -> Vec<Setting> {
    vec![
        Setting {
            label: "(a) standard",
            bg_factor: 1.0,
            locality: LocalityModel::paper_simulation(),
        },
        Setting {
            label: "(b) background x2",
            bg_factor: 2.0,
            locality: LocalityModel::paper_simulation(),
        },
        Setting {
            label: "(c) locality slowdown x2",
            bg_factor: 1.0,
            locality: LocalityModel::paper_simulation_amplified(),
        },
    ]
}

/// Runs the figure at an explicit background-job count and seed — the
/// `run()` entry point uses the `SSR_FULL`-scaled defaults; tests and the
/// golden-equivalence suite call this directly with a reduced grid.
pub fn run_scaled(bg_jobs: u32, seed: u64) -> String {
    let cluster = large_cluster();
    let horizon = SimDuration::from_secs(1800);
    let mut out = format!(
        "Fig. 15 — large-scale simulation ({} slots, {} background jobs)\n\
         paper: locality dominates in large clusters; SSR keeps MLlib < 1.10x, SQL 1.3-1.5x\n\n",
        cluster.total_slots(),
        bg_jobs
    );

    // One independent cell per (setting, suite): its alone baselines plus
    // the two contended runs. Cells fan out across the runner's worker
    // pool and come back in input order, so the rendered tables are
    // byte-identical at every worker count.
    let settings = settings();
    let suite_list = suites();
    let cells: Vec<(usize, usize)> = (0..settings.len())
        .flat_map(|s| (0..suite_list.len()).map(move |q| (s, q)))
        .collect();
    let rows = ssr_sim::par_map(ssr_sim::worker_count(), &cells, |&(si, qi)| {
        let setting = &settings[si];
        let (name, jobs) = &suite_list[qi];
        // Alone baselines per suite (policy-independent).
        let alone: Vec<f64> = jobs
            .iter()
            .map(|j| {
                let config = SimConfig::new(cluster)
                    .with_locality(setting.locality.clone())
                    .with_seed(seed);
                Simulation::new(
                    config,
                    PolicyConfig::WorkConserving,
                    OrderConfig::FifoPriority,
                    vec![j.clone()],
                )
                .run()
                .jct_secs(j.name())
                .expect("foreground finishes alone")
            })
            .collect();
        let mut row = vec![(*name).to_owned()];
        for policy in [PolicyConfig::WorkConserving, PolicyConfig::ssr_strict()] {
            let mut all = jobs.clone();
            all.extend(background_jobs_large(bg_jobs, setting.bg_factor, horizon, seed));
            let report = Simulation::new(
                SimConfig::new(cluster)
                    .with_locality(setting.locality.clone())
                    .with_seed(seed),
                policy,
                OrderConfig::FifoPriority,
                all,
            )
            .run();
            let slowdowns: Vec<f64> = jobs
                .iter()
                .zip(&alone)
                .filter_map(|(j, &a)| report.jct_secs(j.name()).map(|c| c / a))
                .collect();
            let avg = slowdowns.iter().sum::<f64>() / slowdowns.len().max(1) as f64;
            row.push(format!("{avg:.2}x"));
        }
        row
    });
    for (si, setting) in settings.iter().enumerate() {
        let mut table = Table::new(["suite", "w/o SSR avg slowdown", "w/ SSR avg slowdown"]);
        for qi in 0..suite_list.len() {
            table.row(rows[si * suite_list.len() + qi].clone());
        }
        out.push_str(setting.label);
        out.push('\n');
        out.push_str(&table.render());
        out.push('\n');
    }
    // Background-impact check (§VI-B "Impact on the background workload"):
    // measured in the paper's regime — an under-subscribed cluster where
    // the foreground is a small fraction of capacity. At saturation, any
    // slot-holding necessarily delays a backlogged background, so this
    // claim is specific to that regime.
    let moderate_bg = bg_jobs / 4;
    // One foreground job of parallelism 20 on the whole cluster, mirroring
    // the paper's regime where the foreground is a tiny capacity fraction
    // (<= 5% here; ~0.5% at SSR_FULL scale).
    let ml = MllibParams::cluster().with_priority(FG_PRIORITY);
    let fg = vec![mllib::kmeans(&ml).expect("valid template")];
    // Only the foreground opts into reservations, as in the paper's
    // deployment (isolation is a per-user service).
    let fg_only = PolicyConfig::ssr_foreground_only(FG_PRIORITY.level());
    let policies = [PolicyConfig::WorkConserving, fg_only];
    let reports = ssr_sim::par_map(ssr_sim::worker_count(), &policies, |policy| {
        let mut all = fg.clone();
        all.extend(background_jobs_large(moderate_bg, 1.0, horizon, seed));
        Simulation::new(
            SimConfig::new(cluster).with_seed(seed),
            policy.clone(),
            OrderConfig::FifoPriority,
            all,
        )
        .run()
    });
    // Per-job slowdown ratio (SSR JCT / work-conserving JCT), paired by
    // name — the paper's "average slowdown due to speculative slot
    // reservation" for background jobs. A ratio of means would instead be
    // dominated by a handful of giant heavy-tail jobs.
    let (wc, ssr) = (&reports[0], &reports[1]);
    let ratios: Vec<f64> = wc
        .jobs
        .iter()
        .filter(|j| j.priority == BG_PRIORITY.level() && j.completed_secs.is_some())
        .filter_map(|j| Some(ssr.jct_secs(&j.name)? / j.jct_secs()))
        .collect();
    if !ratios.is_empty() {
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        out.push_str(&format!(
            "background impact ({} bg jobs, under-subscribed as in the paper): \
             mean per-job bg slowdown due to SSR = {} ({:+.2}%)\n",
            moderate_bg,
            num(mean),
            (mean - 1.0) * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn ssr_never_worse_and_mllib_well_isolated() {
        // Tiny version for CI speed.
        let out = super::run_scaled(60, 5);
        for line in out.lines().filter(|l| {
            l.starts_with("sql") || l.starts_with("mllib")
        }) {
            let cells: Vec<f64> = line
                .split_whitespace()
                .filter_map(|w| w.strip_suffix('x').and_then(|n| n.parse().ok()))
                .collect();
            assert_eq!(cells.len(), 2, "row: {line}");
            let (wc, ssr) = (cells[0], cells[1]);
            assert!(ssr <= wc * 1.1 + 0.1, "SSR materially worse on: {line}");
        }
        assert!(out.contains("background impact"));
    }

    #[test]
    fn output_is_byte_identical_across_worker_counts() {
        // The acceptance property of the parallel runner, pinned at a
        // CI-friendly scale: the rendered figure is the same string no
        // matter how many workers computed its cells.
        ssr_sim::runner::set_worker_override(Some(1));
        let sequential = super::run_scaled(12, 5);
        ssr_sim::runner::set_worker_override(Some(8));
        let parallel = super::run_scaled(12, 5);
        ssr_sim::runner::set_worker_override(None);
        assert_eq!(sequential, parallel, "fig15 output depends on the worker count");
    }
}
