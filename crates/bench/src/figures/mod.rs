//! One module per evaluation figure of the paper (Figs. 2, 3, 7, 9 and 11
//! are illustrative diagrams with no data and are not reproduced).
//!
//! Every module exposes `run() -> String` returning the rendered tables;
//! the `figures` binary prints them. Figures driven by the simulator run
//! at a scaled-down default (documented per module) so the full suite
//! completes in minutes on a laptop; set `SSR_FULL=1` for paper-scale
//! runs.

pub mod ablation;
pub mod common;
pub mod fig01;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig08;
pub mod fig10;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;

/// The figure ids known to the harness, in paper order.
pub const ALL: [&str; 13] = [
    "fig01", "fig04", "fig05", "fig06", "fig08", "fig10", "fig12", "fig13", "fig14", "fig15",
    "fig16", "fig17", "ablation",
];

/// Renders the canonical decision trace: the small contended SSR scenario
/// (a high-priority pipeline against a low-priority map-only background on
/// a 4×2 cluster) run once with a JSONL trace sink attached.
///
/// The output is byte-stable for a given seed — `figures --trace PATH`
/// writes it to disk and CI diffs two invocations to pin replay
/// determinism of the whole tracing layer.
pub fn decision_trace_jsonl(seed: u64) -> String {
    use ssr_cluster::ClusterSpec;
    use ssr_sim::{OrderConfig, PolicyConfig, Simulation};
    use ssr_simcore::dist::constant;
    use ssr_simcore::SimTime;
    use ssr_trace::JsonlSink;
    use ssr_workload::synthetic::{map_only, pipeline_of};

    let fg = pipeline_of(
        "fg-pipeline",
        &[(4, constant(2.0)), (2, constant(6.0)), (1, constant(3.0))],
        common::FG_PRIORITY,
        SimTime::from_secs(5),
    )
    .expect("valid spec");
    let bg = map_only("bg-batch", 16, constant(9.0), common::BG_PRIORITY).expect("valid spec");
    let cluster = ClusterSpec::new(4, 2).expect("valid cluster");
    let sim = Simulation::new(
        common::cluster_sim(cluster, seed),
        PolicyConfig::ssr_strict(),
        OrderConfig::FifoPriority,
        vec![fg, bg],
    )
    .with_trace_sink(Box::new(JsonlSink::new()));
    let (report, sink) = sim.run_traced();
    assert!(report.completed, "canonical trace scenario must complete");
    sink.expect("sink attached")
        .into_any()
        .downcast::<JsonlSink>()
        .expect("JsonlSink recovered")
        .finish()
}

/// Runs the canonical decision-trace scenario end-to-end through
/// `ssr-explain`: the contended run is traced alongside per-foreground
/// run-alone baseline traces, and the resulting timeline / critical-path /
/// slowdown-attribution report is rendered as text.
///
/// Byte-stable for a given seed — `figures --explain PATH` writes it to
/// disk and CI diffs two invocations, pinning the whole
/// trace→read→analyze→render pipeline.
pub fn explain_report(seed: u64) -> String {
    use ssr_cluster::ClusterSpec;
    use ssr_sim::{Experiment, OrderConfig, PolicyConfig};
    use ssr_simcore::dist::constant;
    use ssr_simcore::SimTime;
    use ssr_trace::JsonlSink;
    use ssr_workload::synthetic::{map_only, pipeline_of};

    let fg = pipeline_of(
        "fg-pipeline",
        &[(4, constant(2.0)), (2, constant(6.0)), (1, constant(3.0))],
        common::FG_PRIORITY,
        SimTime::from_secs(5),
    )
    .expect("valid spec");
    let bg = map_only("bg-batch", 16, constant(9.0), common::BG_PRIORITY).expect("valid spec");
    let cluster = ClusterSpec::new(4, 2).expect("valid cluster");
    let (outcome, sink, alone) = Experiment::new(
        common::cluster_sim(cluster, seed),
        PolicyConfig::ssr_strict(),
        OrderConfig::FifoPriority,
    )
    .foreground([fg])
    .background([bg])
    .run_traced_with_baselines(Some(Box::new(JsonlSink::new())));
    assert!(outcome.contended.completed, "explain scenario must complete");
    let contended = sink
        .expect("sink attached")
        .into_any()
        .downcast::<JsonlSink>()
        .expect("JsonlSink recovered")
        .finish();
    let contended = ssr_explain::parse_trace(&contended).expect("own trace parses");
    let baselines: Vec<ssr_explain::Trace> = alone
        .iter()
        .map(|a| ssr_explain::parse_trace(&a.jsonl).expect("own alone trace parses"))
        .collect();
    let report = ssr_explain::explain(&contended, &baselines).expect("analysis succeeds");
    report.render_text(72)
}

/// Runs the canonical decision-trace scenario and renders its
/// deterministic work counters as sorted-key JSON.
///
/// Byte-stable for a given seed and worker count-independent —
/// `figures --counters PATH` writes it to disk and CI diffs two
/// invocations, pinning the whole counter plane (scheduler increments,
/// event-queue flow statistics, report harvest, JSON render).
pub fn counters_report(seed: u64) -> String {
    use ssr_cluster::ClusterSpec;
    use ssr_sim::{OrderConfig, PolicyConfig, Simulation};
    use ssr_simcore::dist::constant;
    use ssr_simcore::SimTime;
    use ssr_workload::synthetic::{map_only, pipeline_of};

    let fg = pipeline_of(
        "fg-pipeline",
        &[(4, constant(2.0)), (2, constant(6.0)), (1, constant(3.0))],
        common::FG_PRIORITY,
        SimTime::from_secs(5),
    )
    .expect("valid spec");
    let bg = map_only("bg-batch", 16, constant(9.0), common::BG_PRIORITY).expect("valid spec");
    let cluster = ClusterSpec::new(4, 2).expect("valid cluster");
    let report = Simulation::new(
        common::cluster_sim(cluster, seed),
        PolicyConfig::ssr_strict(),
        OrderConfig::FifoPriority,
        vec![fg, bg],
    )
    .run();
    assert!(report.completed, "canonical counter scenario must complete");
    report.counters.render_json()
}

/// Runs one figure by id and returns its rendered output.
///
/// Returns `None` for an unknown id.
pub fn run(id: &str) -> Option<String> {
    let out = match id {
        "fig01" => fig01::run(),
        "fig04" => fig04::run(),
        "fig05" => fig05::run(),
        "fig06" => fig06::run(),
        "fig08" => fig08::run(),
        "fig10" => fig10::run(),
        "fig12" => fig12::run(),
        "fig13" => fig13::run(),
        "fig14" => fig14::run(),
        "fig15" => fig15::run(),
        "fig16" => fig16::run(),
        "fig17" => fig17::run(),
        "ablation" => ablation::run(),
        _ => return None,
    };
    Some(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn registry_covers_all_ids() {
        for id in super::ALL {
            // Only check dispatch wiring for the cheap closed-form figures;
            // simulator figures are exercised by their own tests.
            if id == "fig08" {
                assert!(super::run(id).is_some());
            }
        }
        assert!(super::run("fig99").is_none());
    }

    #[test]
    fn explain_report_is_reproducible_and_complete() {
        let a = super::explain_report(11);
        let b = super::explain_report(11);
        assert_eq!(a, b, "same-seed explain reports must be byte-identical");
        for section in ["== ssr-explain:", "-- timeline --", "-- per-job activity",
                        "-- critical paths --", "-- slowdown attribution"] {
            assert!(a.contains(section), "report must contain {section:?}");
        }
        assert!(a.contains("conserves gap: yes"), "decomposition must conserve");
        assert!(!a.contains("conserves gap: NO"));
    }

    #[test]
    fn counters_report_is_reproducible_and_trace_independent() {
        let a = super::counters_report(11);
        let b = super::counters_report(11);
        assert_eq!(a, b, "same-seed counter reports must be byte-identical");
        assert!(a.starts_with("{\n  \"approval_calls\":"), "{a}");
        for key in ["offer_rounds", "slots_scanned", "tasks_assigned", "events_popped"] {
            assert!(a.contains(&format!("\"{key}\"")), "report must carry {key}");
        }
        // Attaching a decision-trace sink must not move a single counter:
        // trace-gated work is deliberately uncounted, so the counter
        // plane is identical whether or not the run is observed.
        use ssr_cluster::ClusterSpec;
        use ssr_sim::{OrderConfig, PolicyConfig, Simulation};
        use ssr_simcore::dist::constant;
        use ssr_simcore::SimTime;
        use ssr_workload::synthetic::{map_only, pipeline_of};
        let fg = pipeline_of(
            "fg-pipeline",
            &[(4, constant(2.0)), (2, constant(6.0)), (1, constant(3.0))],
            super::common::FG_PRIORITY,
            SimTime::from_secs(5),
        )
        .unwrap();
        let bg =
            map_only("bg-batch", 16, constant(9.0), super::common::BG_PRIORITY).unwrap();
        let cluster = ClusterSpec::new(4, 2).unwrap();
        let (traced, _) = Simulation::new(
            super::common::cluster_sim(cluster, 11),
            PolicyConfig::ssr_strict(),
            OrderConfig::FifoPriority,
            vec![fg, bg],
        )
        .with_trace_sink(Box::new(ssr_trace::JsonlSink::new()))
        .run_traced();
        assert_eq!(a, traced.counters.render_json(), "tracing must not shift counters");
    }

    #[test]
    fn decision_trace_is_reproducible_and_well_formed() {
        let a = super::decision_trace_jsonl(11);
        let b = super::decision_trace_jsonl(11);
        assert_eq!(a, b, "same-seed traces must be byte-identical");
        assert!(a.starts_with(r#"{"event":"trace-start","fields":{"schema_version":3}"#));
        for needle in ["job-submitted", "offer-round-started", "task-launched", "job-completed"] {
            assert!(
                a.contains(&format!(r#""event":"{needle}""#)),
                "trace must contain {needle} events"
            );
        }
    }
}
