//! **Fig. 8** — The numerical trade-off between utilization and isolation
//! (Eq. 4), for shape parameters α ∈ {1.2, 1.6, 2.0, 2.4} and degrees of
//! parallelism N ∈ {20, 200}.

use ssr_analytics::tradeoff::tradeoff_curve;

use crate::table::{num, Table};

const ALPHAS: [f64; 4] = [1.2, 1.6, 2.0, 2.4];
const NS: [u32; 2] = [20, 200];
const POINTS: usize = 11;

/// Runs the figure and renders its tables.
pub fn run() -> String {
    let mut out = String::from(
        "Fig. 8 — utilization lower bound E[U] vs isolation guarantee P (Eq. 4)\n\
         paper: trade-off sharpens as the tail gets heavier (smaller alpha)\n\n",
    );
    for n in NS {
        let mut table = Table::new([
            "P".to_owned(),
            format!("E[U] a=1.2 N={n}"),
            format!("E[U] a=1.6 N={n}"),
            format!("E[U] a=2.0 N={n}"),
            format!("E[U] a=2.4 N={n}"),
        ]);
        // Closed-form but independent per alpha; evaluated on the worker
        // pool and merged in alpha order like every other figure.
        let curves: Vec<Vec<f64>> =
            ssr_sim::par_map(ssr_sim::worker_count(), &ALPHAS, |&a| {
                tradeoff_curve(a, n, POINTS)
                    .expect("valid parameters")
                    .into_iter()
                    .map(|p| p.utilization)
                    .collect()
            });
        for i in 0..POINTS {
            let p = i as f64 / (POINTS - 1) as f64;
            let mut row = vec![num(p)];
            row.extend(curves.iter().map(|curve| num(curve[i])));
            table.row(row);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn curves_have_the_paper_shape() {
        let out = super::run();
        // At P = 0 every curve starts at 1.000; at P = 1 it ends at 0.000.
        let check = |first: &str, rest: &str| {
            out.lines().filter(|l| l.starts_with(first)).all(|l| {
                l.split_whitespace().skip(1).all(|c| c == rest)
            })
        };
        assert!(check("0.000", "1.000"), "P=0 rows must all be 1.000:\n{out}");
        assert!(check("1.000", "0.000"), "P=1 rows must all be 0.000:\n{out}");
    }
}
