//! **Fig. 17** — Average JCT reduction of the foreground jobs from the
//! §IV-C straggler mitigation strategy, as the latency tail varies.
//!
//! As in the paper, the foreground task durations are re-fit to a Pareto
//! distribution with a given shape α and *the same mean*; mitigation is
//! compared against plain SSR (reserved slots kept idle). Heavier tails
//! (smaller α) benefit more; the paper reports 73% average JCT reduction
//! at the production-typical α = 1.6.

use ssr_dag::{JobSpec, JobSpecBuilder};
use ssr_sim::{OrderConfig, PolicyConfig, SimConfig, Simulation};
use ssr_simcore::dist::Pareto;
use ssr_simcore::SimDuration;

use crate::figures::common::{background_jobs_large, large_cluster, scaled, FG_PRIORITY};
use crate::table::{pct, Table};

const ALPHAS: [f64; 5] = [1.2, 1.6, 2.0, 2.4, 2.8];
const MEAN_TASK_SECS: f64 = 4.0;

/// Runs the figure and renders its table.
pub fn run() -> String {
    run_scaled(scaled(200, 4000), scaled(48, 100), 111)
}

/// Builds a foreground pipeline whose task durations are Pareto with the
/// requested shape and a fixed mean (the paper's re-fitting).
fn refit_pipeline(name: &str, alpha: f64, parallelism: u32) -> JobSpec {
    let pareto =
        Pareto::with_mean(MEAN_TASK_SECS, alpha).expect("alpha > 1 keeps the mean finite");
    let dist = std::sync::Arc::new(pareto);
    let mut b = JobSpecBuilder::new(name).priority(FG_PRIORITY);
    for p in 0..4 {
        b = b.stage(format!("phase-{p}"), parallelism, dist.clone());
    }
    b.chain().build().expect("valid pipeline")
}

pub(crate) fn run_scaled(bg_jobs: u32, parallelism: u32, seed: u64) -> String {
    let cluster = large_cluster();
    let mut table = Table::new(["alpha", "JCT w/o mitigation (s)", "JCT w/ mitigation (s)", "reduction"]);
    let mut at_16 = 0.0;
    // Every (alpha, policy) cell is an independent simulation: fan all ten
    // out across the runner's worker pool and merge back in alpha order.
    let tasks: Vec<(f64, bool)> =
        ALPHAS.iter().flat_map(|&alpha| [(alpha, false), (alpha, true)]).collect();
    let jcts = ssr_sim::par_map(ssr_sim::worker_count(), &tasks, |&(alpha, mitigate)| {
        let policy = if mitigate {
            PolicyConfig::ssr_strict_with_stragglers()
        } else {
            PolicyConfig::ssr_strict()
        };
        let mut jobs = vec![refit_pipeline("fg", alpha, parallelism)];
        jobs.extend(background_jobs_large(
            bg_jobs,
            1.0,
            SimDuration::from_secs(1800),
            seed,
        ));
        Simulation::new(SimConfig::new(cluster).with_seed(seed), policy, OrderConfig::FifoPriority, jobs)
            .run()
            .jct_secs("fg")
            .expect("foreground finishes")
    });
    for (i, &alpha) in ALPHAS.iter().enumerate() {
        let without = jcts[2 * i];
        let with = jcts[2 * i + 1];
        let reduction = 1.0 - with / without;
        if (alpha - 1.6).abs() < 1e-9 {
            at_16 = reduction;
        }
        table.row([
            format!("{alpha:.1}"),
            format!("{without:.1}"),
            format!("{with:.1}"),
            pct(reduction),
        ]);
    }
    format!(
        "Fig. 17 — JCT reduction from straggler mitigation vs latency tail\n\
         paper: heavier tails benefit more; 73% average reduction at alpha=1.6\n\
         measured at alpha=1.6: {}\n\n{}",
        pct(at_16),
        table.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn mitigation_helps_most_on_heavy_tails() {
        let out = super::run_scaled(30, 24, 5);
        let reductions: Vec<f64> = out
            .lines()
            .filter(|l| {
                l.starts_with("1.") || l.starts_with("2.")
            })
            .filter_map(|l| {
                l.split_whitespace()
                    .last()
                    .and_then(|w| w.trim_end_matches('%').parse().ok())
            })
            .collect();
        assert_eq!(reductions.len(), 5);
        // Heavy tail (alpha=1.2) must see a substantial reduction, larger
        // than the light tail (alpha=2.8).
        assert!(reductions[0] > 20.0, "alpha=1.2 reduction {}% too small", reductions[0]);
        assert!(
            reductions[0] > reductions[4],
            "heavy tail {}% should beat light tail {}%",
            reductions[0],
            reductions[4]
        );
    }
}
