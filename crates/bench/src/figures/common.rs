//! Shared helpers for the figure harnesses.

use ssr_cluster::{ClusterSpec, LocalityModel};
use ssr_dag::{JobSpec, Priority};
use ssr_sim::SimConfig;
use ssr_simcore::rng::SimRng;
use ssr_simcore::SimDuration;
use ssr_workload::google::GoogleTraceGenerator;
use ssr_workload::{GoogleTraceConfig, MllibParams};

/// The foreground priority used across the cluster experiments.
pub const FG_PRIORITY: Priority = Priority::new(10);
/// The background priority.
pub const BG_PRIORITY: Priority = Priority::new(0);

/// `true` when paper-scale runs were requested via `SSR_FULL=1`.
pub fn full_scale() -> bool {
    std::env::var("SSR_FULL").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Scales a quantity between the quick default and the paper-scale value.
pub fn scaled(quick: u32, full: u32) -> u32 {
    if full_scale() {
        full
    } else {
        quick
    }
}

/// The paper's 50-node EC2 cluster (2 executors per m4.large) — used at
/// quarter scale by default.
pub fn ec2_cluster() -> ClusterSpec {
    let nodes = scaled(24, 50);
    ClusterSpec::new(nodes, 2).expect("valid cluster")
}

/// The paper's 1000-node / 4000-slot simulated cluster — scaled down by
/// default.
pub fn large_cluster() -> ClusterSpec {
    let nodes = scaled(100, 1000);
    ClusterSpec::with_racks(nodes, 4, 20).expect("valid cluster")
}

/// Simulation config for the cluster-deployment figures (no meaningful
/// racks; locality wait 3 s).
pub fn cluster_sim(cluster: ClusterSpec, seed: u64) -> SimConfig {
    SimConfig::new(cluster)
        .with_locality(LocalityModel::paper_simulation())
        .with_seed(seed)
}

/// The three MLlib-like foreground applications at the cluster scale.
///
/// They arrive at t = 60 s, after the background load has built up —
/// matching the paper's setup where the foreground contends with an
/// already-running background mix.
pub fn foreground_apps() -> Vec<JobSpec> {
    let params = MllibParams::cluster()
        .with_priority(FG_PRIORITY)
        .with_arrival(ssr_simcore::SimTime::from_secs(60));
    ssr_workload::mllib::foreground_suite(&params).expect("valid templates")
}

/// Google-trace-like background jobs: `jobs` of them, dense enough to keep
/// the cluster backlogged (the regime of the paper's §II-B / §VI-A
/// figures), runtimes multiplied by `runtime_factor`.
pub fn background_jobs(jobs: u32, runtime_factor: f64, seed: u64) -> Vec<JobSpec> {
    let mut config = GoogleTraceConfig::cluster_hour()
        .with_jobs(jobs)
        .with_priority(BG_PRIORITY)
        .with_runtime_factor(runtime_factor);
    config.horizon = SimDuration::from_secs(scaled(600, 3600) as u64);
    config.median_tasks = scaled(20, 40);
    config.duration_scale_secs = 10.0;
    let mut rng = SimRng::stream(seed, 0);
    GoogleTraceGenerator::new(config).generate(&mut rng).expect("valid trace")
}

/// Background jobs for the large-scale simulation, spread over `horizon`.
pub fn background_jobs_large(
    jobs: u32,
    runtime_factor: f64,
    horizon: SimDuration,
    seed: u64,
) -> Vec<JobSpec> {
    let mut config = GoogleTraceConfig::simulation(jobs, horizon)
        .with_priority(BG_PRIORITY)
        .with_runtime_factor(runtime_factor);
    config.duration_scale_secs = 10.0;
    let mut rng = SimRng::stream(seed, 0);
    GoogleTraceGenerator::new(config).generate(&mut rng).expect("valid trace")
}

/// Staggers a set of foreground jobs uniformly over `[0, window]` —
/// latency-sensitive queries are submitted over time, not all at once.
pub fn stagger(jobs: Vec<JobSpec>, window: SimDuration) -> Vec<JobSpec> {
    let n = jobs.len().max(1) as u64;
    jobs.into_iter()
        .enumerate()
        .map(|(i, job)| {
            let at = ssr_simcore::SimTime::ZERO
                + SimDuration::from_micros(window.as_micros() * i as u64 / n);
            respecify_arrival(job, at)
        })
        .collect()
}

/// Rebuilds a job spec with a different arrival time.
fn respecify_arrival(job: JobSpec, at: ssr_simcore::SimTime) -> JobSpec {
    use ssr_dag::JobSpecBuilder;
    let mut b = JobSpecBuilder::new(job.name()).priority(job.priority()).arrival(at);
    for stage in job.stages() {
        let mut s =
            ssr_dag::StageSpec::new(stage.name(), stage.parallelism(), stage.duration().clone());
        if !stage.parallelism_known() {
            s = s.with_hidden_parallelism();
        }
        b = b.stage_spec(s);
    }
    for u in job.iter_stage_ids() {
        for &d in job.children(u) {
            b = b.edge(u.as_u32(), d.as_u32());
        }
    }
    b.build().expect("original spec was valid")
}

/// Downsamples a time series to at most `max_rows` evenly spaced samples.
pub fn downsample<T: Clone>(series: &[T], max_rows: usize) -> Vec<T> {
    if series.len() <= max_rows || max_rows == 0 {
        return series.to_vec();
    }
    let step = series.len() as f64 / max_rows as f64;
    (0..max_rows)
        .map(|i| series[(i as f64 * step) as usize].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_respects_env_default() {
        // Tests run without SSR_FULL set.
        if !full_scale() {
            assert_eq!(scaled(5, 50), 5);
        }
    }

    #[test]
    fn clusters_are_valid() {
        assert!(ec2_cluster().total_slots() >= 48);
        assert!(large_cluster().total_slots() >= 400);
    }

    #[test]
    fn foreground_apps_are_three() {
        let apps = foreground_apps();
        assert_eq!(apps.len(), 3);
        assert!(apps.iter().all(|a| a.priority() == FG_PRIORITY));
    }

    #[test]
    fn background_jobs_deterministic() {
        let a = background_jobs(10, 1.0, 1);
        let b = background_jobs(10, 1.0, 1);
        assert_eq!(a.len(), 10);
        assert_eq!(a[0].arrival(), b[0].arrival());
    }

    #[test]
    fn downsample_limits_rows() {
        let data: Vec<u32> = (0..1000).collect();
        let d = downsample(&data, 10);
        assert_eq!(d.len(), 10);
        assert_eq!(d[0], 0);
        let short = downsample(&data[..5], 10);
        assert_eq!(short.len(), 5);
    }
}
