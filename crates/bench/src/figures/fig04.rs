//! **Fig. 4** — Foreground jobs, despite a higher priority, are severely
//! slowed down by background jobs under work conservation.
//!
//! Three SparkBench applications (KMeans, SVM, PageRank) run at high
//! priority against 100 Google-trace-like background jobs, in three
//! contention settings: alone, with the background, and with *prolonged*
//! (task runtime × 2) background. Cluster: 50 nodes × 2 slots (paper);
//! 24 × 2 at the quick default.

use ssr_dag::JobSpec;
use ssr_sim::{Experiment, OrderConfig, PolicyConfig};

use crate::figures::common::{
    background_jobs, cluster_sim, ec2_cluster, foreground_apps, scaled,
};
use crate::table::{num, Table};

/// Runs the figure and renders its table.
pub fn run() -> String {
    run_scaled(scaled(40, 100), 21)
}

pub(crate) fn run_scaled(bg_jobs: u32, seed: u64) -> String {
    let mut table =
        Table::new(["app", "alone JCT (s)", "bg slowdown", "prolonged-bg slowdown"]);
    for app in foreground_apps() {
        let (alone, s1) = contended_slowdown(&app, bg_jobs, 1.0, seed);
        let (_, s2) = contended_slowdown(&app, bg_jobs, 2.0, seed);
        table.row([
            app.name().to_owned(),
            num(alone),
            format!("{s1:.2}x"),
            format!("{s2:.2}x"),
        ]);
    }
    format!(
        "Fig. 4 — foreground slowdown under work conservation, by background level\n\
         paper: slowdown grows with background task duration (up to several x)\n\n{}",
        table.render()
    )
}

fn contended_slowdown(app: &JobSpec, bg_jobs: u32, factor: f64, seed: u64) -> (f64, f64) {
    let outcome = Experiment::new(
        cluster_sim(ec2_cluster(), seed).stop_after([app.name()]),
        PolicyConfig::WorkConserving,
        OrderConfig::FifoPriority,
    )
    .foreground([app.clone()])
    .background(background_jobs(bg_jobs, factor, seed))
    .run();
    let row = outcome.slowdown_of(app.name()).expect("foreground measured");
    (row.alone_jct_secs, row.slowdown)
}

#[cfg(test)]
mod tests {
    #[test]
    fn slowdown_grows_with_background_duration() {
        // Tiny version: one app, few background jobs.
        let out = super::run_scaled(40, 5);
        assert!(out.contains("kmeans"));
        for app in ["kmeans", "svm", "pagerank"] {
            let line = out.lines().find(|l| l.starts_with(app)).unwrap();
            let cells: Vec<&str> = line.split_whitespace().collect();
            let s1: f64 = cells[cells.len() - 2].trim_end_matches('x').parse().unwrap();
            let s2: f64 = cells[cells.len() - 1].trim_end_matches('x').parse().unwrap();
            assert!(s1 > 1.05, "{app} not slowed by background: {s1}");
            assert!(s2 >= s1 * 0.9, "{app}: prolonged bg should hurt at least as much");
        }
    }
}
