//! **Fig. 14** — The measured trade-off between service isolation and
//! utilization, navigated via the isolation-target knob `P`.
//!
//! Each foreground application runs against the background at isolation
//! targets P ∈ {0.2 … 1.0}. P = 1 (never-expiring reservations) is the
//! baseline with maximal utilization loss; *utilization improvement* at
//! smaller P is the reduction of reserved-idle slot time relative to that
//! baseline. The paper finds less slowdown at higher P, at the price of
//! smaller utilization improvement.

use ssr_dag::JobSpec;
use ssr_sim::{Experiment, ExperimentOutcome, OrderConfig, PolicyConfig};

use crate::figures::common::{
    background_jobs, cluster_sim, ec2_cluster, foreground_apps, scaled,
};
use crate::table::{pct, Table};

const TARGETS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

/// Runs the figure and renders its tables.
pub fn run() -> String {
    run_scaled(scaled(40, 100), scaled(3, 10), 71)
}

pub(crate) fn run_scaled(bg_jobs: u32, reps: u32, seed: u64) -> String {
    let mut out = String::from(
        "Fig. 14 — isolation target P vs slowdown and utilization improvement\n\
         paper: higher P -> lower slowdown but smaller utilization improvement\n\n",
    );
    for app in foreground_apps() {
        let baseline = mean_over_reps(&app, Some(1.0), bg_jobs, reps, seed);
        let mut table = Table::new(["P", "slowdown", "reserved-idle (slot-s)", "util improvement"]);
        // Work-conserving reference: the no-reservation endpoint of the
        // trade-off (maximal utilization, no isolation).
        let wc = mean_over_reps(&app, None, bg_jobs, reps, seed);
        table.row([
            "wc".to_owned(),
            format!("{:.2}x", wc.0),
            format!("{:.0}", wc.1),
            "n/a".to_owned(),
        ]);
        for &p in &TARGETS {
            let (slowdown, idle) = if (p - 1.0).abs() < 1e-12 {
                baseline
            } else {
                mean_over_reps(&app, Some(p), bg_jobs, reps, seed)
            };
            let improvement = if baseline.1 > 0.0 { 1.0 - idle / baseline.1 } else { 0.0 };
            table.row([
                format!("{p:.1}"),
                format!("{slowdown:.2}x"),
                format!("{idle:.0}"),
                pct(improvement),
            ]);
        }
        out.push_str(&format!("{}\n{}\n", app.name(), table.render()));
    }
    out
}

/// Mean (slowdown, reserved-idle slot-seconds) over repetitions;
/// `p = None` runs the work-conserving reference.
fn mean_over_reps(app: &JobSpec, p: Option<f64>, bg_jobs: u32, reps: u32, seed: u64) -> (f64, f64) {
    let mut slowdown = 0.0;
    let mut idle = 0.0;
    for r in 0..reps.max(1) {
        let outcome = run_once(app, p, bg_jobs, seed + 1000 * r as u64);
        slowdown += outcome.mean_slowdown();
        idle += outcome.contended.reserved_idle_slot_secs;
    }
    let n = reps.max(1) as f64;
    (slowdown / n, idle / n)
}

fn run_once(app: &JobSpec, p: Option<f64>, bg_jobs: u32, seed: u64) -> ExperimentOutcome {
    let policy = match p {
        Some(p) => PolicyConfig::ssr_with_isolation(p),
        None => PolicyConfig::WorkConserving,
    };
    Experiment::new(
        cluster_sim(ec2_cluster(), seed).stop_after([app.name()]),
        policy,
        OrderConfig::FifoPriority,
    )
    .foreground([app.clone()])
    .background(background_jobs(bg_jobs, 1.0, seed))
    .run()
}

#[cfg(test)]
mod tests {
    #[test]
    fn p_one_is_the_idle_baseline() {
        let out = super::run_scaled(10, 1, 5);
        // For every app, the P=1.0 row has 0.0% improvement by definition.
        for section in out.split("\n\n").filter(|s| s.contains("1.0  ")) {
            let row = section.lines().find(|l| l.starts_with("1.0")).unwrap();
            assert!(row.trim_end().ends_with("0.0%"), "baseline row: {row}");
        }
        // Lower P should never increase reserved-idle time above baseline.
        for section in out.split('\n').filter(|l| l.starts_with("0.2")) {
            let improvement: f64 = section
                .split_whitespace()
                .last()
                .unwrap()
                .trim_end_matches('%')
                .parse()
                .unwrap();
            assert!(improvement >= -5.0, "P=0.2 improvement {improvement}% strongly negative");
        }
    }
}
