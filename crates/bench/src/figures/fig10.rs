//! **Fig. 10** — Numerical study of reserved-slot straggler mitigation:
//! phase-completion-time reduction vs Pareto shape α, for N ∈ {20, 100,
//! 200}, 1000 Monte-Carlo runs per point (as in the paper).

use ssr_analytics::straggler::mitigation_study;

use crate::figures::common::scaled;
use crate::table::{pct, Table};

const NS: [u32; 3] = [20, 100, 200];

/// Runs the figure and renders its table.
pub fn run() -> String {
    run_scaled(scaled(400, 1000), 101)
}

pub(crate) fn run_scaled(runs: u32, seed: u64) -> String {
    let alphas = [1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.4, 2.6, 2.8];
    let mut table = Table::new([
        "alpha",
        "JCT reduction N=20",
        "JCT reduction N=100",
        "JCT reduction N=200",
    ]);
    let mut at_16 = [0.0f64; 3];
    for &alpha in &alphas {
        let mut cells = vec![format!("{alpha:.1}")];
        for (i, &n) in NS.iter().enumerate() {
            let study = mitigation_study(alpha, n, runs, seed + n as u64).expect("valid study");
            if (alpha - 1.6).abs() < 1e-9 {
                at_16[i] = study.reduction();
            }
            cells.push(pct(study.reduction()));
        }
        table.row(cells);
    }
    format!(
        "Fig. 10 — straggler mitigation speedup (numerical, {runs} runs/point)\n\
         paper: heavier tails and higher parallelism benefit more; >50% at alpha=1.6\n\
         measured at alpha=1.6: N=20 {}, N=100 {}, N=200 {}\n\n{}",
        pct(at_16[0]),
        pct(at_16[1]),
        pct(at_16[2]),
        table.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn reduction_exceeds_half_at_alpha_16_high_parallelism() {
        let out = super::run_scaled(200, 7);
        let line = out.lines().find(|l| l.starts_with("measured at alpha=1.6")).unwrap();
        let pcts: Vec<f64> = line
            .split_whitespace()
            .filter_map(|w| w.trim_end_matches(&[',', '%'][..]).parse::<f64>().ok())
            .collect();
        // N=200 reduction (last) must exceed 50% and N=20 (first numeric).
        let n200 = pcts.last().copied().unwrap();
        assert!(n200 > 50.0, "N=200 reduction {n200}% <= 50%");
    }
}
