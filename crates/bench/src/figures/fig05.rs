//! **Fig. 5** — Running-task count of KMeans over time (parallelism 20),
//! with and without background contention, under work conservation.
//!
//! The paper's microbenchmark shows KMeans holding all 20 slots between
//! barriers when alone, but collapsing to near zero at each barrier and
//! ramping up slowly when background jobs contend.

use ssr_sim::{OrderConfig, PolicyConfig, SimReport, Simulation};
use ssr_workload::mllib;
use ssr_workload::MllibParams;

use crate::figures::common::{
    background_jobs, cluster_sim, downsample, ec2_cluster, scaled, FG_PRIORITY,
};
use crate::table::Table;

/// Runs the figure and renders its table.
pub fn run() -> String {
    run_scaled(scaled(40, 100), 31)
}

pub(crate) fn run_scaled(bg_jobs: u32, seed: u64) -> String {
    let params = MllibParams::cluster().with_priority(FG_PRIORITY); // parallelism 20
    let kmeans = mllib::kmeans(&params).expect("valid template");

    let run = |with_bg: bool| -> SimReport {
        let mut jobs = vec![kmeans.clone()];
        if with_bg {
            jobs.extend(background_jobs(bg_jobs, 1.0, seed));
        }
        Simulation::new(
            cluster_sim(ec2_cluster(), seed).track_jobs(["kmeans"]),
            PolicyConfig::WorkConserving,
            OrderConfig::FifoPriority,
            jobs,
        )
        .run()
    };

    let alone = run(false);
    let contended = run(true);

    let mut table = Table::new(["t (s, alone)", "running (alone)", "t (s, contended)", "running (contended)"]);
    // Truncate each series at the KMeans completion instant; later samples
    // only describe the background.
    let cut = |report: &SimReport| -> Vec<_> {
        let end = report
            .job("kmeans")
            .and_then(|j| j.completed_secs)
            .unwrap_or(f64::INFINITY);
        report.timeseries.iter().filter(|s| s.time_secs <= end).cloned().collect()
    };
    let a = downsample(&cut(&alone), 24);
    let c = downsample(&cut(&contended), 24);
    for i in 0..a.len().max(c.len()) {
        let (ta, ra) = a
            .get(i)
            .map(|s| (format!("{:.1}", s.time_secs), s.running[0].1.to_string()))
            .unwrap_or_default();
        let (tc, rc) = c
            .get(i)
            .map(|s| (format!("{:.1}", s.time_secs), s.running[0].1.to_string()))
            .unwrap_or_default();
        table.row([ta, ra, tc, rc]);
    }
    let peak_alone = peak(&alone);
    let peak_contended = peak(&contended);
    format!(
        "Fig. 5 — KMeans running tasks over time (parallelism 20), work conserving\n\
         paper: in contention, KMeans loses slots at each barrier and ramps up slowly\n\
         peak running: alone {peak_alone}, contended {peak_contended}; \
         KMeans JCT: alone {:.1}s, contended {:.1}s\n\n{}",
        alone.jct_secs("kmeans").unwrap_or(f64::NAN),
        contended.jct_secs("kmeans").unwrap_or(f64::NAN),
        table.render()
    )
}

fn peak(report: &SimReport) -> usize {
    report
        .timeseries
        .iter()
        .flat_map(|s| s.running.iter().map(|(_, c)| *c))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn contention_inflates_kmeans_jct() {
        let out = super::run_scaled(15, 5);
        assert!(out.contains("KMeans JCT"));
        // Parse "alone Xs, contended Ys" and check contended > alone.
        let line = out.lines().find(|l| l.contains("KMeans JCT")).unwrap();
        let nums: Vec<f64> = line
            .split(&[' ', ','][..])
            .filter_map(|w| w.strip_suffix('s').and_then(|n| n.parse().ok()))
            .collect();
        assert!(nums.len() >= 2);
        assert!(nums[1] > nums[0], "contended {:?} must exceed alone", nums);
    }
}
