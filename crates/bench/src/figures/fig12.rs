//! **Fig. 12** — Slowdown of each foreground job with and without
//! speculative slot reservation, under (a) the standard background and
//! (b) background task durations doubled.
//!
//! The paper's headline cluster result: with SSR each foreground job sees
//! < 10% slowdown; without it, severalfold.

use ssr_dag::JobSpec;
use ssr_sim::{Experiment, OrderConfig, PolicyConfig};

use crate::figures::common::{
    background_jobs, cluster_sim, ec2_cluster, foreground_apps, scaled,
};
use crate::table::Table;

/// Runs the figure and renders its tables.
pub fn run() -> String {
    run_scaled(scaled(40, 100), 51)
}

pub(crate) fn run_scaled(bg_jobs: u32, seed: u64) -> String {
    let mut out = String::from(
        "Fig. 12 — foreground slowdown with vs without speculative slot reservation\n\
         paper: SSR holds every foreground job below 1.10x slowdown\n\n",
    );
    for (label, factor) in [("(a) standard background", 1.0), ("(b) background x2", 2.0)] {
        let mut table = Table::new(["app", "w/o SSR slowdown", "w/ SSR slowdown"]);
        for app in foreground_apps() {
            let wc = slowdown(&app, PolicyConfig::WorkConserving, bg_jobs, factor, seed);
            let ssr = slowdown(&app, PolicyConfig::ssr_strict(), bg_jobs, factor, seed);
            table.row([app.name().to_owned(), format!("{wc:.2}x"), format!("{ssr:.2}x")]);
        }
        out.push_str(label);
        out.push('\n');
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

fn slowdown(app: &JobSpec, policy: PolicyConfig, bg_jobs: u32, factor: f64, seed: u64) -> f64 {
    Experiment::new(
        cluster_sim(ec2_cluster(), seed).stop_after([app.name()]),
        policy,
        OrderConfig::FifoPriority,
    )
        .foreground([app.clone()])
        .background(background_jobs(bg_jobs, factor, seed))
        .run()
        .slowdown_of(app.name())
        .expect("foreground measured")
        .slowdown
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 12(a) setting (kmeans against the standard background,
    /// scaled down), traced end-to-end: ssr-explain's slowdown
    /// decomposition must conserve the measured contended−alone gap, and
    /// the JCTs it derives from the traces must agree with the JCTs the
    /// experiment itself reports.
    #[test]
    fn attribution_conserves_on_fig12a_scenario() {
        use ssr_trace::JsonlSink;

        let app = crate::figures::common::foreground_apps()
            .into_iter()
            .next()
            .expect("kmeans exists");
        let (outcome, sink, alone) = Experiment::new(
            cluster_sim(ec2_cluster(), 51).stop_after([app.name()]),
            PolicyConfig::WorkConserving,
            OrderConfig::FifoPriority,
        )
        .foreground([app.clone()])
        .background(background_jobs(40, 1.0, 51))
        .run_traced_with_baselines(Some(Box::new(JsonlSink::new())));

        let contended_doc = sink
            .expect("sink attached")
            .into_any()
            .downcast::<JsonlSink>()
            .expect("JsonlSink recovered")
            .finish();
        let contended = ssr_explain::parse_trace(&contended_doc).expect("contended trace parses");
        assert_eq!(alone.len(), 1);
        let baseline = ssr_explain::parse_trace(&alone[0].jsonl).expect("alone trace parses");

        let a = ssr_explain::attribute(&contended, &baseline, app.name())
            .expect("foreground completes in both traces");
        // Work-conserving under the standard background: a real gap.
        assert!(a.gap_secs > 1.0, "expected contention, gap {}", a.gap_secs);
        // The decomposition must conserve the gap…
        assert!(
            a.conserves(1e-6),
            "components {} != gap {}",
            a.components_sum(),
            a.gap_secs
        );
        // …and name at least part of it (not pure residual).
        assert!(
            a.reservation_denied_secs + a.locality_secs + a.rampup_secs > 0.0,
            "no named cause: {a:?}"
        );
        // Trace-derived JCTs agree with the experiment's own report.
        let row = outcome.slowdown_of(app.name()).expect("foreground measured");
        assert!(
            (a.contended_jct_secs - row.contended_jct_secs).abs() < 1e-6,
            "trace JCT {} vs report JCT {}",
            a.contended_jct_secs,
            row.contended_jct_secs
        );
        assert!(
            (a.alone_jct_secs - row.alone_jct_secs).abs() < 1e-6,
            "trace alone JCT {} vs report {}",
            a.alone_jct_secs,
            row.alone_jct_secs
        );
    }

    /// Fig. 12(a) again, with a node crashing mid-run and healing later:
    /// the decomposition must still conserve the contended−alone gap, the
    /// crash-induced stall must surface in the `fault-recovery` bucket,
    /// and the invariant checker must stay clean on both the faulted
    /// contended trace and the fault-free alone baseline.
    #[test]
    fn attribution_conserves_on_faulted_fig12a_scenario() {
        use ssr_sim::{FaultKind, FaultPlan};
        use ssr_simcore::{SimDuration, SimTime};
        use ssr_trace::JsonlSink;

        let app = crate::figures::common::foreground_apps()
            .into_iter()
            .next()
            .expect("kmeans exists");
        // The foreground arrives at t = 60 s (after the background builds
        // up); most of the cluster crashes 20 s later. The outage must be
        // large enough to *block* the foreground — a small one just
        // requeues tasks onto free survivors in the same instant, and an
        // unblocked job accrues no deficit anywhere.
        let mut plan = FaultPlan::new();
        for node in 0..20 {
            plan.push(
                SimTime::from_secs(80),
                FaultKind::NodeCrash { node, down: Some(SimDuration::from_secs(40)) },
            );
        }
        let (outcome, sink, alone) = Experiment::new(
            cluster_sim(ec2_cluster(), 51).stop_after([app.name()]).with_faults(plan),
            PolicyConfig::WorkConserving,
            OrderConfig::FifoPriority,
        )
        .foreground([app.clone()])
        .background(background_jobs(40, 1.0, 51))
        .run_traced_with_baselines(Some(Box::new(JsonlSink::new())));

        let contended_doc = sink
            .expect("sink attached")
            .into_any()
            .downcast::<JsonlSink>()
            .expect("JsonlSink recovered")
            .finish();
        let contended = ssr_explain::parse_trace(&contended_doc).expect("contended trace parses");
        // The alone baseline measures the job undisturbed: faults are
        // stripped from it even when the contended run schedules them.
        assert_eq!(alone.len(), 1);
        assert!(
            !alone[0].jsonl.contains(r#""event":"task-crashed""#),
            "alone baseline must run fault-free"
        );
        let baseline = ssr_explain::parse_trace(&alone[0].jsonl).expect("alone trace parses");
        assert!(
            contended_doc.contains(r#""event":"slot-offline""#),
            "the crash must actually strike the contended run"
        );

        let a = ssr_explain::attribute(&contended, &baseline, app.name())
            .expect("foreground completes in both traces");
        assert!(
            a.conserves(1e-6),
            "components {} != gap {} on the faulted run",
            a.components_sum(),
            a.gap_secs
        );
        assert!(
            a.fault_recovery_secs > 0.0,
            "crash-induced stalls must land in fault-recovery: {a:?}"
        );
        // The checker passes the figure scenario with and without faults.
        let checked = ssr_check::InvariantChecker::new().check_all(&contended.events);
        assert!(checked.is_clean(), "faulted figure trace:\n{}", checked.render_text());
        let checked_alone = ssr_check::InvariantChecker::new().check_all(&baseline.events);
        assert!(checked_alone.is_clean(), "alone trace:\n{}", checked_alone.render_text());
        // The experiment still measures the foreground.
        assert!(outcome.slowdown_of(app.name()).is_some());
    }

    #[test]
    fn ssr_enforces_isolation_where_work_conserving_fails() {
        let out = super::run_scaled(15, 5);
        for app in ["kmeans", "svm", "pagerank"] {
            for line in out.lines().filter(|l| l.starts_with(app)) {
                let cells: Vec<f64> = line
                    .split_whitespace()
                    .filter_map(|w| w.strip_suffix('x').and_then(|n| n.parse().ok()))
                    .collect();
                let (wc, ssr) = (cells[0], cells[1]);
                assert!(ssr <= wc + 1e-9, "{app}: SSR {ssr} worse than WC {wc}");
                assert!(ssr < 1.35, "{app}: SSR slowdown {ssr} too large");
            }
        }
    }
}
