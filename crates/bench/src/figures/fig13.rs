//! **Fig. 13** — Fair sharing with and without speculative slot
//! reservation.
//!
//! Two synthetic jobs under the Fair scheduler: job-1 is a 3-phase
//! pipeline, job-2 is map-only with many independent tasks. Without SSR,
//! job-1 surrenders all its slots to job-2 at every barrier and cannot
//! reclaim them; with SSR it withholds its fair share throughout.

use ssr_dag::Priority;
use ssr_sim::{OrderConfig, PolicyConfig, SimReport, Simulation};
use ssr_simcore::dist::{constant, pareto};
use ssr_simcore::SimTime;
use ssr_workload::synthetic::{map_only, pipeline_of};

use crate::figures::common::{cluster_sim, downsample};
use crate::table::Table;

/// Runs the figure and renders its tables.
pub fn run() -> String {
    run_seeded(61)
}

pub(crate) fn run_seeded(seed: u64) -> String {
    let cluster = ssr_cluster::ClusterSpec::new(4, 2).expect("valid cluster");
    // Equal priorities: isolation must come from fair sharing alone.
    // job-1's parallelism (4) equals its fair share of the 8 slots, so
    // "keeping its share" and "keeping its slots" coincide, as in the
    // paper's experiment; job-2 supplies an endless backlog of long tasks.
    let job1 = || {
        pipeline_of(
            "job-1",
            &[
                (4, pareto(3.0, 1.6)),
                (4, pareto(3.0, 1.6)),
                (4, pareto(3.0, 1.6)),
            ],
            Priority::new(0),
            SimTime::ZERO,
        )
        .expect("valid pipeline")
    };
    let job2 = || map_only("job-2", 120, constant(30.0), Priority::new(0)).expect("valid job");

    // The two policy runs are independent; run both on the worker pool.
    let policies = [PolicyConfig::WorkConserving, PolicyConfig::ssr_strict()];
    let mut reports: Vec<SimReport> =
        ssr_sim::par_map(ssr_sim::worker_count(), &policies, |policy| {
            Simulation::new(
                cluster_sim(cluster, seed).track_jobs(["job-1", "job-2"]),
                policy.clone(),
                OrderConfig::Fair,
                vec![job1(), job2()],
            )
            .run()
        });
    let with = reports.pop().expect("two reports");
    let without = reports.pop().expect("two reports");

    let mut out = String::from(
        "Fig. 13 — fair scheduler allocations over time (8 slots, 2 jobs)\n\
         paper: without SSR job-1 loses its share at each barrier; with SSR it keeps ~50%\n\n",
    );
    for (label, report) in [("(a) w/o SSR", &without), ("(b) w/ SSR", &with)] {
        let mut table = Table::new(["t (s)", "job-1 running", "job-2 running"]);
        // Truncate at job-1 completion; afterwards job-2 trivially owns
        // the cluster.
        let end = report.job("job-1").and_then(|j| j.completed_secs).unwrap_or(f64::INFINITY);
        let series: Vec<_> =
            report.timeseries.iter().filter(|s| s.time_secs <= end).cloned().collect();
        for s in downsample(&series, 20) {
            let j1 = s.running.iter().find(|(n, _)| n == "job-1").map_or(0, |(_, c)| *c);
            let j2 = s.running.iter().find(|(n, _)| n == "job-2").map_or(0, |(_, c)| *c);
            table.row([format!("{:.1}", s.time_secs), j1.to_string(), j2.to_string()]);
        }
        out.push_str(&format!(
            "{label}: job-1 JCT {:.1}s\n{}\n",
            report.jct_secs("job-1").unwrap_or(f64::NAN),
            table.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn ssr_restores_fair_share_for_the_pipeline_job() {
        let out = super::run_seeded(5);
        let jcts: Vec<f64> = out
            .lines()
            .filter(|l| l.contains("job-1 JCT"))
            .filter_map(|l| {
                l.split_whitespace()
                    .find_map(|w| w.strip_suffix('s').and_then(|n| n.parse().ok()))
            })
            .collect();
        assert_eq!(jcts.len(), 2);
        let (without, with) = (jcts[0], jcts[1]);
        assert!(
            with < without,
            "SSR must shorten the pipeline job under fair sharing: {with} !< {without}"
        );
    }
}
