//! **Fig. 6** — Task slowdown without data locality.
//!
//! The paper samples five phases of each SparkBench application and runs
//! their tasks at locality level `ANY` (remote data + cold JVM),
//! normalising by the `PROCESS_LOCAL` duration; slowdowns reach two
//! orders of magnitude. We reproduce the measurement procedure against
//! the heavy-tailed locality-penalty model: per task, the realised `ANY`
//! duration over the realised `PROCESS_LOCAL` duration.

use ssr_cluster::{LocalityLevel, LocalityModel};
use ssr_simcore::dist::lognormal_mean_cv;
use ssr_simcore::rng::SimRng;
use ssr_simcore::stats::Summary;
use ssr_simcore::SimDuration;

use crate::table::{num, Table};

/// Per-application heavy-tail parameters for the ANY-level penalty
/// (mean slowdown, coefficient of variation). PageRank's shuffle-heavy
/// phases suffer the most, matching the paper's measurement.
const APPS: [(&str, f64, f64); 3] =
    [("kmeans", 8.0, 1.2), ("svm", 6.0, 1.0), ("pagerank", 14.0, 1.6)];

/// Tasks sampled per phase.
const TASKS_PER_PHASE: usize = 20;
/// Phases sampled per application (as in the paper).
const PHASES: usize = 5;

/// Runs the figure and renders its table.
pub fn run() -> String {
    run_seeded(41)
}

pub(crate) fn run_seeded(seed: u64) -> String {
    let mut rng = SimRng::stream(seed, 0);
    let mut table =
        Table::new(["app", "phase", "median slowdown", "p90 slowdown", "max slowdown"]);
    let mut global_max: f64 = 0.0;
    for (app, mean, cv) in APPS {
        let model = LocalityModel::fixed(SimDuration::from_secs(3), 1.0, 1.2, 1.8, mean)
            .with_slowdown_dist(LocalityLevel::Any, lognormal_mean_cv(mean, cv));
        for phase in 0..PHASES {
            let slowdowns: Vec<f64> = (0..TASKS_PER_PHASE)
                .map(|_| {
                    let local = model.sample_slowdown(LocalityLevel::ProcessLocal, &mut rng);
                    let any = model.sample_slowdown(LocalityLevel::Any, &mut rng);
                    any / local
                })
                .collect();
            let s = Summary::from_values(&slowdowns).expect("non-empty");
            global_max = global_max.max(s.max());
            table.row([
                app.to_owned(),
                format!("{}", phase + 1),
                format!("{}x", num(s.p50())),
                format!("{}x", num(s.p90())),
                format!("{}x", num(s.max())),
            ]);
        }
    }
    format!(
        "Fig. 6 — task slowdown at ANY vs PROCESS_LOCAL (remote data + cold JVM)\n\
         paper: slowdowns of up to two orders of magnitude; max observed here {global_max:.0}x\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn slowdowns_are_heavy_tailed() {
        let out = super::run_seeded(1);
        // 3 apps x 5 phases rows.
        let rows = out
            .lines()
            .filter(|l| {
                l.starts_with("kmeans") || l.starts_with("svm") || l.starts_with("pagerank")
            })
            .count();
        assert_eq!(rows, 15);
        // The tail reaches well beyond the 5x mean used in simulation.
        let max_line = out.lines().find(|l| l.contains("max observed here")).unwrap();
        let max: f64 = max_line
            .split_whitespace()
            .find_map(|w| w.strip_suffix('x').and_then(|n| n.parse().ok()))
            .unwrap();
        assert!(max > 20.0, "max slowdown {max} not heavy-tailed");
    }
}
