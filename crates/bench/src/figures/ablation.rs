//! **Ablation** (extension beyond the paper's figures) — the §IV-C
//! "Advantages over the status quo" argument, measured.
//!
//! The paper claims three advantages of reserved-slot straggler mitigation
//! over progress-based speculative execution (Spark speculation / LATE /
//! Mantri): no speculation logic, no extra slots (interference-free), and
//! warm copies (no cold-JVM / remote-read penalty). This harness runs a
//! heavy-tailed foreground job under four configurations on the same
//! contended cluster:
//!
//! 1. SSR, no mitigation (reserved slots idle),
//! 2. SSR + §IV-C reserved-slot copies (warm),
//! 3. work-conserving + status-quo speculation (cold copies on free slots),
//! 4. SSR + status-quo speculation.

use ssr_dag::Priority;
use ssr_scheduler::SpeculationConfig;
use ssr_sim::{OrderConfig, PolicyConfig, SimConfig, Simulation};
use ssr_simcore::dist::constant;
use ssr_workload::synthetic::{map_only, pareto_pipeline};

use crate::table::Table;

/// Runs the ablation and renders its table.
pub fn run() -> String {
    run_seeded(121)
}

pub(crate) fn run_seeded(seed: u64) -> String {
    let cluster = ssr_cluster::ClusterSpec::new(8, 4).expect("valid cluster");
    let fg = || pareto_pipeline("fg", 4, 24, 1.0, 1.3, Priority::new(10)).expect("valid job");
    let bg = || map_only("bg", 96, constant(25.0), Priority::new(0)).expect("valid job");

    let run = |policy: PolicyConfig, speculation: bool| {
        let mut config = SimConfig::new(cluster).with_seed(seed);
        if speculation {
            config = config.with_speculation(SpeculationConfig::spark_defaults());
        }
        Simulation::new(config, policy, OrderConfig::FifoPriority, vec![fg(), bg()]).run()
    };

    let mut table =
        Table::new(["configuration", "fg JCT (s)", "copies", "kills", "bg mean JCT (s)"]);
    let configs: [(&str, PolicyConfig, bool); 4] = [
        ("ssr, no mitigation", PolicyConfig::ssr_strict(), false),
        ("ssr + reserved-slot copies (IV-C)", PolicyConfig::ssr_strict_with_stragglers(), false),
        ("work-conserving + spark speculation", PolicyConfig::WorkConserving, true),
        ("ssr + spark speculation", PolicyConfig::ssr_strict(), true),
    ];
    for (label, policy, speculation) in configs {
        let report = run(policy, speculation);
        table.row([
            label.to_owned(),
            format!("{:.1}", report.jct_secs("fg").unwrap_or(f64::NAN)),
            report.speculative_copies.to_string(),
            report.kills.to_string(),
            format!(
                "{:.1}",
                report.mean_jct_at_priority(Priority::new(0)).unwrap_or(f64::NAN)
            ),
        ]);
    }
    format!(
        "Ablation — straggler mitigation strategies (extension; §IV-C discussion)\n\
         paper argues IV-C beats status-quo speculation: warm copies, no extra slots\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn reserved_slot_copies_beat_plain_ssr() {
        let out = super::run_seeded(5);
        let jct = |label: &str| -> f64 {
            let line = out.lines().find(|l| l.starts_with(label)).unwrap();
            line.split_whitespace()
                .filter_map(|w| w.parse::<f64>().ok())
                .next()
                .unwrap()
        };
        let plain = jct("ssr, no mitigation");
        let ivc = jct("ssr + reserved-slot copies");
        assert!(ivc <= plain, "IV-C copies must not hurt: {ivc} > {plain}");
        // The heavy tail guarantees a material win.
        assert!(ivc < plain * 0.9, "IV-C should cut the tail: {ivc} vs {plain}");
    }
}
