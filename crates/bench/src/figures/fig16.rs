//! **Fig. 16** — SQL-job slowdown vs the pre-reservation threshold `R`.
//!
//! SQL queries change their degree of parallelism across phases; when a
//! downstream phase is wider (n > m), reserved upstream slots cannot cover
//! it, and the job must pre-reserve extras. The earlier the
//! pre-reservation starts (smaller `R`), the less the job is slowed down.
//!
//! Methodology note: each query is measured individually against a
//! long-task background (as in the paper's per-job slowdown measurements);
//! the window between the `R`-threshold crossing and the barrier is where
//! freed background slots can be pre-reserved — with long background
//! tasks, missing that window costs a full background task length.

use ssr_sim::{Experiment, OrderConfig, PolicyConfig, SimConfig, TrialGrid};
use ssr_simcore::SimDuration;
use ssr_workload::{sql, SqlParams};

use crate::figures::common::{background_jobs_large, large_cluster, scaled, FG_PRIORITY};
use crate::table::Table;

const THRESHOLDS: [f64; 4] = [0.2, 0.5, 0.8, 1.0];

/// Runs the figure and renders its table.
pub fn run() -> String {
    run_scaled(scaled(350, 4000), scaled(10, 20), 91)
}

pub(crate) fn run_scaled(bg_jobs: u32, queries: u32, seed: u64) -> String {
    let cluster = large_cluster();
    let params = SqlParams::medium().with_priority(FG_PRIORITY).with_runtime_factor(3.0);
    let all = sql::all_queries(&params).expect("valid queries");
    let suite: Vec<_> = all.into_iter().take(queries as usize).collect();
    // Long-running background (x4): freed slots are rare, so acquiring the
    // extra n - m slots for a widening phase on demand is expensive.
    let background = background_jobs_large(bg_jobs, 4.0, SimDuration::from_secs(1800), seed);

    let mut table = Table::new(["R", "avg SQL slowdown"]);
    for &r in &THRESHOLDS {
        // One trial grid per threshold, all rooted at the same seed:
        // query i runs under seed ⊕ i at every threshold, so the rows
        // compare R values over paired conditions. Trials fan out across
        // the runner's worker pool and merge back in query order.
        let grid = TrialGrid::new(seed).experiments(suite.iter().map(|q| {
            Experiment::new(
                SimConfig::new(cluster).stop_after([q.name()]),
                PolicyConfig::ssr_with_prereserve_threshold(r),
                OrderConfig::FifoPriority,
            )
            .foreground([q.clone()])
            .background(background.clone())
        }));
        let results = grid.run();
        let slowdowns: Vec<f64> = results.iter().map(|t| t.outcome.mean_slowdown()).collect();
        let avg = slowdowns.iter().sum::<f64>() / slowdowns.len().max(1) as f64;
        table.row([format!("{r:.1}"), format!("{avg:.3}x")]);
    }
    format!(
        "Fig. 16 — SQL slowdown vs pre-reservation threshold R (SSR, per-query runs)\n\
         paper: earlier pre-reservation (smaller R) -> less slowdown\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn earlier_prereservation_does_not_hurt() {
        let out = super::run_scaled(60, 4, 5);
        let slowdowns: Vec<f64> = out
            .lines()
            .filter(|l| l.starts_with("0.") || l.starts_with("1.0"))
            .filter_map(|l| {
                l.split_whitespace()
                    .last()
                    .and_then(|w| w.trim_end_matches('x').parse().ok())
            })
            .collect();
        assert_eq!(slowdowns.len(), 4);
        // R = 0.2 must be no worse than R = 1.0 (allowing small noise).
        assert!(
            slowdowns[0] <= slowdowns[3] * 1.05 + 0.05,
            "R=0.2 ({}) worse than R=1.0 ({})",
            slowdowns[0],
            slowdowns[3]
        );
    }
}
