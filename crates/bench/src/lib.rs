//! # ssr-bench
//!
//! The paper-reproduction harness: one module per evaluation figure of the
//! ICDCS 2017 paper (see `DESIGN.md` §3 for the index), a text-table
//! renderer, and the Criterion micro-benchmarks under `benches/`.
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p ssr-bench --release --bin figures -- all
//! cargo run -p ssr-bench --release --bin figures -- fig08 fig10
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod figures;
pub mod table;

pub use table::Table;
