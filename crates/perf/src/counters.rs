//! Deterministic work counters for the scheduling engine.
//!
//! [`WorkCounters`] counts the *work* the engine performs — slots
//! scanned, approval calls, scratch-buffer reuse, events moved through
//! the queue — without ever observing time or thread identity, so the
//! counts are a pure function of the simulation seed. They are always
//! on: there is no enable flag, no branch, and therefore no way for a
//! `--counters` run to diverge from an uncounted one.
//!
//! Counts live in [`Cell`]s because the hottest engine paths
//! (`best_candidate` and friends) take `&self` while other parts of the
//! scheduler are immutably borrowed; interior mutability lets those
//! paths count work without restructuring borrows.

use std::cell::Cell;

use serde::Value;

/// One monotone counter with interior mutability.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Counter(Cell<u64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    /// Raises the stored value to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn high_water(&self, v: u64) {
        if v > self.0.get() {
            self.0.set(v);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.get()
    }

    fn set(&self, v: u64) {
        self.0.set(v);
    }
}

/// How a field combines when two counter sets are merged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Merge {
    /// Totals add (work performed).
    Sum,
    /// High-water marks take the maximum (peak live objects).
    Max,
}

/// Deterministic work counts for one run (or a merge of several).
///
/// Every field must be incremented by engine code *and* rendered in the
/// report — ssr-lint check **C001** fails the build otherwise, so a
/// counter can neither silently read zero nor silently disappear from
/// the output.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct WorkCounters {
    /// `ApprovalLogic` invocations while ranking offer candidates.
    pub approval_calls: Counter,
    /// Events popped off the simulation event queue.
    pub events_popped: Counter,
    /// Events pushed onto the simulation event queue.
    pub events_pushed: Counter,
    /// Offer rounds answered from the cached free-slot snapshots.
    pub index_hits: Counter,
    /// Free-slot snapshot rebuilds (cache invalidated since last round).
    pub index_rescans: Counter,
    /// Offer rounds executed by the scheduler.
    pub offer_rounds: Counter,
    /// Peak number of events pending in the queue at once.
    pub peak_event_queue_len: Counter,
    /// Peak number of task instances running at once.
    pub peak_running_instances: Counter,
    /// Reservation groups examined while ranking offer candidates.
    pub reservation_groups_touched: Counter,
    /// Scratch buffers allocated fresh (capacity had to grow from zero).
    pub scratch_allocs: Counter,
    /// Scratch buffers reused with their prior capacity intact.
    pub scratch_reuses: Counter,
    /// Slot entries scanned across free-list and candidate walks.
    pub slots_scanned: Counter,
    /// Running instances examined as straggler/progress-speculation candidates.
    pub speculation_candidates_examined: Counter,
    /// Task instances assigned to slots (including speculative copies).
    pub tasks_assigned: Counter,
}

impl WorkCounters {
    /// Creates a zeroed counter set.
    pub fn new() -> WorkCounters {
        WorkCounters::default()
    }

    /// Field table in sorted-name order: `(name, counter, merge rule)`.
    ///
    /// Rendering and merging both walk this table, so a field added to
    /// the struct without a row here fails the `fields_cover_struct`
    /// test (and C001 in ssr-lint).
    fn fields(&self) -> [(&'static str, &Counter, Merge); 14] {
        [
            ("approval_calls", &self.approval_calls, Merge::Sum),
            ("events_popped", &self.events_popped, Merge::Sum),
            ("events_pushed", &self.events_pushed, Merge::Sum),
            ("index_hits", &self.index_hits, Merge::Sum),
            ("index_rescans", &self.index_rescans, Merge::Sum),
            ("offer_rounds", &self.offer_rounds, Merge::Sum),
            ("peak_event_queue_len", &self.peak_event_queue_len, Merge::Max),
            ("peak_running_instances", &self.peak_running_instances, Merge::Max),
            ("reservation_groups_touched", &self.reservation_groups_touched, Merge::Sum),
            ("scratch_allocs", &self.scratch_allocs, Merge::Sum),
            ("scratch_reuses", &self.scratch_reuses, Merge::Sum),
            ("slots_scanned", &self.slots_scanned, Merge::Sum),
            ("speculation_candidates_examined", &self.speculation_candidates_examined, Merge::Sum),
            ("tasks_assigned", &self.tasks_assigned, Merge::Sum),
        ]
    }

    /// Folds `other` into `self`: work totals add, peaks take the max.
    ///
    /// Merging is commutative for `Max` fields and order-independent for
    /// `Sum` fields, but callers still merge in a fixed order (trial
    /// index, foreground order) so intermediate states are reproducible.
    pub fn merge(&self, other: &WorkCounters) {
        for ((_, mine, rule), (_, theirs, _)) in self.fields().iter().zip(other.fields().iter()) {
            match rule {
                Merge::Sum => mine.add(theirs.get()),
                Merge::Max => mine.high_water(theirs.get()),
            }
        }
    }

    /// Resets every field to zero.
    pub fn reset(&self) {
        for (_, c, _) in self.fields() {
            c.set(0);
        }
    }

    /// `true` when every field is zero.
    pub fn is_zero(&self) -> bool {
        self.fields().iter().all(|(_, c, _)| c.get() == 0)
    }

    /// Renders the counters as aligned plain text, one field per line in
    /// sorted-name order.
    pub fn render_text(&self) -> String {
        let fields = self.fields();
        let width = fields.iter().map(|(n, _, _)| n.len()).max().unwrap_or(0);
        let mut out = String::from("work counters\n");
        for (name, c, _) in fields {
            out.push_str(&format!("  {name:width$}  {}\n", c.get()));
        }
        out
    }

    /// Renders the counters as pretty-printed JSON with sorted keys —
    /// the workspace's byte-stability contract for committed artifacts.
    pub fn render_json(&self) -> String {
        let root = Value::Object(
            self.fields().iter().map(|(n, c, _)| ((*n).to_owned(), Value::UInt(c.get()))).collect(),
        );
        debug_assert!(crate::sorted_keys(&root), "counter JSON keys must be sorted");
        serde_json::to_string_pretty(&crate::Raw(root)).expect("serializer is total")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_cover_struct() {
        // `fields()` must list every struct field exactly once: the
        // rendered report and the debug formatting agree on the set of
        // field names.
        let c = WorkCounters::new();
        let debug = format!("{c:?}");
        for (name, _, _) in c.fields() {
            assert!(debug.contains(name), "field {name} missing from struct");
        }
        let names: Vec<&str> = c.fields().iter().map(|f| f.0).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted, "fields() must be sorted and unique");
        // Count struct fields via the Debug output's `name: Counter(` pairs.
        let struct_fields = debug.matches(": Counter(").count();
        assert_eq!(struct_fields, names.len(), "fields() must cover every struct field");
    }

    #[test]
    fn merge_sums_work_and_maxes_peaks() {
        let a = WorkCounters::new();
        a.slots_scanned.add(10);
        a.peak_event_queue_len.high_water(7);
        let b = WorkCounters::new();
        b.slots_scanned.add(5);
        b.peak_event_queue_len.high_water(3);
        a.merge(&b);
        assert_eq!(a.slots_scanned.get(), 15);
        assert_eq!(a.peak_event_queue_len.get(), 7);
        b.peak_event_queue_len.high_water(99);
        a.merge(&b);
        assert_eq!(a.peak_event_queue_len.get(), 99);
        assert_eq!(a.slots_scanned.get(), 20);
    }

    #[test]
    fn reset_and_is_zero() {
        let c = WorkCounters::new();
        assert!(c.is_zero());
        c.approval_calls.inc();
        assert!(!c.is_zero());
        c.reset();
        assert!(c.is_zero());
    }

    #[test]
    fn text_and_json_are_sorted_and_stable() {
        let c = WorkCounters::new();
        c.offer_rounds.add(3);
        c.slots_scanned.add(120);
        c.peak_running_instances.high_water(8);
        let text = c.render_text();
        assert!(text.starts_with("work counters\n"));
        let json = c.render_json();
        assert_eq!(json, c.render_json(), "JSON must be byte-stable");
        // Keys appear in sorted order in the serialized bytes.
        let mut last = 0;
        for (name, _, _) in c.fields() {
            let key = format!("\"{name}\"");
            let at = json.find(&key).unwrap_or_else(|| panic!("missing {key}"));
            assert!(at > last || last == 0, "{key} out of order");
            last = at;
        }
        assert!(json.contains("\"slots_scanned\": 120"), "{json}");
    }

    #[test]
    fn golden_counter_report_bytes() {
        // Byte-pin both renderings: CI diffs counter reports across
        // invocations and worker counts, so the shape itself must never
        // drift silently.
        let c = WorkCounters::new();
        c.approval_calls.add(2);
        c.events_popped.add(9);
        c.events_pushed.add(11);
        c.index_hits.add(3);
        c.index_rescans.add(1);
        c.offer_rounds.add(4);
        c.peak_event_queue_len.high_water(6);
        c.peak_running_instances.high_water(2);
        c.reservation_groups_touched.add(5);
        c.scratch_allocs.add(1);
        c.scratch_reuses.add(7);
        c.slots_scanned.add(40);
        c.speculation_candidates_examined.add(8);
        c.tasks_assigned.add(10);
        let expected_json = "{\n  \"approval_calls\": 2,\n  \"events_popped\": 9,\n  \
                             \"events_pushed\": 11,\n  \"index_hits\": 3,\n  \
                             \"index_rescans\": 1,\n  \"offer_rounds\": 4,\n  \
                             \"peak_event_queue_len\": 6,\n  \"peak_running_instances\": 2,\n  \
                             \"reservation_groups_touched\": 5,\n  \"scratch_allocs\": 1,\n  \
                             \"scratch_reuses\": 7,\n  \"slots_scanned\": 40,\n  \
                             \"speculation_candidates_examined\": 8,\n  \
                             \"tasks_assigned\": 10\n}";
        assert_eq!(c.render_json(), expected_json);
        let expected_text = "work counters\n\
                             \x20 approval_calls                   2\n\
                             \x20 events_popped                    9\n\
                             \x20 events_pushed                    11\n\
                             \x20 index_hits                       3\n\
                             \x20 index_rescans                    1\n\
                             \x20 offer_rounds                     4\n\
                             \x20 peak_event_queue_len             6\n\
                             \x20 peak_running_instances           2\n\
                             \x20 reservation_groups_touched       5\n\
                             \x20 scratch_allocs                   1\n\
                             \x20 scratch_reuses                   7\n\
                             \x20 slots_scanned                    40\n\
                             \x20 speculation_candidates_examined  8\n\
                             \x20 tasks_assigned                   10\n";
        assert_eq!(c.render_text(), expected_text);
    }

    #[test]
    fn counter_high_water_never_lowers() {
        let c = Counter::default();
        c.high_water(5);
        c.high_water(2);
        assert_eq!(c.get(), 5);
        c.high_water(9);
        assert_eq!(c.get(), 9);
    }
}
