//! Scoped-span wall-clock profiling.
//!
//! [`SpanProfiler`] aggregates `enter`/`exit` pairs into per-phase
//! self/total time keyed by the full span path (`run_loop/offer_round`),
//! rendered as a flamegraph-style text tree or sorted-key JSON.
//!
//! The profiler never reads a clock itself: readings come from an
//! injected [`SpanClock`], whose only real-time implementation lives at
//! the workspace's sanctioned wall-clock barrier (`ssr-sim::walltime`).
//! That keeps ssr-lint's D002/D10x contract intact — this crate stays
//! inside `DETERMINISTIC_CRATES` because nothing here can observe time
//! without a caller handing it a clock. Span output belongs to the
//! non-deterministic plane: stderr and explicitly wall-clock report
//! files only, never byte-pinned artifacts.

use std::collections::BTreeMap;
use std::fmt;

use serde::Value;

/// A monotonic seconds source injected into [`SpanProfiler`].
///
/// The real-time implementation is `ssr_sim::walltime::WallClock`;
/// tests inject scripted clocks to pin report bytes.
pub trait SpanClock {
    /// Seconds elapsed from an arbitrary fixed origin.
    fn now_secs(&self) -> f64;
}

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStats {
    /// Times the span was entered.
    pub count: u64,
    /// Wall seconds between enter and exit, summed over entries.
    pub total_secs: f64,
    /// `total_secs` minus time spent in child spans.
    pub self_secs: f64,
}

struct Frame {
    path: String,
    started: f64,
    child_secs: f64,
}

/// Aggregating scoped-span profiler.
///
/// # Example
///
/// ```
/// use ssr_perf::span::{SpanClock, SpanProfiler};
///
/// struct Zero;
/// impl SpanClock for Zero {
///     fn now_secs(&self) -> f64 { 0.0 }
/// }
///
/// let mut p = SpanProfiler::new(Box::new(Zero));
/// p.enter("run_loop");
/// p.enter("offer_round");
/// p.exit();
/// p.exit();
/// let report = p.report();
/// assert_eq!(report.rows.len(), 2);
/// assert_eq!(report.rows[1].path, "run_loop/offer_round");
/// ```
pub struct SpanProfiler {
    clock: Box<dyn SpanClock>,
    stack: Vec<Frame>,
    agg: BTreeMap<String, SpanStats>,
}

impl fmt::Debug for SpanProfiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanProfiler")
            .field("open", &self.stack.len())
            .field("paths", &self.agg.len())
            .finish()
    }
}

impl SpanProfiler {
    /// Creates a profiler reading time from `clock`.
    pub fn new(clock: Box<dyn SpanClock>) -> SpanProfiler {
        SpanProfiler { clock, stack: Vec::new(), agg: BTreeMap::new() }
    }

    /// Opens a span named `name` nested under the currently open span.
    pub fn enter(&mut self, name: &str) {
        let path = match self.stack.last() {
            Some(parent) => format!("{}/{name}", parent.path),
            None => name.to_owned(),
        };
        let started = self.clock.now_secs();
        self.stack.push(Frame { path, started, child_secs: 0.0 });
    }

    /// Closes the most recently opened span, folding its elapsed time
    /// into the aggregate and charging it to the parent's child time.
    ///
    /// Exiting with no open span is a no-op (debug builds assert).
    pub fn exit(&mut self) {
        let now = self.clock.now_secs();
        let Some(frame) = self.stack.pop() else {
            debug_assert!(false, "SpanProfiler::exit with no open span");
            return;
        };
        let total = (now - frame.started).max(0.0);
        let stats = self.agg.entry(frame.path).or_default();
        stats.count += 1;
        stats.total_secs += total;
        stats.self_secs += (total - frame.child_secs).max(0.0);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_secs += total;
        }
    }

    /// Number of currently open (unexited) spans.
    pub fn open_spans(&self) -> usize {
        self.stack.len()
    }

    /// Snapshot of the aggregate so far, rows sorted by span path.
    pub fn report(&self) -> SpanReport {
        debug_assert!(self.stack.is_empty(), "report with {} open spans", self.stack.len());
        SpanReport {
            rows: self
                .agg
                .iter()
                .map(|(path, s)| SpanRow { path: path.clone(), stats: *s })
                .collect(),
        }
    }
}

/// One aggregated span path in a [`SpanReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRow {
    /// Full `/`-joined path from the root span.
    pub path: String,
    /// Aggregated timings for this path.
    pub stats: SpanStats,
}

impl SpanRow {
    fn depth(&self) -> usize {
        self.path.matches('/').count()
    }

    fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }
}

/// Aggregated span timings, sorted by path (parents before children).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanReport {
    /// One row per distinct span path.
    pub rows: Vec<SpanRow>,
}

impl SpanReport {
    /// Renders a flamegraph-style text tree: children indented under
    /// parents, with total/self milliseconds and entry counts.
    pub fn render_text(&self) -> String {
        let mut out = String::from("span profile (wall-clock plane)\n");
        out.push_str(&format!("  {:>12} {:>12} {:>10}  span\n", "total(ms)", "self(ms)", "count"));
        for row in &self.rows {
            let indent = "  ".repeat(row.depth());
            out.push_str(&format!(
                "  {:>12.3} {:>12.3} {:>10}  {indent}{}\n",
                row.stats.total_secs * 1e3,
                row.stats.self_secs * 1e3,
                row.stats.count,
                row.name(),
            ));
        }
        out
    }

    /// Renders the report as pretty-printed JSON with sorted keys.
    ///
    /// Byte-stable *given the clock readings* — with the real wall
    /// clock the values differ run to run, which is why span JSON is
    /// never a committed artifact.
    pub fn render_json(&self) -> String {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                Value::Object(vec![
                    ("count".to_owned(), Value::UInt(r.stats.count)),
                    ("path".to_owned(), Value::Str(r.path.clone())),
                    ("self_secs".to_owned(), Value::Float(r.stats.self_secs)),
                    ("total_secs".to_owned(), Value::Float(r.stats.total_secs)),
                ])
            })
            .collect();
        let root = Value::Object(vec![("spans".to_owned(), Value::Array(rows))]);
        debug_assert!(crate::sorted_keys(&root), "span JSON keys must be sorted");
        serde_json::to_string_pretty(&crate::Raw(root)).expect("serializer is total")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    /// Clock that replays a scripted sequence of readings.
    struct Scripted {
        at: Rc<Cell<usize>>,
        times: Vec<f64>,
    }

    impl SpanClock for Scripted {
        fn now_secs(&self) -> f64 {
            let i = self.at.get();
            self.at.set(i + 1);
            self.times[i]
        }
    }

    fn scripted(times: &[f64]) -> SpanProfiler {
        SpanProfiler::new(Box::new(Scripted { at: Rc::new(Cell::new(0)), times: times.to_vec() }))
    }

    #[test]
    fn nesting_attributes_self_and_total() {
        // run_loop [0, 10]; offer_round [1, 4]; dispatch [5, 8].
        let mut p = scripted(&[0.0, 1.0, 4.0, 5.0, 8.0, 10.0]);
        p.enter("run_loop");
        p.enter("offer_round");
        p.exit();
        p.enter("dispatch");
        p.exit();
        p.exit();
        let r = p.report();
        assert_eq!(r.rows.len(), 3);
        let by_path = |p: &str| r.rows.iter().find(|x| x.path == p).expect(p).stats;
        let root = by_path("run_loop");
        assert_eq!(root.count, 1);
        assert!((root.total_secs - 10.0).abs() < 1e-12);
        assert!((root.self_secs - 4.0).abs() < 1e-12, "10 total - 3 - 3 child");
        assert!((by_path("run_loop/offer_round").total_secs - 3.0).abs() < 1e-12);
        assert!((by_path("run_loop/dispatch").self_secs - 3.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_entries_accumulate() {
        let mut p = scripted(&[0.0, 1.0, 2.0, 3.0]);
        p.enter("phase");
        p.exit();
        p.enter("phase");
        p.exit();
        let r = p.report();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].stats.count, 2);
        assert!((r.rows[0].stats.total_secs - 2.0).abs() < 1e-12);
    }

    #[test]
    fn text_tree_indents_children() {
        let mut p = scripted(&[0.0, 0.0, 1.0, 2.0]);
        p.enter("outer");
        p.enter("inner");
        p.exit();
        p.exit();
        let text = p.report().render_text();
        assert!(text.contains("  outer\n"), "{text}");
        assert!(text.contains("    inner\n"), "{text}");
    }

    #[test]
    fn golden_span_json_bytes() {
        // Byte-pin the span JSON shape with a scripted clock; the real
        // clock changes values, never structure.
        let mut p = scripted(&[0.0, 0.25, 0.5, 1.0]);
        p.enter("run_loop");
        p.enter("offer_round");
        p.exit();
        p.exit();
        let json = p.report().render_json();
        let expected = "{\n  \"spans\": [\n    {\n      \"count\": 1,\n      \"path\": \"run_loop\",\n      \"self_secs\": 0.75,\n      \"total_secs\": 1.0\n    },\n    {\n      \"count\": 1,\n      \"path\": \"run_loop/offer_round\",\n      \"self_secs\": 0.25,\n      \"total_secs\": 0.25\n    }\n  ]\n}";
        assert_eq!(json, expected);
    }

    #[test]
    fn unbalanced_exit_is_ignored_in_release() {
        let mut p = scripted(&[0.0, 1.0, 2.0]);
        p.enter("a");
        p.exit();
        assert_eq!(p.open_spans(), 0);
        assert_eq!(p.report().rows.len(), 1);
    }
}
