//! # ssr-perf
//!
//! Performance observability for the SSR scheduler, split into two
//! strictly separated planes:
//!
//! - **Deterministic work counters** ([`counters`]): pure counts of
//!   engine work (slots scanned, approval calls, scratch-buffer reuse,
//!   events pushed/popped, …) plus peak high-water marks. Counters are
//!   a function of the seed alone — no clocks, no thread state — so
//!   their reports are byte-identical across re-runs and `--jobs`
//!   worker counts, and enabling them cannot perturb simulated output.
//! - **Wall-clock span profiling** ([`span`]): a scoped-span profiler
//!   that aggregates per-phase self/total time into a flamegraph-style
//!   tree. Spans read real time, so they live outside the deterministic
//!   plane: readings flow in through a [`span::SpanClock`] implemented
//!   at the workspace's sanctioned wall-clock barrier
//!   (`ssr-sim::walltime`), and span output only ever reaches stderr or
//!   explicitly non-deterministic report files.
//!
//! The two-plane rule in one line: **counters may shape committed
//! artifacts, spans may not.** Anything byte-pinned (figures, traces,
//! counter reports) must derive from the counter plane only.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod counters;
pub mod span;

pub use counters::WorkCounters;
pub use span::{SpanClock, SpanProfiler, SpanReport};

use serde::Value;

/// `true` when every object in the tree has strictly sorted keys.
pub(crate) fn sorted_keys(v: &Value) -> bool {
    match v {
        Value::Object(entries) => {
            entries.windows(2).all(|w| w[0].0 < w[1].0) && entries.iter().all(|(_, v)| sorted_keys(v))
        }
        Value::Array(items) => items.iter().all(sorted_keys),
        _ => true,
    }
}

/// Serializes a pre-built [`Value`] tree verbatim.
pub(crate) struct Raw(pub(crate) Value);

impl serde::Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}
