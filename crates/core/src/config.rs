//! Configuration of the speculative-slot-reservation policy.

use std::fmt;

/// Error produced when an [`SsrConfig`] is built with out-of-domain
/// parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError {
    what: String,
}

impl ConfigError {
    fn new(what: impl Into<String>) -> Self {
        ConfigError { what: what.into() }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid SSR configuration: {}", self.what)
    }
}

impl std::error::Error for ConfigError {}

/// Validated configuration of [`SpeculativeReservation`].
///
/// [`SpeculativeReservation`]: crate::SpeculativeReservation
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsrConfig {
    isolation_target: f64,
    prereserve_threshold: f64,
    default_shape: f64,
    min_fit_samples: usize,
    mitigate_stragglers: bool,
    min_priority: Option<i32>,
}

impl SsrConfig {
    /// The isolation guarantee `P` (§IV-B): the probability that a phase
    /// transition is not interrupted. `1.0` means reservations never
    /// expire (strict isolation); smaller values trade isolation for
    /// utilization via the Eq. 2 deadline.
    pub fn isolation_target(&self) -> f64 {
        self.isolation_target
    }

    /// The pre-reservation threshold `R` (Algorithm 1, line 16): the
    /// completed-task fraction of the current phase beyond which extra
    /// slots are pre-reserved for a wider downstream phase.
    pub fn prereserve_threshold(&self) -> f64 {
        self.prereserve_threshold
    }

    /// The Pareto shape `alpha` assumed before enough in-phase samples
    /// exist to fit it (production default from the traces the paper
    /// cites: 1.6).
    pub fn default_shape(&self) -> f64 {
        self.default_shape
    }

    /// Completed tasks required in a phase before the fitted shape
    /// replaces [`SsrConfig::default_shape`].
    pub fn min_fit_samples(&self) -> usize {
        self.min_fit_samples
    }

    /// Whether reserved-idle slots run straggler copies (§IV-C).
    pub fn mitigate_stragglers(&self) -> bool {
        self.mitigate_stragglers
    }

    /// If set, only jobs at or above this priority level receive
    /// reservations — the paper's deployment model, where isolation is a
    /// service latency-sensitive (foreground) jobs opt into, while batch
    /// jobs stay plainly work-conserving.
    pub fn min_priority(&self) -> Option<i32> {
        self.min_priority
    }

    /// Starts building a configuration (all fields default to the paper's
    /// settings: `P = 1.0`, `R = 0.5`, `alpha = 1.6`, no straggler
    /// mitigation).
    pub fn builder() -> SsrBuilder {
        SsrBuilder::default()
    }
}

impl Default for SsrConfig {
    fn default() -> Self {
        SsrConfig {
            isolation_target: 1.0,
            prereserve_threshold: 0.5,
            default_shape: 1.6,
            min_fit_samples: 3,
            mitigate_stragglers: false,
            min_priority: None,
        }
    }
}

/// Builder for [`SsrConfig`].
#[derive(Debug, Clone, Default)]
pub struct SsrBuilder {
    config: SsrConfig,
}

impl SsrBuilder {
    /// Sets the isolation target `P` in `[0, 1]`.
    pub fn isolation_target(mut self, p: f64) -> Self {
        self.config.isolation_target = p;
        self
    }

    /// Sets the pre-reservation threshold `R` in `[0, 1]`.
    pub fn prereserve_threshold(mut self, r: f64) -> Self {
        self.config.prereserve_threshold = r;
        self
    }

    /// Sets the fallback Pareto shape (must exceed 1).
    pub fn default_shape(mut self, alpha: f64) -> Self {
        self.config.default_shape = alpha;
        self
    }

    /// Sets the sample count needed before the online shape fit is used.
    pub fn min_fit_samples(mut self, n: usize) -> Self {
        self.config.min_fit_samples = n;
        self
    }

    /// Enables or disables §IV-C straggler mitigation.
    pub fn mitigate_stragglers(mut self, enabled: bool) -> Self {
        self.config.mitigate_stragglers = enabled;
        self
    }

    /// Restricts reservations to jobs at or above `level` (foreground
    /// opt-in); lower-priority jobs run work-conserving.
    pub fn reserve_only_at_or_above(mut self, level: i32) -> Self {
        self.config.min_priority = Some(level);
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `P` or `R` lie outside `[0, 1]`, the
    /// default shape is not greater than 1, or `min_fit_samples` is zero.
    pub fn build(self) -> Result<SsrConfig, ConfigError> {
        let c = self.config;
        if !(c.isolation_target.is_finite() && (0.0..=1.0).contains(&c.isolation_target)) {
            return Err(ConfigError::new(format!(
                "isolation target must lie in [0, 1], got {}",
                c.isolation_target
            )));
        }
        if !(c.prereserve_threshold.is_finite() && (0.0..=1.0).contains(&c.prereserve_threshold)) {
            return Err(ConfigError::new(format!(
                "pre-reservation threshold must lie in [0, 1], got {}",
                c.prereserve_threshold
            )));
        }
        if !(c.default_shape.is_finite() && c.default_shape > 1.0) {
            return Err(ConfigError::new(format!(
                "default shape must exceed 1 for a finite mean, got {}",
                c.default_shape
            )));
        }
        if c.min_fit_samples == 0 {
            return Err(ConfigError::new("min_fit_samples must be at least 1"));
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SsrConfig::default();
        assert_eq!(c.isolation_target(), 1.0);
        assert_eq!(c.prereserve_threshold(), 0.5);
        assert_eq!(c.default_shape(), 1.6);
        assert!(!c.mitigate_stragglers());
        assert_eq!(c.min_fit_samples(), 3);
    }

    #[test]
    fn builder_round_trip() {
        let c = SsrConfig::builder()
            .isolation_target(0.4)
            .prereserve_threshold(0.2)
            .default_shape(2.0)
            .min_fit_samples(5)
            .mitigate_stragglers(true)
            .build()
            .unwrap();
        assert_eq!(c.isolation_target(), 0.4);
        assert_eq!(c.prereserve_threshold(), 0.2);
        assert_eq!(c.default_shape(), 2.0);
        assert_eq!(c.min_fit_samples(), 5);
        assert!(c.mitigate_stragglers());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(SsrConfig::builder().isolation_target(1.5).build().is_err());
        assert!(SsrConfig::builder().isolation_target(-0.1).build().is_err());
        assert!(SsrConfig::builder().isolation_target(f64::NAN).build().is_err());
        assert!(SsrConfig::builder().prereserve_threshold(2.0).build().is_err());
        assert!(SsrConfig::builder().default_shape(1.0).build().is_err());
        assert!(SsrConfig::builder().min_fit_samples(0).build().is_err());
        let err = SsrConfig::builder().isolation_target(9.0).build().unwrap_err();
        assert!(format!("{err}").contains("isolation target"));
    }

    #[test]
    fn min_priority_opt_in() {
        assert_eq!(SsrConfig::default().min_priority(), None);
        let c = SsrConfig::builder().reserve_only_at_or_above(10).build().unwrap();
        assert_eq!(c.min_priority(), Some(10));
    }

    #[test]
    fn boundary_values_accepted() {
        assert!(SsrConfig::builder().isolation_target(0.0).build().is_ok());
        assert!(SsrConfig::builder().isolation_target(1.0).build().is_ok());
        assert!(SsrConfig::builder().prereserve_threshold(0.0).build().is_ok());
        assert!(SsrConfig::builder().prereserve_threshold(1.0).build().is_ok());
    }
}
