//! Algorithm 1: speculative slot reservation.

use ssr_cluster::{Reservation, SlotId};
use ssr_dag::{StageId, TaskId};
use ssr_scheduler::{
    PolicyCtx, PreReserveRequest, ReservationPolicy, SlotDisposition,
};
use ssr_simcore::SimTime;

use crate::config::{ConfigError, SsrBuilder, SsrConfig};
use crate::deadline::DeadlineModel;

/// The speculative-slot-reservation policy (Algorithm 1 + §IV).
///
/// On every task completion the policy inspects the job's workflow DAG —
/// readily available to the scheduler at submission — and speculates
/// whether the freed slot will shortly be reused by the downstream phase:
///
/// * the task is in the **final phase** → release (lines 2–3),
/// * downstream parallelism `n` unknown, or equal to the current `m` →
///   reserve (lines 7–8),
/// * `m > n` → release the first `m - n` finishers, reserve the rest
///   (lines 9–13),
/// * `m < n` → reserve, and once the completed fraction reaches the
///   threshold `R`, pre-reserve the extra `n - m` slots (lines 14–17).
///
/// Reserved slots inherit the job's priority and are only usable by the
/// reserving job or strictly higher priorities (lines 18–22, the
/// ApprovalLogic). With an isolation target `P < 1`, reservations carry
/// the Eq. 2 deadline; with straggler mitigation enabled, reserved-idle
/// slots run extra copies of ongoing tasks (§IV-C).
#[derive(Debug, Clone)]
pub struct SpeculativeReservation {
    config: SsrConfig,
    deadline: DeadlineModel,
}

impl SpeculativeReservation {
    /// Creates the policy with the paper's default configuration
    /// (strict isolation `P = 1`, `R = 0.5`, no straggler mitigation).
    pub fn new() -> Self {
        SpeculativeReservation::with_config(SsrConfig::default())
    }

    /// Creates the policy from a validated configuration.
    pub fn with_config(config: SsrConfig) -> Self {
        SpeculativeReservation { deadline: DeadlineModel::new(&config), config }
    }

    /// Starts building a policy configuration.
    pub fn builder() -> Builder {
        Builder { inner: SsrConfig::builder() }
    }

    /// The active configuration.
    pub fn config(&self) -> &SsrConfig {
        &self.config
    }

    /// The first downstream phase of `task`'s stage, used to tag
    /// reservations for stale-cleanup when that phase completes.
    fn downstream_tag(ctx: &PolicyCtx<'_>, task: TaskId) -> Option<StageId> {
        ctx.jobs.get(task.job)?.spec().children(task.stage).first().copied()
    }

    /// The absolute expiry for a reservation made now, per §IV-B.
    fn reservation_deadline(&self, ctx: &PolicyCtx<'_>, task: TaskId) -> Option<SimTime> {
        let job = ctx.jobs.get(task.job)?;
        let stats = job.stage_stats(task.stage)?;
        let m = job.spec().stage(task.stage).parallelism();
        self.deadline.deadline_for(stats, m)
    }

    fn reserve_disposition(
        &self,
        ctx: &PolicyCtx<'_>,
        task: TaskId,
        slot: SlotId,
    ) -> SlotDisposition {
        let Some(job) = ctx.jobs.get(task.job) else {
            return SlotDisposition::Release;
        };
        // §III-C: if the slot is too small for the downstream tasks,
        // release it immediately (the right-sized replacement is acquired
        // via `prereserve`).
        if let Some(needed) = job.spec().downstream_demand(task.stage) {
            if ctx.slots.size(slot) < needed {
                return SlotDisposition::Release;
            }
        }
        let mut r = Reservation::new(task.job, job.priority());
        if let Some(stage) = Self::downstream_tag(ctx, task) {
            r = r.with_stage(stage);
        }
        if let Some(deadline) = self.reservation_deadline(ctx, task) {
            r = r.with_deadline(deadline);
        }
        SlotDisposition::Reserve(r)
    }
}

impl Default for SpeculativeReservation {
    fn default() -> Self {
        SpeculativeReservation::new()
    }
}

/// Builder for [`SpeculativeReservation`]; thin wrapper over
/// [`SsrBuilder`] that builds the policy directly.
#[derive(Debug, Clone, Default)]
pub struct Builder {
    inner: SsrBuilder,
}

impl Builder {
    /// Sets the isolation target `P` in `[0, 1]` (§IV-B knob).
    pub fn isolation_target(mut self, p: f64) -> Self {
        self.inner = self.inner.isolation_target(p);
        self
    }

    /// Sets the pre-reservation threshold `R` in `[0, 1]`.
    pub fn prereserve_threshold(mut self, r: f64) -> Self {
        self.inner = self.inner.prereserve_threshold(r);
        self
    }

    /// Sets the fallback Pareto shape.
    pub fn default_shape(mut self, alpha: f64) -> Self {
        self.inner = self.inner.default_shape(alpha);
        self
    }

    /// Sets samples required before the fitted shape is used.
    pub fn min_fit_samples(mut self, n: usize) -> Self {
        self.inner = self.inner.min_fit_samples(n);
        self
    }

    /// Enables §IV-C straggler mitigation.
    pub fn mitigate_stragglers(mut self, enabled: bool) -> Self {
        self.inner = self.inner.mitigate_stragglers(enabled);
        self
    }

    /// Validates the configuration and builds the policy.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any parameter is out of domain.
    pub fn build(self) -> Result<SpeculativeReservation, ConfigError> {
        Ok(SpeculativeReservation::with_config(self.inner.build()?))
    }
}

impl ReservationPolicy for SpeculativeReservation {
    fn name(&self) -> &'static str {
        "speculative-slot-reservation"
    }

    fn approval_is_priority_based(&self) -> bool {
        true // ApprovalLogic is the default (pure) priority rule
    }

    /// Algorithm 1, `HandleTaskCompletion` (lines 1–17).
    fn on_task_completed(
        &mut self,
        ctx: &PolicyCtx<'_>,
        task: TaskId,
        slot: SlotId,
    ) -> SlotDisposition {
        let Some(job) = ctx.jobs.get(task.job) else {
            return SlotDisposition::Release;
        };
        let spec = job.spec();
        // Foreground opt-in: below the reservation threshold, behave
        // work-conserving (the paper's deployment model).
        if self.config.min_priority().is_some_and(|t| job.priority().level() < t) {
            return SlotDisposition::Release;
        }
        // Lines 2-3: final phase -> release.
        if spec.is_final(task.stage) {
            return SlotDisposition::Release;
        }
        let m = u64::from(spec.stage(task.stage).parallelism());
        match spec.downstream_parallelism(task.stage) {
            // Lines 7-8: n unavailable (Case 1) or unchanged (Case 2.1).
            None => self.reserve_disposition(ctx, task, slot),
            Some(n) if n == m => self.reserve_disposition(ctx, task, slot),
            // Lines 9-13 (Case 2.2): release the first m-n finishers.
            Some(n) if n < m => {
                let finished = u64::from(job.run().completed_tasks(task.stage));
                if finished <= m - n {
                    SlotDisposition::Release
                } else {
                    self.reserve_disposition(ctx, task, slot)
                }
            }
            // Lines 14-15 (Case 2.3): n > m -> reserve; pre-reservation is
            // requested separately via `prereserve`.
            Some(_) => self.reserve_disposition(ctx, task, slot),
        }
    }

    /// Algorithm 1, lines 16-17: once the completed fraction of the
    /// current phase reaches `R` and the downstream phase is wider,
    /// request the extra `n - m` slots.
    fn prereserve(&mut self, ctx: &PolicyCtx<'_>, task: TaskId) -> Option<PreReserveRequest> {
        let job = ctx.jobs.get(task.job)?;
        let spec = job.spec();
        if self.config.min_priority().is_some_and(|t| job.priority().level() < t) {
            return None;
        }
        if spec.is_final(task.stage) {
            return None;
        }
        let m = u64::from(spec.stage(task.stage).parallelism());
        let min_size = spec.downstream_demand(task.stage).unwrap_or(1);
        // §III-C: if the current slots cannot fit the downstream tasks at
        // all, every downstream task needs a right-sized slot, regardless
        // of the threshold (the freed slots were released immediately).
        let undersized = spec.stage(task.stage).demand() < min_size;
        let n = match spec.downstream_parallelism(task.stage) {
            Some(n) => n,
            None if undersized => m, // best estimate under Case 1
            None => return None,
        };
        let extra = if undersized {
            n // none of the current-phase slots can be reused
        } else {
            if n <= m {
                return None;
            }
            if job.run().finished_fraction(task.stage) < self.config.prereserve_threshold() {
                return None;
            }
            n - m
        };
        let stage = Self::downstream_tag(ctx, task)?;
        Some(PreReserveRequest {
            job: task.job,
            stage,
            priority: job.priority(),
            extra: extra as u32,
            deadline: self.reservation_deadline(ctx, task),
            min_size,
        })
    }

    fn mitigate_stragglers(&self) -> bool {
        self.config.mitigate_stragglers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_cluster::{ClusterSpec, LocalityModel, SlotPool};
    use ssr_dag::{JobId, JobSpecBuilder, Priority, StageSpec};
    use ssr_scheduler::{FifoPriority, TaskScheduler};
    use ssr_simcore::dist::constant;
    use ssr_simcore::SimDuration;

    /// Drives a real scheduler so the ctx fixtures are authentic.
    fn scheduler_with(policy: SpeculativeReservation, slots: u32) -> TaskScheduler {
        TaskScheduler::new(
            ClusterSpec::new(1, slots).unwrap(),
            LocalityModel::paper_simulation().with_wait(SimDuration::ZERO),
            Box::new(policy),
            Box::new(FifoPriority),
        )
    }

    #[test]
    fn final_phase_slots_are_released() {
        let mut s = scheduler_with(SpeculativeReservation::new(), 2);
        let spec = JobSpecBuilder::new("one")
            .stage("only", 2, constant(1.0))
            .build()
            .unwrap();
        s.submit(spec, SimTime::ZERO);
        let a = s.resource_offers(SimTime::ZERO);
        s.task_finished(a[0].slot, SimTime::from_secs(1));
        let (free, running, reserved) = s.slot_pool().counts();
        assert_eq!((free, running, reserved), (1, 1, 0));
    }

    #[test]
    fn equal_parallelism_reserves_every_slot() {
        let mut s = scheduler_with(SpeculativeReservation::new(), 2);
        let spec = JobSpecBuilder::new("p")
            .priority(Priority::new(5))
            .stage("up", 2, constant(1.0))
            .stage("down", 2, constant(1.0))
            .chain()
            .build()
            .unwrap();
        let job = s.submit(spec, SimTime::ZERO);
        let a = s.resource_offers(SimTime::ZERO);
        s.task_finished(a[0].slot, SimTime::from_secs(1));
        let (_, _, reserved) = s.slot_pool().counts();
        assert_eq!(reserved, 1);
        let r = s.slot_pool().get(a[0].slot).reservation().unwrap();
        assert_eq!(r.job(), job);
        assert_eq!(r.priority(), Priority::new(5));
        assert_eq!(r.stage(), Some(StageId::new(1)));
        assert_eq!(r.deadline(), None, "strict isolation has no deadline");
    }

    #[test]
    fn hidden_parallelism_reserves_like_case_one() {
        let mut s = scheduler_with(SpeculativeReservation::new(), 2);
        let spec = JobSpecBuilder::new("hidden")
            .stage("up", 2, constant(1.0))
            .stage_spec(StageSpec::new("down", 2, constant(1.0)).with_hidden_parallelism())
            .chain()
            .build()
            .unwrap();
        s.submit(spec, SimTime::ZERO);
        let a = s.resource_offers(SimTime::ZERO);
        s.task_finished(a[0].slot, SimTime::from_secs(1));
        let (_, _, reserved) = s.slot_pool().counts();
        assert_eq!(reserved, 1);
    }

    #[test]
    fn shrinking_parallelism_releases_first_finishers() {
        // m = 4 -> n = 2: first 2 finishers released, next reserved.
        let mut s = scheduler_with(SpeculativeReservation::new(), 4);
        let spec = JobSpecBuilder::new("shrink")
            .stage("up", 4, constant(1.0))
            .stage("down", 2, constant(1.0))
            .chain()
            .build()
            .unwrap();
        s.submit(spec, SimTime::ZERO);
        let a = s.resource_offers(SimTime::ZERO);
        s.task_finished(a[0].slot, SimTime::from_secs(1));
        assert_eq!(s.slot_pool().counts().2, 0, "1st finisher released");
        s.task_finished(a[1].slot, SimTime::from_secs(2));
        assert_eq!(s.slot_pool().counts().2, 0, "2nd finisher released");
        s.task_finished(a[2].slot, SimTime::from_secs(3));
        assert_eq!(s.slot_pool().counts().2, 1, "3rd finisher reserved");
    }

    #[test]
    fn growing_parallelism_prereserves_after_threshold() {
        // m = 2 -> n = 4 on a 6-slot cluster with an idle bystander slot
        // pool; R = 0.5 means pre-reservation starts at the 1st completion.
        let policy = SpeculativeReservation::builder()
            .prereserve_threshold(0.5)
            .build()
            .unwrap();
        let mut s = scheduler_with(policy, 6);
        let spec = JobSpecBuilder::new("grow")
            .stage("up", 2, constant(1.0))
            .stage("down", 4, constant(1.0))
            .chain()
            .build()
            .unwrap();
        s.submit(spec, SimTime::ZERO);
        let a = s.resource_offers(SimTime::ZERO);
        assert_eq!(a.len(), 2);
        // First completion: fraction 0.5 >= R -> reserve own slot + grab
        // n - m = 2 extra free slots.
        s.task_finished(a[0].slot, SimTime::from_secs(1));
        let (_, running, reserved) = s.slot_pool().counts();
        assert_eq!(running, 1);
        assert_eq!(reserved, 1 + 2, "own slot + pre-reserved extras");
        // Second completion: barrier clears; downstream takes 4 slots.
        s.task_finished(a[1].slot, SimTime::from_secs(2));
        let b = s.resource_offers(SimTime::from_secs(2));
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn high_threshold_delays_prereservation() {
        let policy = SpeculativeReservation::builder()
            .prereserve_threshold(1.0)
            .build()
            .unwrap();
        let mut s = scheduler_with(policy, 6);
        let spec = JobSpecBuilder::new("grow")
            .stage("up", 2, constant(1.0))
            .stage("down", 4, constant(1.0))
            .chain()
            .build()
            .unwrap();
        s.submit(spec, SimTime::ZERO);
        let a = s.resource_offers(SimTime::ZERO);
        s.task_finished(a[0].slot, SimTime::from_secs(1));
        // fraction 0.5 < R = 1.0: only the own-slot reservation exists.
        assert_eq!(s.slot_pool().counts().2, 1);
    }

    #[test]
    fn reservation_blocks_lower_and_equal_priority_but_not_higher() {
        let mut s = scheduler_with(SpeculativeReservation::new(), 2);
        let fg = JobSpecBuilder::new("fg")
            .priority(Priority::new(10))
            .stage("up", 2, constant(1.0))
            .stage("down", 2, constant(1.0))
            .chain()
            .build()
            .unwrap();
        let fg = s.submit(fg, SimTime::ZERO);
        let a = s.resource_offers(SimTime::ZERO);
        s.task_finished(a[0].slot, SimTime::from_secs(1));
        assert_eq!(s.slot_pool().counts().2, 1);

        // Equal-priority contender is refused.
        let eq = JobSpecBuilder::new("eq")
            .priority(Priority::new(10))
            .stage("only", 2, constant(1.0))
            .build()
            .unwrap();
        s.submit(eq, SimTime::from_secs(1));
        assert!(s.resource_offers(SimTime::from_secs(1)).is_empty());

        // Strictly higher priority overrides the reservation.
        let hi = JobSpecBuilder::new("hi")
            .priority(Priority::new(11))
            .stage("only", 1, constant(1.0))
            .build()
            .unwrap();
        let hi = s.submit(hi, SimTime::from_secs(1));
        let b = s.resource_offers(SimTime::from_secs(1));
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].instance.task.job, hi);
        let _ = fg;
    }

    #[test]
    fn isolation_target_attaches_deadline() {
        let policy = SpeculativeReservation::builder()
            .isolation_target(0.5)
            .build()
            .unwrap();
        let mut s = scheduler_with(policy, 2);
        let spec = JobSpecBuilder::new("dl")
            .stage("up", 2, constant(2.0))
            .stage("down", 2, constant(1.0))
            .chain()
            .build()
            .unwrap();
        s.submit(spec, SimTime::ZERO);
        let a = s.resource_offers(SimTime::ZERO);
        s.task_finished(a[0].slot, SimTime::from_secs(2));
        let r = s.slot_pool().get(a[0].slot).reservation().unwrap();
        let deadline = r.deadline().expect("P < 1 must set a deadline");
        assert!(deadline > SimTime::from_secs(2));
        assert_eq!(s.next_reservation_expiry(), Some(deadline));
    }

    #[test]
    fn end_to_end_isolation_vs_work_conserving() {
        // The headline behaviour: with SSR, the foreground two-phase job's
        // freed slot is NOT given to the backlogged background job.
        let mut s = scheduler_with(SpeculativeReservation::new(), 2);
        let fg = JobSpecBuilder::new("fg")
            .priority(Priority::new(10))
            .stage("up", 2, constant(1.0))
            .stage("down", 2, constant(1.0))
            .chain()
            .build()
            .unwrap();
        let fg = s.submit(fg, SimTime::ZERO);
        let bg = JobSpecBuilder::new("bg")
            .priority(Priority::new(0))
            .stage("only", 8, constant(100.0))
            .build()
            .unwrap();
        let bg = s.submit(bg, SimTime::ZERO);
        let a = s.resource_offers(SimTime::ZERO);
        assert!(a.iter().all(|x| x.instance.task.job == fg));
        s.task_finished(a[0].slot, SimTime::from_secs(1));
        // Background may not take the reserved slot.
        assert!(s.resource_offers(SimTime::from_secs(1)).is_empty());
        // Barrier clears; downstream reclaims both slots immediately.
        s.task_finished(a[1].slot, SimTime::from_secs(2));
        let b = s.resource_offers(SimTime::from_secs(2));
        assert_eq!(b.len(), 2);
        assert!(b.iter().all(|x| x.instance.task.job == fg));
        let _ = bg;
    }

    #[test]
    fn straggler_copies_launch_on_reserved_slots() {
        let policy = SpeculativeReservation::builder()
            .mitigate_stragglers(true)
            .build()
            .unwrap();
        assert!(policy.mitigate_stragglers());
        let mut s = scheduler_with(policy, 4);
        let spec = JobSpecBuilder::new("strag")
            .stage("up", 4, constant(1.0))
            .stage("down", 4, constant(1.0))
            .chain()
            .build()
            .unwrap();
        s.submit(spec, SimTime::ZERO);
        let a = s.resource_offers(SimTime::ZERO);
        assert_eq!(a.len(), 4);
        // Two tasks finish -> two reserved slots, two ongoing tasks:
        // reserved >= ongoing triggers one copy per ongoing task.
        s.task_finished(a[0].slot, SimTime::from_secs(1));
        s.task_finished(a[1].slot, SimTime::from_secs(1));
        let copies = s.resource_offers(SimTime::from_secs(1));
        assert_eq!(copies.len(), 2);
        assert!(copies.iter().all(|c| c.speculative));
        assert!(copies.iter().all(|c| c.instance.is_copy()));
        // The copy slots are the previously reserved ones.
        let copy_slots: Vec<_> = copies.iter().map(|c| c.slot).collect();
        assert!(copy_slots.contains(&a[0].slot));
        assert!(copy_slots.contains(&a[1].slot));
        // A copy finishing first kills the original and completes the
        // partition.
        let out = s.task_finished(copies[0].slot, SimTime::from_secs(2));
        assert_eq!(out.killed.len(), 1);
    }

    #[test]
    fn no_copies_when_reserved_slots_insufficient() {
        let policy = SpeculativeReservation::builder()
            .mitigate_stragglers(true)
            .build()
            .unwrap();
        let mut s = scheduler_with(policy, 4);
        let spec = JobSpecBuilder::new("strag")
            .stage("up", 4, constant(1.0))
            .stage("down", 4, constant(1.0))
            .chain()
            .build()
            .unwrap();
        s.submit(spec, SimTime::ZERO);
        let a = s.resource_offers(SimTime::ZERO);
        // One finish: 1 reserved < 3 ongoing -> no copies yet (§IV-C).
        s.task_finished(a[0].slot, SimTime::from_secs(1));
        let offers = s.resource_offers(SimTime::from_secs(1));
        assert!(offers.is_empty());
    }

    #[test]
    fn undersized_slots_released_and_right_size_prereserved() {
        // SIII-C: cluster of 6 slots where slots 0 and 3 are large (size
        // 4). Upstream runs 2 unit-demand tasks; downstream demands 4.
        // On upstream completion the small slots must be released, and
        // large slots pre-reserved instead.
        use ssr_dag::StageSpec;
        let policy = SpeculativeReservation::new();
        let mut s = TaskScheduler::new(
            ClusterSpec::new(1, 6).unwrap().with_slot_sizing(1, 4, 3),
            LocalityModel::paper_simulation().with_wait(SimDuration::ZERO),
            Box::new(policy),
            Box::new(FifoPriority),
        );
        let job = JobSpecBuilder::new("sized")
            .priority(Priority::new(10))
            .stage("up", 2, constant(1.0))
            .stage_spec(StageSpec::new("down", 2, constant(1.0)).with_demand(4))
            .chain()
            .build()
            .unwrap();
        s.submit(job, SimTime::ZERO);
        let a = s.resource_offers(SimTime::ZERO);
        assert_eq!(a.len(), 2);
        let first = s.task_finished(a[0].slot, SimTime::from_secs(1));
        assert!(!first.stage_completed);
        // Every reservation made so far must be on a right-sized slot.
        let reserved: Vec<ssr_cluster::SlotId> = s
            .slot_pool()
            .iter()
            .filter(|(_, st)| st.is_reserved())
            .map(|(slot, _)| slot)
            .collect();
        for slot in &reserved {
            assert!(
                s.slot_pool().size(*slot) >= 4,
                "{slot} reserved despite being too small for the downstream demand"
            );
        }
        assert!(!reserved.is_empty(), "right-sized slots should have been pre-reserved");
        // Drive on: downstream runs on large slots only.
        s.task_finished(a[1].slot, SimTime::from_secs(2));
        let down = s.resource_offers(SimTime::from_secs(2));
        assert!(!down.is_empty());
        for d in &down {
            assert!(s.slot_pool().size(d.slot) >= 4);
        }
    }

    #[test]
    fn foreground_opt_in_leaves_background_work_conserving() {
        // A low-priority two-phase job under foreground-only SSR: its
        // freed slots are NOT reserved (work-conserving for batch), while
        // a high-priority job's are.
        let policy = SpeculativeReservation::with_config(
            crate::SsrConfig::builder()
                .reserve_only_at_or_above(10)
                .build()
                .unwrap(),
        );
        let mut s = scheduler_with(policy, 4);
        let lo = JobSpecBuilder::new("lo")
            .priority(Priority::new(0))
            .stage("up", 2, constant(1.0))
            .stage("down", 2, constant(1.0))
            .chain()
            .build()
            .unwrap();
        s.submit(lo, SimTime::ZERO);
        let a = s.resource_offers(SimTime::ZERO);
        s.task_finished(a[0].slot, SimTime::from_secs(1));
        assert_eq!(s.slot_pool().counts().2, 0, "batch job must not reserve");

        let hi = JobSpecBuilder::new("hi")
            .priority(Priority::new(10))
            .stage("up", 2, constant(1.0))
            .stage("down", 2, constant(1.0))
            .chain()
            .build()
            .unwrap();
        s.submit(hi, SimTime::from_secs(1));
        let b = s.resource_offers(SimTime::from_secs(1));
        let hi_slot = b.iter().find(|x| x.instance.task.job.as_u64() == 1).unwrap().slot;
        s.task_finished(hi_slot, SimTime::from_secs(2));
        assert_eq!(s.slot_pool().counts().2, 1, "foreground job must reserve");
    }

    #[test]
    fn builder_propagates_config() {
        let p = SpeculativeReservation::builder()
            .isolation_target(0.7)
            .prereserve_threshold(0.3)
            .default_shape(2.5)
            .min_fit_samples(7)
            .mitigate_stragglers(true)
            .build()
            .unwrap();
        assert_eq!(p.config().isolation_target(), 0.7);
        assert_eq!(p.config().prereserve_threshold(), 0.3);
        assert_eq!(p.config().default_shape(), 2.5);
        assert_eq!(p.config().min_fit_samples(), 7);
        assert_eq!(p.name(), "speculative-slot-reservation");
        assert!(SpeculativeReservation::builder().isolation_target(2.0).build().is_err());
    }

    #[test]
    fn default_policy_is_strict() {
        let p = SpeculativeReservation::default();
        assert_eq!(p.config().isolation_target(), 1.0);
        assert!(!p.mitigate_stragglers());
    }

    #[test]
    fn stale_reservations_cleared_when_downstream_completes() {
        // After the downstream phase finishes, no reservation tagged for it
        // survives.
        let mut s = scheduler_with(SpeculativeReservation::new(), 2);
        let spec = JobSpecBuilder::new("p")
            .stage("up", 2, constant(1.0))
            .stage("mid", 2, constant(1.0))
            .stage("down", 2, constant(1.0))
            .chain()
            .build()
            .unwrap();
        s.submit(spec, SimTime::ZERO);
        let mut t = 1u64;
        // Drive the whole job to completion.
        loop {
            let offers = s.resource_offers(SimTime::from_secs(t));
            if offers.is_empty() && !s.has_unfinished_jobs() {
                break;
            }
            let running: Vec<SlotId> = s.running_instances().map(|(slot, _)| slot).collect();
            if running.is_empty() {
                break;
            }
            t += 1;
            for slot in running {
                s.task_finished(slot, SimTime::from_secs(t));
            }
        }
        assert!(!s.has_unfinished_jobs());
        let (free, running, reserved) = s.slot_pool().counts();
        assert_eq!((free, running, reserved), (2, 0, 0), "no reservations may leak");
        // Also verify via SlotPool that nothing is reserved.
        let table: &SlotPool = s.slot_pool();
        assert_eq!(table.free_slots().count(), 2);
        let _ = JobId::new(0);
    }
}
