//! Deadline-based reservation (§IV-B): turning the operator's isolation
//! target `P` into an absolute reservation expiry.
//!
//! For a phase of `N` tasks whose durations follow Pareto(`t_m`, `alpha`),
//! the deadline enforcing isolation `P` is
//! `D = t_m (1 - P^{1/N})^{-1/alpha}` measured from the phase start. The
//! scale `t_m` is approximated online by the duration of the phase's first
//! finisher (paper §IV-B.2); the shape is fit by maximum likelihood over
//! the durations observed so far, falling back to a configured default.

use ssr_analytics::fit::shape_mle;
use ssr_analytics::tradeoff::deadline_for_isolation;
use ssr_scheduler::StageStats;
use ssr_simcore::{SimDuration, SimTime};

use crate::config::SsrConfig;

/// Computes absolute reservation deadlines from per-phase runtime
/// statistics.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineModel {
    isolation_target: f64,
    default_shape: f64,
    min_fit_samples: usize,
}

impl DeadlineModel {
    /// Creates the model from an [`SsrConfig`].
    pub fn new(config: &SsrConfig) -> Self {
        DeadlineModel {
            isolation_target: config.isolation_target(),
            default_shape: config.default_shape(),
            min_fit_samples: config.min_fit_samples(),
        }
    }

    /// The isolation target `P`.
    pub fn isolation_target(&self) -> f64 {
        self.isolation_target
    }

    /// The Pareto shape used for `stats`: the maximum-likelihood fit over
    /// observed durations once at least `min_fit_samples` exist (clamped
    /// to `(1, 16]` so the deadline stays finite), otherwise the default.
    pub fn shape_for(&self, stats: &StageStats) -> f64 {
        let durations = stats.durations();
        if durations.len() < self.min_fit_samples {
            return self.default_shape;
        }
        let scale = durations.iter().copied().fold(f64::INFINITY, f64::min);
        match shape_mle(durations, scale) {
            Ok(alpha) => alpha.clamp(1.0 + 1e-6, 16.0),
            Err(_) => self.default_shape,
        }
    }

    /// The absolute deadline for reservations made while the phase
    /// described by `stats` (with `parallelism` tasks) is draining, or
    /// `None` when `P = 1` (reservations never expire — strict isolation).
    ///
    /// Returns `None` as well before the phase's first finisher, since no
    /// `t_m` estimate exists yet (no reservation can be made before a task
    /// completes, so this does not occur in practice).
    pub fn deadline_for(&self, stats: &StageStats, parallelism: u32) -> Option<SimTime> {
        if self.isolation_target >= 1.0 {
            return None;
        }
        let t_m = stats.first_duration()?;
        let ready_at = stats.ready_at()?;
        let alpha = self.shape_for(stats);
        let d = deadline_for_isolation(
            self.isolation_target,
            t_m.max(1e-9),
            alpha,
            parallelism.max(1),
        )
        .ok()?;
        if !d.is_finite() {
            return None;
        }
        Some(ready_at + SimDuration::from_secs_f64(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(durations: &[f64], ready_secs: u64) -> StageStats {
        // StageStats has no public constructor; drive one through the
        // scheduler crate's intended flow instead: replicate via the
        // TaskScheduler would be heavyweight, so we build it through the
        // crate-public API exposed for tests.
        let mut s = StageStats::default();
        s.mark_ready(SimTime::from_secs(ready_secs));
        for &d in durations {
            s.record_duration(d);
        }
        s
    }

    #[test]
    fn strict_isolation_has_no_deadline() {
        let model = DeadlineModel::new(&SsrConfig::default());
        let stats = stats_with(&[1.0, 2.0, 3.0], 0);
        assert_eq!(model.deadline_for(&stats, 10), None);
    }

    #[test]
    fn deadline_uses_first_finisher_as_scale() {
        let config = SsrConfig::builder().isolation_target(0.9).build().unwrap();
        let model = DeadlineModel::new(&config);
        let stats = stats_with(&[2.0], 10);
        let deadline = model.deadline_for(&stats, 20).unwrap();
        // D = t_m (1 - P^{1/N})^{-1/alpha} with t_m = 2, alpha = 1.6 (default).
        let expected =
            deadline_for_isolation(0.9, 2.0, 1.6, 20).unwrap();
        let want = SimTime::from_secs(10) + SimDuration::from_secs_f64(expected);
        assert_eq!(deadline, want);
    }

    #[test]
    fn no_deadline_before_first_finish() {
        let config = SsrConfig::builder().isolation_target(0.5).build().unwrap();
        let model = DeadlineModel::new(&config);
        let mut stats = StageStats::default();
        stats.mark_ready(SimTime::ZERO);
        assert_eq!(model.deadline_for(&stats, 10), None);
    }

    #[test]
    fn shape_fit_kicks_in_after_min_samples() {
        let config = SsrConfig::builder()
            .isolation_target(0.5)
            .min_fit_samples(3)
            .default_shape(1.6)
            .build()
            .unwrap();
        let model = DeadlineModel::new(&config);
        let few = stats_with(&[1.0, 2.0], 0);
        assert_eq!(model.shape_for(&few), 1.6);
        let many = stats_with(&[1.0, 2.0, 4.0, 8.0], 0);
        let fitted = model.shape_for(&many);
        assert_ne!(fitted, 1.6);
        assert!(fitted > 1.0 && fitted <= 16.0);
    }

    #[test]
    fn degenerate_durations_clamp_shape() {
        let config = SsrConfig::builder()
            .isolation_target(0.5)
            .min_fit_samples(2)
            .build()
            .unwrap();
        let model = DeadlineModel::new(&config);
        let stats = stats_with(&[3.0, 3.0, 3.0], 0);
        assert_eq!(model.shape_for(&stats), 16.0);
        // Deadline stays finite thanks to the clamp.
        assert!(model.deadline_for(&stats, 8).is_some());
    }

    #[test]
    fn lower_isolation_target_gives_earlier_deadline() {
        let mk = |p: f64| {
            let config = SsrConfig::builder().isolation_target(p).build().unwrap();
            DeadlineModel::new(&config)
        };
        let stats = stats_with(&[2.0], 0);
        let strict = mk(0.95).deadline_for(&stats, 20).unwrap();
        let loose = mk(0.2).deadline_for(&stats, 20).unwrap();
        assert!(loose < strict);
    }
}
