//! # ssr-core
//!
//! **Speculative slot reservation** — the contribution of *"Speculative
//! Slot Reservation: Enforcing Service Isolation for Dependent
//! Data-Parallel Computations"* (ICDCS 2017), implemented as a
//! [`ReservationPolicy`](ssr_scheduler::ReservationPolicy) that plugs into
//! the `ssr-scheduler` framework exactly where the paper patched Spark's
//! `TaskSetManager` / `TaskSchedulerImpl` (§V).
//!
//! The policy implements:
//!
//! * **Algorithm 1** — when a task of a high-priority workflow job
//!   completes, the freed slot is *reserved* for the job's downstream
//!   phase instead of being handed to a lower-priority competitor:
//!   unconditionally for final-unknown/equal parallelism (Case 1 / 2.1),
//!   releasing the first `m - n` finishers when parallelism shrinks
//!   (Case 2.2), and *pre-reserving* `n - m` extra slots once the phase is
//!   `R`-fraction complete when parallelism grows (Case 2.3),
//! * **deadline-based reservation** (§IV-B) — the reservation expires at
//!   the deadline `D = t_m (1 - P^{1/N})^{-1/alpha}` derived from the
//!   operator's isolation target `P`, with `t_m` estimated online from the
//!   phase's first finisher and `alpha` fit by maximum likelihood,
//! * **straggler mitigation** (§IV-C) — reserved-yet-idle slots run extra
//!   copies of the phase's ongoing tasks; first finish wins.
//!
//! # Example
//!
//! ```
//! use ssr_core::SpeculativeReservation;
//! use ssr_scheduler::{TaskScheduler, FifoPriority};
//! use ssr_cluster::{ClusterSpec, LocalityModel};
//! use ssr_dag::{JobSpecBuilder, Priority};
//! use ssr_simcore::{SimTime, dist::constant};
//!
//! let policy = SpeculativeReservation::builder()
//!     .isolation_target(0.9)     // the tunable knob P
//!     .prereserve_threshold(0.5) // R
//!     .mitigate_stragglers(true)
//!     .build()?;
//!
//! let mut sched = TaskScheduler::new(
//!     ClusterSpec::new(4, 2)?,
//!     LocalityModel::paper_simulation(),
//!     Box::new(policy),
//!     Box::new(FifoPriority),
//! );
//! let job = JobSpecBuilder::new("fg")
//!     .priority(Priority::new(10))
//!     .stage("map", 4, constant(1.0))
//!     .stage("reduce", 4, constant(2.0))
//!     .chain()
//!     .build()?;
//! sched.submit(job, SimTime::ZERO);
//! assert_eq!(sched.resource_offers(SimTime::ZERO).len(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod deadline;
pub mod policy;

pub use config::{ConfigError, SsrBuilder, SsrConfig};
pub use deadline::DeadlineModel;
pub use policy::SpeculativeReservation;
