//! JSONL decision-trace reader: the inverse of [`ssr_trace::JsonlSink`].
//!
//! Parses a trace document line by line, validates it against the schema
//! the sink writes (sorted keys are not required on input, but event names,
//! field names and types are), and lowers each line back into the typed
//! [`TraceEvent`] the engine originally emitted. A trace written by
//! `JsonlSink` and read back here round-trips exactly — field for field,
//! timestamp for timestamp — which is pinned by tests against
//! [`ssr_trace::VecSink`].
//!
//! The reader accepts schema v1 through v3 documents. v1 traces lack the
//! per-stage DAG metadata on `job-submitted` and the blocked `stage` on
//! `offer-declined`; those fields read back as empty/`None` and downstream
//! analyses degrade gracefully (no critical path, coarser attribution).
//! v3 adds the four fault-lifecycle events (`task-crashed`,
//! `reservation-revoked`, `slot-offline`, `slot-online`); older traces
//! simply contain none of them.

use std::fmt;

use serde::Value;
use ssr_dag::{JobId, Priority, StageId};
use ssr_simcore::SimTime;
use ssr_trace::{DenyReason, StageMeta, TraceEvent, TraceEventKind, SCHEMA_VERSION};

/// Every event name the schema defines, in declaration order.
///
/// Kept in sync with [`TraceEventKind::name`] by the round-trip test, which
/// matches exhaustively over the enum on both the write and read side.
pub const ALL_EVENT_NAMES: [&str; 20] = [
    "job-submitted",
    "offer-round-started",
    "offer-round-ended",
    "offer-declined",
    "task-launched",
    "task-finished",
    "copy-killed",
    "reservation-granted",
    "prereserve-filled",
    "reservation-expired",
    "reservation-released",
    "stale-reservation-released",
    "barrier-cleared",
    "stage-completed",
    "job-completed",
    "locality-unlocked",
    "task-crashed",
    "reservation-revoked",
    "slot-offline",
    "slot-online",
];

/// A parsed trace document: the schema version from the header plus the
/// typed event stream in emission order.
#[derive(Debug, Clone)]
pub struct Trace {
    /// `schema_version` from the `trace-start` header line.
    pub schema_version: u32,
    /// The decision events, in emission (= `seq`) order.
    pub events: Vec<TraceEvent>,
}

/// A reader failure, carrying the 1-based line number it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadError {
    /// 1-based line number within the document (0 for document-level
    /// failures such as an empty input).
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl ReadError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ReadError { line, message: message.into() }
    }
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ReadError {}

/// Parses a complete JSONL trace document.
///
/// Validates the `trace-start` header (schema version 1 or 2), per-line
/// shape (`event`/`fields`/`seq`/`time_secs`), monotone `seq` numbering,
/// non-decreasing timestamps, and every event payload against the typed
/// schema. Unknown event names, unknown fields of a known type, and
/// ill-typed fields are all errors naming the offending line.
pub fn parse_trace(input: &str) -> Result<Trace, ReadError> {
    let mut lines = input.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| ReadError::new(0, "empty document: missing trace-start header"))?;
    let header = Line::parse(1, header)?;
    if header.event != "trace-start" {
        return Err(ReadError::new(1, format!("expected trace-start header, got {:?}", header.event)));
    }
    if header.seq != 0 {
        return Err(ReadError::new(1, format!("header seq must be 0, got {}", header.seq)));
    }
    let schema_version = header.fields(1)?.u32("schema_version")?;
    if schema_version == 0 || schema_version > SCHEMA_VERSION {
        return Err(ReadError::new(
            1,
            format!("unsupported schema_version {schema_version} (reader supports 1..={SCHEMA_VERSION})"),
        ));
    }

    let mut events = Vec::new();
    let mut last_time = SimTime::ZERO;
    for (idx, raw) in lines {
        let lineno = idx + 1;
        let line = Line::parse(lineno, raw)?;
        if line.seq != idx as u64 {
            return Err(ReadError::new(lineno, format!("seq {} out of order (expected {})", line.seq, idx)));
        }
        let time = SimTime::from_secs_f64(line.time_secs);
        if time < last_time {
            return Err(ReadError::new(
                lineno,
                format!("time_secs {} precedes the previous event", line.time_secs),
            ));
        }
        last_time = time;
        let kind = parse_kind(lineno, &line.event, line.fields(lineno)?)?;
        events.push(TraceEvent::new(time, kind));
    }
    Ok(Trace { schema_version, events })
}

/// One decoded JSONL line, before event-specific interpretation.
struct Line {
    event: String,
    fields_value: Value,
    seq: u64,
    time_secs: f64,
}

impl Line {
    fn parse(lineno: usize, raw: &str) -> Result<Line, ReadError> {
        let value = serde_json::from_str(raw)
            .map_err(|e| ReadError::new(lineno, format!("invalid JSON: {e}")))?;
        let Value::Object(entries) = value else {
            return Err(ReadError::new(lineno, "line is not a JSON object"));
        };
        let mut event = None;
        let mut fields = None;
        let mut seq = None;
        let mut time_secs = None;
        for (key, v) in entries {
            match key.as_str() {
                "event" => match v {
                    Value::Str(s) => event = Some(s),
                    other => return Err(ReadError::new(lineno, format!("event must be a string, got {other:?}"))),
                },
                "fields" => fields = Some(v),
                "seq" => match v {
                    Value::UInt(n) => seq = Some(n),
                    other => return Err(ReadError::new(lineno, format!("seq must be an unsigned integer, got {other:?}"))),
                },
                "time_secs" => match number(&v) {
                    Some(t) if t >= 0.0 => time_secs = Some(t),
                    _ => return Err(ReadError::new(lineno, format!("time_secs must be a non-negative number, got {v:?}"))),
                },
                other => return Err(ReadError::new(lineno, format!("unknown top-level key {other:?}"))),
            }
        }
        Ok(Line {
            event: event.ok_or_else(|| ReadError::new(lineno, "missing \"event\""))?,
            fields_value: fields.ok_or_else(|| ReadError::new(lineno, "missing \"fields\""))?,
            seq: seq.ok_or_else(|| ReadError::new(lineno, "missing \"seq\""))?,
            time_secs: time_secs.ok_or_else(|| ReadError::new(lineno, "missing \"time_secs\""))?,
        })
    }

    fn fields(&self, lineno: usize) -> Result<Fields<'_>, ReadError> {
        match &self.fields_value {
            Value::Object(entries) => Ok(Fields { lineno, entries }),
            other => Err(ReadError::new(lineno, format!("fields must be an object, got {other:?}"))),
        }
    }
}

/// Numeric coercion: the serializer writes integers for whole numbers only
/// in integer-typed fields, but a hand-edited trace may mix shapes.
fn number(v: &Value) -> Option<f64> {
    match v {
        Value::UInt(n) => Some(*n as f64),
        Value::Int(n) => Some(*n as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Typed accessors over one event's `"fields"` object.
struct Fields<'a> {
    lineno: usize,
    entries: &'a [(String, Value)],
}

impl<'a> Fields<'a> {
    fn err(&self, msg: impl Into<String>) -> ReadError {
        ReadError::new(self.lineno, msg)
    }

    fn get(&self, key: &str) -> Result<&'a Value, ReadError> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| self.err(format!("missing field {key:?}")))
    }

    /// Like [`get`](Self::get) but tolerating absence (schema v1 traces).
    fn get_opt(&self, key: &str) -> Option<&'a Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn u64(&self, key: &str) -> Result<u64, ReadError> {
        match self.get(key)? {
            Value::UInt(n) => Ok(*n),
            other => Err(self.err(format!("{key:?} must be an unsigned integer, got {other:?}"))),
        }
    }

    fn u32(&self, key: &str) -> Result<u32, ReadError> {
        u32::try_from(self.u64(key)?)
            .map_err(|_| self.err(format!("{key:?} exceeds u32 range")))
    }

    fn usize(&self, key: &str) -> Result<usize, ReadError> {
        usize::try_from(self.u64(key)?)
            .map_err(|_| self.err(format!("{key:?} exceeds usize range")))
    }

    fn i32(&self, key: &str) -> Result<i32, ReadError> {
        let raw = match self.get(key)? {
            Value::Int(n) => *n,
            Value::UInt(n) => i64::try_from(*n).map_err(|_| self.err(format!("{key:?} exceeds i64 range")))?,
            other => return Err(self.err(format!("{key:?} must be an integer, got {other:?}"))),
        };
        i32::try_from(raw).map_err(|_| self.err(format!("{key:?} exceeds i32 range")))
    }

    fn f64(&self, key: &str) -> Result<f64, ReadError> {
        number(self.get(key)?).ok_or_else(|| self.err(format!("{key:?} must be a number")))
    }

    fn bool(&self, key: &str) -> Result<bool, ReadError> {
        match self.get(key)? {
            Value::Bool(b) => Ok(*b),
            other => Err(self.err(format!("{key:?} must be a boolean, got {other:?}"))),
        }
    }

    fn string(&self, key: &str) -> Result<&'a str, ReadError> {
        match self.get(key)? {
            Value::Str(s) => Ok(s),
            other => Err(self.err(format!("{key:?} must be a string, got {other:?}"))),
        }
    }

    fn job(&self) -> Result<JobId, ReadError> {
        Ok(JobId::new(self.u64("job")?))
    }

    fn stage(&self) -> Result<StageId, ReadError> {
        Ok(StageId::new(self.u32("stage")?))
    }

    /// `stage` as a nullable field (`offer-declined`, `reservation-granted`);
    /// also absent entirely in schema v1 `offer-declined` lines.
    fn opt_stage(&self) -> Result<Option<StageId>, ReadError> {
        match self.get_opt("stage") {
            None | Some(Value::Null) => Ok(None),
            Some(Value::UInt(n)) => {
                let raw = u32::try_from(*n).map_err(|_| self.err("\"stage\" exceeds u32 range"))?;
                Ok(Some(StageId::new(raw)))
            }
            Some(other) => Err(self.err(format!("\"stage\" must be an unsigned integer or null, got {other:?}"))),
        }
    }

    fn opt_secs(&self, key: &str) -> Result<Option<f64>, ReadError> {
        match self.get(key)? {
            Value::Null => Ok(None),
            v => number(v)
                .map(Some)
                .ok_or_else(|| self.err(format!("{key:?} must be a number or null"))),
        }
    }

    /// `job-submitted`'s `stages` array; absent in schema v1 traces.
    fn stage_metas(&self) -> Result<Vec<StageMeta>, ReadError> {
        let Some(value) = self.get_opt("stages") else {
            return Ok(Vec::new());
        };
        let Value::Array(items) = value else {
            return Err(self.err(format!("\"stages\" must be an array, got {value:?}")));
        };
        items
            .iter()
            .map(|item| {
                let Value::Object(entries) = item else {
                    return Err(self.err(format!("stage entry must be an object, got {item:?}")));
                };
                let meta = Fields { lineno: self.lineno, entries };
                let Value::Array(parents) = meta.get("parents")? else {
                    return Err(self.err("\"parents\" must be an array"));
                };
                let parents = parents
                    .iter()
                    .map(|p| match p {
                        Value::UInt(n) => u32::try_from(*n)
                            .map(StageId::new)
                            .map_err(|_| self.err("parent stage id exceeds u32 range")),
                        other => Err(self.err(format!("parent stage id must be an unsigned integer, got {other:?}"))),
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(StageMeta { tasks: meta.u32("tasks")?, parents })
            })
            .collect()
    }
}

/// Maps a locality level string back to the engine's static identifier.
fn level_static(lineno: usize, level: &str) -> Result<&'static str, ReadError> {
    match level {
        "PROCESS_LOCAL" => Ok("PROCESS_LOCAL"),
        "NODE_LOCAL" => Ok("NODE_LOCAL"),
        "RACK_LOCAL" => Ok("RACK_LOCAL"),
        "ANY" => Ok("ANY"),
        other => Err(ReadError::new(lineno, format!("unknown locality level {other:?}"))),
    }
}

/// Maps a `slot-offline` cause string back to the engine's static
/// identifier.
fn offline_cause(lineno: usize, cause: &str) -> Result<&'static str, ReadError> {
    match cause {
        "crash" => Ok("crash"),
        "revocation" => Ok("revocation"),
        "partition" => Ok("partition"),
        "restart" => Ok("restart"),
        other => Err(ReadError::new(lineno, format!("unknown offline cause {other:?}"))),
    }
}

/// Maps a deny reason string back to [`DenyReason`].
fn deny_reason(lineno: usize, reason: &str) -> Result<DenyReason, ReadError> {
    match reason {
        "no-pending-tasks" => Ok(DenyReason::NoPendingTasks),
        "locality-wait" => Ok(DenyReason::LocalityWait),
        "reservation-denied" => Ok(DenyReason::ReservationDenied),
        "no-fitting-slot" => Ok(DenyReason::NoFittingSlot),
        other => Err(ReadError::new(lineno, format!("unknown deny reason {other:?}"))),
    }
}

/// Lowers one line's `(event, fields)` pair into the typed event kind.
///
/// The event-name dispatch below covers every entry of
/// [`ALL_EVENT_NAMES`]; the round-trip test walks an exhaustive match over
/// [`TraceEventKind`] to prove the two sides agree variant for variant.
fn parse_kind(lineno: usize, event: &str, f: Fields<'_>) -> Result<TraceEventKind, ReadError> {
    use TraceEventKind as K;
    Ok(match event {
        "job-submitted" => K::JobSubmitted {
            job: f.job()?,
            name: f.string("name")?.to_owned(),
            priority: Priority::new(f.i32("priority")?),
            stages: f.stage_metas()?,
        },
        "offer-round-started" => K::OfferRoundStarted {
            free: f.usize("free")?,
            running: f.usize("running")?,
            reserved: f.usize("reserved")?,
        },
        "offer-round-ended" => K::OfferRoundEnded { assignments: f.usize("assignments")? },
        "offer-declined" => K::OfferDeclined {
            job: f.job()?,
            reason: deny_reason(lineno, f.string("reason")?)?,
            stage: f.opt_stage()?,
        },
        "task-launched" => K::TaskLaunched {
            slot: f.u32("slot")?,
            job: f.job()?,
            stage: f.stage()?,
            partition: f.u32("partition")?,
            attempt: f.u32("attempt")?,
            level: level_static(lineno, f.string("level")?)?,
            speculative: f.bool("speculative")?,
            warm: f.bool("warm")?,
        },
        "task-finished" => K::TaskFinished {
            slot: f.u32("slot")?,
            job: f.job()?,
            stage: f.stage()?,
            partition: f.u32("partition")?,
            attempt: f.u32("attempt")?,
            duration_secs: f.f64("duration_secs")?,
        },
        "copy-killed" => K::CopyKilled {
            slot: f.u32("slot")?,
            job: f.job()?,
            stage: f.stage()?,
            partition: f.u32("partition")?,
        },
        "reservation-granted" => K::ReservationGranted {
            slot: f.u32("slot")?,
            job: f.job()?,
            priority: Priority::new(f.i32("priority")?),
            stage: f.opt_stage()?,
            deadline_secs: f.opt_secs("deadline_secs")?,
        },
        "prereserve-filled" => K::PrereserveFilled {
            slot: f.u32("slot")?,
            job: f.job()?,
            stage: f.stage()?,
            priority: Priority::new(f.i32("priority")?),
            deadline_secs: f.opt_secs("deadline_secs")?,
        },
        "reservation-expired" => K::ReservationExpired { slot: f.u32("slot")?, job: f.job()? },
        "reservation-released" => K::ReservationReleased { slot: f.u32("slot")?, job: f.job()? },
        "stale-reservation-released" => K::StaleReservationReleased {
            slot: f.u32("slot")?,
            job: f.job()?,
            stage: f.stage()?,
        },
        "barrier-cleared" => K::BarrierCleared { job: f.job()?, stage: f.stage()? },
        "stage-completed" => K::StageCompleted { job: f.job()?, stage: f.stage()? },
        "job-completed" => K::JobCompleted { job: f.job()? },
        "locality-unlocked" => K::LocalityUnlocked,
        "task-crashed" => K::TaskCrashed {
            slot: f.u32("slot")?,
            job: f.job()?,
            stage: f.stage()?,
            partition: f.u32("partition")?,
            attempt: f.u32("attempt")?,
            requeued: f.bool("requeued")?,
        },
        "reservation-revoked" => K::ReservationRevoked { slot: f.u32("slot")?, job: f.job()? },
        "slot-offline" => K::SlotOffline {
            slot: f.u32("slot")?,
            cause: offline_cause(lineno, f.string("cause")?)?,
        },
        "slot-online" => K::SlotOnline { slot: f.u32("slot")? },
        "trace-start" => {
            return Err(ReadError::new(lineno, "trace-start may only appear as the first line"))
        }
        other => return Err(ReadError::new(lineno, format!("unknown event {other:?}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_trace::{JsonlSink, TraceSink, VecSink};

    fn render(events: &[TraceEvent]) -> String {
        let mut sink = JsonlSink::new();
        for e in events {
            sink.record(e);
        }
        sink.finish()
    }

    #[test]
    fn rejects_malformed_documents() {
        let cases: &[(&str, &str)] = &[
            ("", "missing trace-start"),
            ("{\"event\":\"job-completed\",\"fields\":{\"job\":0},\"seq\":0,\"time_secs\":0.0}\n", "expected trace-start"),
            ("{\"event\":\"trace-start\",\"fields\":{\"schema_version\":99},\"seq\":0,\"time_secs\":0.0}\n", "unsupported schema_version"),
            ("not json\n", "invalid JSON"),
        ];
        for (doc, needle) in cases {
            let err = parse_trace(doc).unwrap_err();
            assert!(err.to_string().contains(needle), "{doc:?}: {err}");
        }
    }

    #[test]
    fn rejects_schema_violations_with_line_numbers() {
        let header = r#"{"event":"trace-start","fields":{"schema_version":2},"seq":0,"time_secs":0.0}"#;
        let bad_seq = format!("{header}\n{}\n", r#"{"event":"job-completed","fields":{"job":1},"seq":7,"time_secs":0.0}"#);
        let err = parse_trace(&bad_seq).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("seq 7 out of order"));

        let bad_field = format!("{header}\n{}\n", r#"{"event":"job-completed","fields":{"job":"one"},"seq":1,"time_secs":0.0}"#);
        let err = parse_trace(&bad_field).unwrap_err();
        assert!(err.to_string().contains(r#""job" must be an unsigned integer"#), "{err}");

        let bad_time = format!("{header}\n{}\n{}\n",
            r#"{"event":"job-completed","fields":{"job":1},"seq":1,"time_secs":5.0}"#,
            r#"{"event":"job-completed","fields":{"job":2},"seq":2,"time_secs":4.0}"#);
        let err = parse_trace(&bad_time).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("precedes"));

        let bad_event = format!("{header}\n{}\n", r#"{"event":"job-vanished","fields":{},"seq":1,"time_secs":0.0}"#);
        let err = parse_trace(&bad_event).unwrap_err();
        assert!(err.to_string().contains("unknown event"));
    }

    #[test]
    fn accepts_schema_v1_without_new_fields() {
        let doc = concat!(
            "{\"event\":\"trace-start\",\"fields\":{\"schema_version\":1},\"seq\":0,\"time_secs\":0.0}\n",
            "{\"event\":\"job-submitted\",\"fields\":{\"job\":0,\"name\":\"fg\",\"priority\":10},\"seq\":1,\"time_secs\":0.0}\n",
            "{\"event\":\"offer-declined\",\"fields\":{\"job\":0,\"reason\":\"locality-wait\"},\"seq\":2,\"time_secs\":0.5}\n",
        );
        let trace = parse_trace(doc).expect("v1 accepted");
        assert_eq!(trace.schema_version, 1);
        match &trace.events[0].kind {
            TraceEventKind::JobSubmitted { stages, .. } => assert!(stages.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        match &trace.events[1].kind {
            TraceEventKind::OfferDeclined { stage, .. } => assert!(stage.is_none()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn round_trips_vec_sink_stream() {
        let events = crate::test_events::one_of_each();
        let mut vec_sink = VecSink::new();
        for e in &events {
            vec_sink.record(e);
        }
        let doc = render(&events);
        let trace = parse_trace(&doc).expect("sink output parses");
        assert_eq!(trace.schema_version, SCHEMA_VERSION);
        assert_eq!(trace.events, vec_sink.into_events(), "JSONL round-trip must be lossless");
    }

    #[test]
    fn sample_set_covers_every_event_name() {
        let events = crate::test_events::one_of_each();
        for name in ALL_EVENT_NAMES {
            assert!(
                events.iter().any(|e| e.kind.name() == name),
                "sample set missing {name}"
            );
        }
        assert_eq!(events.len(), ALL_EVENT_NAMES.len());
    }
}
