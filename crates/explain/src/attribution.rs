//! Slowdown attribution: decomposing a foreground job's contended-vs-alone
//! JCT gap into additive causes.
//!
//! For each trace (contended and alone) the analyzer sweeps the event
//! stream and integrates the job's **parallelism deficit** — at each
//! moment, the fraction `pending / (pending + running)` of its schedulable
//! work that is *not* running (1.0 when fully blocked, 0.0 when every
//! remaining task has a slot) — and attributes each deficit-weighted
//! second to the scheduler's own stated reason: the most recent
//! `offer-declined` for the job. The per-cause seconds of the alone run
//! are then subtracted from the contended run's, so each component
//! reports only what *contention added*:
//!
//! - **reservation-denied** — queueing behind slots reserved for others;
//! - **locality-wait** — delay scheduling holding out for better placement;
//! - **ramp-up** — no fitting slot at all (the cluster was saturated, e.g.
//!   while a wave of background tasks drains);
//! - **fault-recovery** — stalls induced by injected faults: time after a
//!   crash/revocation hit the job, and saturated-cluster waits while slots
//!   are out of service (those would otherwise be misread as ramp-up);
//! - **speculation** — extra runtime of the job's own speculative copies
//!   that lost their race (wasted duplicate work);
//! - **residual** — everything the deficit model cannot see (slower task
//!   placement levels, second-order interactions between causes, the
//!   clamping of negative per-cause deltas, weighting error of the deficit
//!   heuristic itself). Defined as `gap − Σ components`, which makes the
//!   decomposition conserve by construction; it may be negative when the
//!   deficit heuristic over-counts a named cause. The Fig. 12(a)
//!   regression test asserts the decomposition conserves and that the
//!   named causes explain a nonzero share of the measured gap.

use std::fmt;

use ssr_dag::{JobId, StageId};
use ssr_simcore::SimTime;
use ssr_trace::{DenyReason, TraceEvent, TraceEventKind};

use crate::reader::Trace;

/// Attribution failure: the job wasn't found or never completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributionError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AttributionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for AttributionError {}

fn err(message: impl Into<String>) -> AttributionError {
    AttributionError { message: message.into() }
}

/// Deficit-weighted blocked-time profile of one job within one trace.
///
/// Each `*_secs` field integrates `pending / (pending + running)` over the
/// job's lifetime while that cause was active, so a stage with 9 of 10
/// tasks queued accrues 0.9 s of blocked time per wall second, and a fully
/// blocked job accrues 1.0.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BlockedProfile {
    /// Job completion time minus submission, in seconds.
    pub jct_secs: f64,
    /// Deficit seconds attributed to `reservation-denied` declines.
    pub reservation_denied_secs: f64,
    /// Deficit seconds attributed to `locality-wait` declines.
    pub locality_secs: f64,
    /// Deficit seconds attributed to `no-fitting-slot` declines.
    pub rampup_secs: f64,
    /// Deficit seconds attributed to fault recovery: accrued after a
    /// crash/revocation struck the job, or under `no-fitting-slot`
    /// declines while slots were offline.
    pub fault_recovery_secs: f64,
    /// Deficit seconds with no decline explaining them (folded into the
    /// residual, never into a named cause).
    pub unattributed_secs: f64,
    /// Wasted runtime of the job's speculative copies that lost their race.
    pub speculation_wasted_secs: f64,
}

/// One foreground job's slowdown decomposition.
///
/// The five component fields are additive: their sum equals
/// [`gap_secs`](Self::gap_secs) exactly (the residual is defined as the
/// remainder). `components_sum` re-adds them in a fixed order so the
/// conservation check is reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// Job name (shared between the contended and alone traces).
    pub job: String,
    /// JCT of the job running alone, from the alone trace.
    pub alone_jct_secs: f64,
    /// JCT of the job in the contended trace.
    pub contended_jct_secs: f64,
    /// `contended − alone`: the slowdown being explained.
    pub gap_secs: f64,
    /// Queueing behind reserved slots (contention-added).
    pub reservation_denied_secs: f64,
    /// Delay-scheduling waits (contention-added).
    pub locality_secs: f64,
    /// Saturated-cluster waits (contention-added).
    pub rampup_secs: f64,
    /// Fault-induced stalls (contention-added; zero without a fault plan).
    pub fault_recovery_secs: f64,
    /// Lost speculative-copy runtime (contention-added).
    pub speculation_secs: f64,
    /// The unexplained remainder, `gap − Σ` of the four causes above.
    pub residual_secs: f64,
}

impl Attribution {
    /// Re-adds the components in declaration order; equals
    /// [`gap_secs`](Self::gap_secs) up to float associativity.
    pub fn components_sum(&self) -> f64 {
        self.reservation_denied_secs
            + self.locality_secs
            + self.rampup_secs
            + self.fault_recovery_secs
            + self.speculation_secs
            + self.residual_secs
    }

    /// Whether the decomposition conserves the gap to within `tol` seconds.
    pub fn conserves(&self, tol: f64) -> bool {
        (self.components_sum() - self.gap_secs).abs() <= tol
    }
}

/// Finds a job id by name within a trace.
fn find_job(trace: &Trace, name: &str) -> Option<JobId> {
    trace.events.iter().find_map(|e| match &e.kind {
        TraceEventKind::JobSubmitted { job, name: n, .. } if n == name => Some(*job),
        _ => None,
    })
}

/// Every job name submitted in a trace, in submission order.
pub fn job_names(trace: &Trace) -> Vec<String> {
    trace
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            TraceEventKind::JobSubmitted { name, .. } => Some(name.clone()),
            _ => None,
        })
        .collect()
}

/// Sweeps one trace and measures the named job's blocked time per cause.
///
/// Errors when the job is absent or the trace ends before it completes.
pub fn blocked_profile(trace: &Trace, name: &str) -> Result<BlockedProfile, AttributionError> {
    let job = find_job(trace, name).ok_or_else(|| err(format!("job {name:?} not found in trace")))?;
    Sweep::new(job).run(&trace.events).ok_or_else(|| {
        err(format!("job {name:?} does not complete within the trace (truncated run?)"))
    })
}

/// Decomposes the job's contended−alone JCT gap.
///
/// Both traces must contain a completed job with the given name.
pub fn attribute(
    contended: &Trace,
    alone: &Trace,
    name: &str,
) -> Result<Attribution, AttributionError> {
    let c = blocked_profile(contended, name)?;
    let a = blocked_profile(alone, name)?;
    let gap_secs = c.jct_secs - a.jct_secs;
    // Per-cause contention-added time; clamped at zero so one cause
    // shrinking under contention (possible for locality) never masquerades
    // as negative queueing.
    let delta = |cv: f64, av: f64| (cv - av).max(0.0);
    let reservation_denied_secs = delta(c.reservation_denied_secs, a.reservation_denied_secs);
    let locality_secs = delta(c.locality_secs, a.locality_secs);
    let rampup_secs = delta(c.rampup_secs, a.rampup_secs);
    let fault_recovery_secs = delta(c.fault_recovery_secs, a.fault_recovery_secs);
    let speculation_secs = delta(c.speculation_wasted_secs, a.speculation_wasted_secs);
    let residual_secs = gap_secs
        - (reservation_denied_secs
            + locality_secs
            + rampup_secs
            + fault_recovery_secs
            + speculation_secs);
    Ok(Attribution {
        job: name.to_owned(),
        alone_jct_secs: a.jct_secs,
        contended_jct_secs: c.jct_secs,
        gap_secs,
        reservation_denied_secs,
        locality_secs,
        rampup_secs,
        fault_recovery_secs,
        speculation_secs,
        residual_secs,
    })
}

/// Blocked-cause buckets keyed by the engine's deny reasons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cause {
    ReservationDenied,
    Locality,
    Rampup,
    FaultRecovery,
    Unattributed,
}

impl Cause {
    fn of(reason: DenyReason) -> Cause {
        match reason {
            DenyReason::ReservationDenied => Cause::ReservationDenied,
            DenyReason::LocalityWait => Cause::Locality,
            DenyReason::NoFittingSlot => Cause::Rampup,
            // A no-pending-tasks decline while we observe pending tasks is
            // a bookkeeping disagreement; don't blame a named cause.
            DenyReason::NoPendingTasks => Cause::Unattributed,
        }
    }
}

/// Event-stream sweep for one job.
struct Sweep {
    job: JobId,
    submitted: Option<SimTime>,
    completed: Option<SimTime>,
    /// Remaining original (non-speculative) launches per stage; `None`
    /// until `job-submitted` declares the stage (schema v2). For v1 traces
    /// this stays empty and pending-ness is approximated as "submitted and
    /// not yet completed".
    pending: Vec<u32>,
    /// Stages whose barrier has cleared (roots clear at submit).
    runnable: Vec<bool>,
    /// Running instance count across all slots.
    running: usize,
    /// Open speculative copies: slot → launch time.
    copies: Vec<(u32, SimTime)>,
    /// Cluster-wide out-of-service slot count (from slot-offline/online).
    offline: usize,
    /// End of the last integrated interval; set at `job-submitted`.
    last: Option<SimTime>,
    cause: Cause,
    profile: BlockedProfile,
    has_stage_meta: bool,
}

impl Sweep {
    fn new(job: JobId) -> Sweep {
        Sweep {
            job,
            submitted: None,
            completed: None,
            pending: Vec::new(),
            runnable: Vec::new(),
            running: 0,
            copies: Vec::new(),
            offline: 0,
            last: None,
            cause: Cause::Unattributed,
            profile: BlockedProfile::default(),
            has_stage_meta: false,
        }
    }

    /// The job's parallelism deficit right now: the fraction of its
    /// schedulable work that is not running. 1.0 when fully blocked, 0.0
    /// when every remaining task of every runnable stage holds a slot.
    fn deficit(&self) -> f64 {
        if self.submitted.is_none() || self.completed.is_some() {
            return 0.0;
        }
        if self.has_stage_meta {
            let pending: u64 = self
                .pending
                .iter()
                .zip(&self.runnable)
                .filter(|&(_, &runnable)| runnable)
                .map(|(&pending, _)| u64::from(pending))
                .sum();
            if pending == 0 {
                0.0
            } else {
                pending as f64 / (pending as f64 + self.running as f64)
            }
        } else if self.running == 0 {
            // v1 trace: no task counts; only full stalls are visible.
            1.0
        } else {
            0.0
        }
    }

    fn bucket(&mut self) -> &mut f64 {
        match self.cause {
            Cause::ReservationDenied => &mut self.profile.reservation_denied_secs,
            Cause::Locality => &mut self.profile.locality_secs,
            Cause::Rampup => &mut self.profile.rampup_secs,
            Cause::FaultRecovery => &mut self.profile.fault_recovery_secs,
            Cause::Unattributed => &mut self.profile.unattributed_secs,
        }
    }

    /// Integrates the deficit held since the previous event into the
    /// current cause's bucket. Call *before* applying an event's state
    /// change: the deficit is piecewise constant between the job's events.
    fn advance(&mut self, now: SimTime) {
        let Some(last) = self.last else { return };
        let weight = self.deficit();
        if weight > 0.0 {
            let dt = now.saturating_since(last).as_secs_f64();
            if dt > 0.0 {
                *self.bucket() += weight * dt;
            }
        }
        self.last = Some(now);
    }

    fn stage_idx(&self, stage: StageId) -> Option<usize> {
        let idx = stage.index();
        (idx < self.pending.len()).then_some(idx)
    }

    fn run(mut self, events: &[TraceEvent]) -> Option<BlockedProfile> {
        use TraceEventKind as K;
        for event in events {
            let t = event.time;
            match &event.kind {
                K::JobSubmitted { job, stages, .. } if *job == self.job => {
                    self.submitted = Some(t);
                    self.last = Some(t);
                    self.has_stage_meta = !stages.is_empty();
                    self.pending = stages.iter().map(|s| s.tasks).collect();
                    self.runnable = stages.iter().map(|s| s.parents.is_empty()).collect();
                }
                K::BarrierCleared { job, stage } if *job == self.job => {
                    self.advance(t);
                    if let Some(idx) = self.stage_idx(*stage) {
                        self.runnable[idx] = true;
                    }
                }
                K::OfferDeclined { job, reason, .. } if *job == self.job => {
                    // Cause boundary: deficit accrued since the last event
                    // belongs to the previous cause; what follows is
                    // explained by this decline. A saturated cluster with
                    // slots out of service is a fault symptom, not ramp-up.
                    self.advance(t);
                    self.cause =
                        if *reason == DenyReason::NoFittingSlot && self.offline > 0 {
                            Cause::FaultRecovery
                        } else {
                            Cause::of(*reason)
                        };
                }
                K::TaskLaunched { job, stage, speculative, slot, .. } if *job == self.job => {
                    self.advance(t);
                    self.running += 1;
                    if *speculative {
                        self.copies.push((*slot, t));
                    } else if let Some(idx) = self.stage_idx(*stage) {
                        self.pending[idx] = self.pending[idx].saturating_sub(1);
                    }
                }
                K::TaskFinished { job, slot, .. } if *job == self.job => {
                    self.advance(t);
                    self.running = self.running.saturating_sub(1);
                    // A finishing speculative copy won its race; no waste.
                    self.copies.retain(|(s, _)| s != slot);
                }
                K::CopyKilled { job, slot, .. } if *job == self.job => {
                    self.advance(t);
                    self.running = self.running.saturating_sub(1);
                    if let Some(pos) = self.copies.iter().position(|(s, _)| s == slot) {
                        let (_, launched) = self.copies.remove(pos);
                        self.profile.speculation_wasted_secs +=
                            t.saturating_since(launched).as_secs_f64();
                    }
                }
                K::JobCompleted { job } if *job == self.job => {
                    self.advance(t);
                    self.completed = Some(t);
                }
                K::TaskCrashed { job, slot, stage, requeued, .. } if *job == self.job => {
                    self.advance(t);
                    self.running = self.running.saturating_sub(1);
                    // A crashed copy is fault loss, not speculation waste.
                    self.copies.retain(|(s, _)| s != slot);
                    if *requeued {
                        if let Some(idx) = self.stage_idx(*stage) {
                            self.pending[idx] += 1;
                        }
                    }
                    self.cause = Cause::FaultRecovery;
                }
                K::ReservationRevoked { job, .. } if *job == self.job => {
                    // The job's held slot was taken out of service: the
                    // stall that follows is fault-induced.
                    self.advance(t);
                    self.cause = Cause::FaultRecovery;
                }
                K::SlotOffline { .. } => {
                    self.offline += 1;
                }
                K::SlotOnline { .. } => {
                    self.offline = self.offline.saturating_sub(1);
                }
                _ => {}
            }
        }
        let (submitted, completed) = (self.submitted?, self.completed?);
        self.profile.jct_secs = completed.saturating_since(submitted).as_secs_f64();
        Some(self.profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_dag::Priority;
    use ssr_trace::StageMeta;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn submitted(job: u64, name: &str, tasks: u32) -> TraceEvent {
        TraceEvent::new(
            t(0.0),
            TraceEventKind::JobSubmitted {
                job: JobId::new(job),
                name: name.into(),
                priority: Priority::new(10),
                stages: vec![StageMeta { tasks, parents: vec![] }],
            },
        )
    }

    fn launched(at: f64, job: u64, partition: u32, speculative: bool) -> TraceEvent {
        TraceEvent::new(
            t(at),
            TraceEventKind::TaskLaunched {
                slot: partition,
                job: JobId::new(job),
                stage: StageId::new(0),
                partition,
                attempt: u32::from(speculative),
                level: "ANY",
                speculative,
                warm: false,
            },
        )
    }

    fn finished(at: f64, job: u64, partition: u32) -> TraceEvent {
        TraceEvent::new(
            t(at),
            TraceEventKind::TaskFinished {
                slot: partition,
                job: JobId::new(job),
                stage: StageId::new(0),
                partition,
                attempt: 0,
                duration_secs: 1.0,
            },
        )
    }

    fn declined(at: f64, job: u64, reason: DenyReason) -> TraceEvent {
        TraceEvent::new(
            t(at),
            TraceEventKind::OfferDeclined {
                job: JobId::new(job),
                reason,
                stage: Some(StageId::new(0)),
            },
        )
    }

    fn completed(at: f64, job: u64) -> TraceEvent {
        TraceEvent::new(t(at), TraceEventKind::JobCompleted { job: JobId::new(job) })
    }

    fn trace(events: Vec<TraceEvent>) -> Trace {
        Trace { schema_version: 2, events }
    }

    /// Alone: one task launches immediately, runs 0..4. JCT 4.
    fn alone_trace() -> Trace {
        trace(vec![
            submitted(0, "fg", 1),
            launched(0.0, 0, 0, false),
            finished(4.0, 0, 0),
            completed(4.0, 0),
        ])
    }

    /// Contended: declined reservation-denied 0..3, locality-wait 3..5,
    /// then runs 5..9. JCT 9 → gap 5 (3 reservation + 2 locality).
    fn contended_trace() -> Trace {
        trace(vec![
            submitted(0, "fg", 1),
            declined(0.0, 0, DenyReason::ReservationDenied),
            declined(3.0, 0, DenyReason::LocalityWait),
            launched(5.0, 0, 0, false),
            finished(9.0, 0, 0),
            completed(9.0, 0),
        ])
    }

    #[test]
    fn blocked_profile_splits_causes_by_decline_segments() {
        let p = blocked_profile(&contended_trace(), "fg").unwrap();
        assert!((p.jct_secs - 9.0).abs() < 1e-9);
        assert!((p.reservation_denied_secs - 3.0).abs() < 1e-9, "{p:?}");
        assert!((p.locality_secs - 2.0).abs() < 1e-9, "{p:?}");
        assert!((p.rampup_secs).abs() < 1e-9);
        assert!((p.unattributed_secs).abs() < 1e-9);
    }

    #[test]
    fn attribution_conserves_and_names_causes() {
        let a = attribute(&contended_trace(), &alone_trace(), "fg").unwrap();
        assert!((a.gap_secs - 5.0).abs() < 1e-9);
        assert!((a.reservation_denied_secs - 3.0).abs() < 1e-9);
        assert!((a.locality_secs - 2.0).abs() < 1e-9);
        assert!((a.residual_secs).abs() < 1e-9);
        assert!(a.conserves(1e-9));
    }

    #[test]
    fn speculation_waste_counts_killed_copies_only() {
        // Original runs 0..6; a copy launches at 2 and is killed at 6.
        let tr = trace(vec![
            submitted(0, "fg", 1),
            launched(0.0, 0, 0, false),
            launched(2.0, 0, 1, true),
            TraceEvent::new(
                t(6.0),
                TraceEventKind::TaskFinished {
                    slot: 0,
                    job: JobId::new(0),
                    stage: StageId::new(0),
                    partition: 0,
                    attempt: 0,
                    duration_secs: 6.0,
                },
            ),
            TraceEvent::new(
                t(6.0),
                TraceEventKind::CopyKilled {
                    slot: 1,
                    job: JobId::new(0),
                    stage: StageId::new(0),
                    partition: 0,
                },
            ),
            completed(6.0, 0),
        ]);
        let p = blocked_profile(&tr, "fg").unwrap();
        assert!((p.speculation_wasted_secs - 4.0).abs() < 1e-9, "{p:?}");
        // Nothing was blocked: a task ran the whole time.
        assert!((p.reservation_denied_secs + p.locality_secs + p.rampup_secs + p.unattributed_secs).abs() < 1e-9);
    }

    #[test]
    fn unattributed_blocked_time_stays_out_of_named_buckets() {
        // Blocked 0..2 with no decline explaining it, then runs 2..3.
        let tr = trace(vec![
            submitted(0, "fg", 1),
            launched(2.0, 0, 0, false),
            finished(3.0, 0, 0),
            completed(3.0, 0),
        ]);
        let p = blocked_profile(&tr, "fg").unwrap();
        assert!((p.unattributed_secs - 2.0).abs() < 1e-9, "{p:?}");
        assert!((p.reservation_denied_secs).abs() < 1e-9);
    }

    #[test]
    fn fault_recovery_claims_crash_induced_stalls() {
        // Runs 0..2, crashes at 2 (requeued); blocked 2..5 while the slot
        // is offline — a no-fitting-slot decline mid-window must stay in
        // the fault bucket, not ramp-up; relaunches 5..7.
        let tr = trace(vec![
            submitted(0, "fg", 1),
            launched(0.0, 0, 0, false),
            TraceEvent::new(
                t(2.0),
                TraceEventKind::TaskCrashed {
                    slot: 0,
                    job: JobId::new(0),
                    stage: StageId::new(0),
                    partition: 0,
                    attempt: 0,
                    requeued: true,
                },
            ),
            TraceEvent::new(t(2.0), TraceEventKind::SlotOffline { slot: 0, cause: "crash" }),
            declined(3.0, 0, DenyReason::NoFittingSlot),
            TraceEvent::new(t(5.0), TraceEventKind::SlotOnline { slot: 0 }),
            launched(5.0, 0, 0, false),
            finished(7.0, 0, 0),
            completed(7.0, 0),
        ]);
        let p = blocked_profile(&tr, "fg").unwrap();
        assert!((p.fault_recovery_secs - 3.0).abs() < 1e-9, "{p:?}");
        assert!((p.rampup_secs).abs() < 1e-9, "{p:?}");
        assert!((p.unattributed_secs).abs() < 1e-9, "{p:?}");
    }

    #[test]
    fn missing_or_truncated_job_is_an_error() {
        assert!(blocked_profile(&alone_trace(), "nope").is_err());
        let truncated = trace(vec![submitted(0, "fg", 1), launched(0.0, 0, 0, false)]);
        let e = blocked_profile(&truncated, "fg").unwrap_err();
        assert!(e.to_string().contains("does not complete"));
    }
}
