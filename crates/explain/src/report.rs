//! The combined analysis report: timeline + critical paths + attribution,
//! rendered as fixed-layout text or sorted-key JSON.
//!
//! Both renderings are pure functions of the parsed traces — no wall
//! clock, no ambient state — so running `ssr-cli explain` twice on the
//! same input yields byte-identical output, and CI diffs exactly that.

use serde::Value;

use crate::attribution::{attribute, Attribution, AttributionError};
use crate::reader::Trace;
use crate::timeline::{total_secs, Timeline};

/// Version of the *report* format (independent of the trace schema);
/// rendered into the JSON output so downstream tooling can detect shape
/// changes.
pub const REPORT_VERSION: u32 = 1;

/// A fully analyzed run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Trace schema version of the contended document.
    pub trace_schema_version: u32,
    /// The reconstructed timeline.
    pub timeline: Timeline,
    /// Per-foreground-job slowdown decompositions, in the order the alone
    /// traces were supplied.
    pub attributions: Vec<Attribution>,
}

/// Analyzes a contended trace, optionally decomposing slowdowns against
/// alone-baseline traces.
///
/// Each alone trace must contain exactly the foreground job it baselines
/// (matched by job name); jobs present in an alone trace but absent from
/// the contended trace are an error.
pub fn explain(contended: &Trace, alone: &[Trace]) -> Result<Report, AttributionError> {
    let timeline = Timeline::reconstruct(contended);
    let mut attributions = Vec::with_capacity(alone.len());
    for baseline in alone {
        let names = crate::attribution::job_names(baseline);
        let name = match names.as_slice() {
            [single] => single.clone(),
            [] => {
                return Err(AttributionError {
                    message: "alone trace contains no job-submitted event".into(),
                })
            }
            many => {
                return Err(AttributionError {
                    message: format!(
                        "alone trace must contain exactly one job, found {}: {}",
                        many.len(),
                        many.join(", ")
                    ),
                })
            }
        };
        attributions.push(attribute(contended, baseline, &name)?);
    }
    Ok(Report {
        trace_schema_version: contended.schema_version,
        timeline,
        attributions,
    })
}

impl Report {
    /// Renders the human-readable report with a gantt of the given width.
    pub fn render_text(&self, width: usize) -> String {
        let tl = &self.timeline;
        let mut out = String::new();
        out.push_str(&format!(
            "== ssr-explain: {} slots, {} jobs, horizon {:.3}s (trace schema v{}) ==\n",
            tl.slots,
            tl.jobs.len(),
            tl.horizon.as_secs_f64(),
            self.trace_schema_version,
        ));
        out.push_str("\n-- timeline --\n");
        out.push_str(&tl.render_gantt(width));

        out.push_str("\n-- per-job activity (seconds) --\n");
        out.push_str(&format!(
            "{:<20} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            "job", "submit", "complete", "jct", "running", "resv-idle", "waiting"
        ));
        for job in &tl.jobs {
            let complete = job
                .completed
                .map(|c| format!("{:.3}", c.as_secs_f64()))
                .unwrap_or_else(|| "-".into());
            let jct = job.jct_secs().map(|j| format!("{j:.3}")).unwrap_or_else(|| "-".into());
            out.push_str(&format!(
                "{:<20} {:>8.3} {:>9} {:>9} {:>9.3} {:>9.3} {:>9.3}\n",
                job.name,
                job.submitted.as_secs_f64(),
                complete,
                jct,
                total_secs(&job.running),
                total_secs(&job.reserved_idle),
                total_secs(&job.waiting),
            ));
        }

        out.push_str("\n-- critical paths --\n");
        for job in &tl.jobs {
            match job.critical_path() {
                Some(path) => {
                    let hops: Vec<String> = path
                        .iter()
                        .map(|h| {
                            format!(
                                "stage {} ({:.3}..{:.3})",
                                h.stage.as_u32(),
                                h.runnable.as_secs_f64(),
                                h.completed.as_secs_f64()
                            )
                        })
                        .collect();
                    out.push_str(&format!("{}: {}\n", job.name, hops.join(" -> ")));
                }
                None => out.push_str(&format!(
                    "{}: (no stage metadata or no completed stage)\n",
                    job.name
                )),
            }
        }

        if !self.attributions.is_empty() {
            out.push_str("\n-- slowdown attribution (contended vs alone) --\n");
            for a in &self.attributions {
                out.push_str(&format!(
                    "{}: alone {:.3}s, contended {:.3}s, gap {:.3}s\n",
                    a.job, a.alone_jct_secs, a.contended_jct_secs, a.gap_secs
                ));
                out.push_str(&format!("  reservation-denied {:>9.3}s\n", a.reservation_denied_secs));
                out.push_str(&format!("  locality-wait      {:>9.3}s\n", a.locality_secs));
                out.push_str(&format!("  ramp-up            {:>9.3}s\n", a.rampup_secs));
                out.push_str(&format!("  fault-recovery     {:>9.3}s\n", a.fault_recovery_secs));
                out.push_str(&format!("  speculation        {:>9.3}s\n", a.speculation_secs));
                out.push_str(&format!("  residual           {:>9.3}s\n", a.residual_secs));
                out.push_str(&format!(
                    "  sum                {:>9.3}s   (conserves gap: {})\n",
                    a.components_sum(),
                    if a.conserves(1e-6) { "yes" } else { "NO" }
                ));
            }
        }
        out
    }

    /// Renders the report as pretty-printed JSON with every object's keys
    /// in sorted (ASCII) order — the workspace's byte-stability discipline.
    pub fn render_json(&self) -> String {
        let tl = &self.timeline;
        let secs = |t: ssr_simcore::SimTime| Value::Float(t.as_secs_f64());
        let opt_secs =
            |t: Option<ssr_simcore::SimTime>| t.map(secs).unwrap_or(Value::Null);
        let obj = |entries: Vec<(&str, Value)>| {
            debug_assert!(
                entries.windows(2).all(|w| w[0].0 < w[1].0),
                "report JSON keys must be sorted: {:?}",
                entries.iter().map(|(k, _)| *k).collect::<Vec<_>>()
            );
            Value::Object(entries.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
        };

        let attribution = Value::Array(
            self.attributions
                .iter()
                .map(|a| {
                    obj(vec![
                        ("alone_jct_secs", Value::Float(a.alone_jct_secs)),
                        ("contended_jct_secs", Value::Float(a.contended_jct_secs)),
                        ("fault_recovery_secs", Value::Float(a.fault_recovery_secs)),
                        ("gap_secs", Value::Float(a.gap_secs)),
                        ("job", Value::Str(a.job.clone())),
                        ("locality_secs", Value::Float(a.locality_secs)),
                        ("rampup_secs", Value::Float(a.rampup_secs)),
                        ("reservation_denied_secs", Value::Float(a.reservation_denied_secs)),
                        ("residual_secs", Value::Float(a.residual_secs)),
                        ("speculation_secs", Value::Float(a.speculation_secs)),
                    ])
                })
                .collect(),
        );

        let jobs = Value::Array(
            tl.jobs
                .iter()
                .map(|job| {
                    let critical_path = job
                        .critical_path()
                        .map(|path| {
                            Value::Array(
                                path.iter()
                                    .map(|h| {
                                        obj(vec![
                                            ("completed_secs", secs(h.completed)),
                                            ("runnable_secs", secs(h.runnable)),
                                            ("stage", Value::UInt(u64::from(h.stage.as_u32()))),
                                        ])
                                    })
                                    .collect(),
                            )
                        })
                        .unwrap_or(Value::Null);
                    let stages = Value::Array(
                        job.stages
                            .iter()
                            .map(|s| {
                                obj(vec![
                                    ("completed_secs", opt_secs(s.completed)),
                                    ("first_launch_secs", opt_secs(s.first_launch)),
                                    (
                                        "parents",
                                        Value::Array(
                                            s.parents
                                                .iter()
                                                .map(|p| Value::UInt(u64::from(p.as_u32())))
                                                .collect(),
                                        ),
                                    ),
                                    ("runnable_secs", secs(s.runnable)),
                                    ("stage", Value::UInt(u64::from(s.stage.as_u32()))),
                                    ("tasks", Value::UInt(u64::from(s.tasks))),
                                ])
                            })
                            .collect(),
                    );
                    obj(vec![
                        ("completed_secs", opt_secs(job.completed)),
                        ("critical_path", critical_path),
                        ("job", Value::UInt(job.job.as_u64())),
                        ("name", Value::Str(job.name.clone())),
                        ("priority", Value::Int(i64::from(job.priority))),
                        ("reserved_idle_secs", Value::Float(total_secs(&job.reserved_idle))),
                        ("running_secs", Value::Float(total_secs(&job.running))),
                        ("stages", stages),
                        ("submitted_secs", secs(job.submitted)),
                        ("waiting_secs", Value::Float(total_secs(&job.waiting))),
                    ])
                })
                .collect(),
        );

        let root = obj(vec![
            ("attribution", attribution),
            ("horizon_secs", secs(tl.horizon)),
            ("jobs", jobs),
            ("report_version", Value::UInt(u64::from(REPORT_VERSION))),
            ("slots", Value::UInt(tl.slots as u64)),
            ("trace_schema_version", Value::UInt(u64::from(self.trace_schema_version))),
        ]);
        let mut out = serde_json::to_string_pretty(&Raw(root)).expect("serializer is total");
        out.push('\n');
        out
    }
}

/// Forwards an already-built `Value` through the `Serialize` entry point.
struct Raw(Value);

impl serde::Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::parse_trace;
    use ssr_trace::{JsonlSink, TraceSink};

    fn fixture_trace() -> Trace {
        let mut sink = JsonlSink::new();
        for e in crate::test_events::one_of_each() {
            sink.record(&e);
        }
        parse_trace(&sink.finish()).expect("fixture parses")
    }

    #[test]
    fn text_report_is_byte_stable() {
        let trace = fixture_trace();
        let a = explain(&trace, &[]).unwrap().render_text(60);
        let b = explain(&trace, &[]).unwrap().render_text(60);
        assert_eq!(a, b);
        assert!(a.contains("== ssr-explain:"));
        assert!(a.contains("-- per-job activity"));
        assert!(a.contains("-- critical paths"));
        // No alone traces → no attribution section.
        assert!(!a.contains("slowdown attribution"));
    }

    #[test]
    fn json_report_is_byte_stable_and_parses() {
        let trace = fixture_trace();
        let a = explain(&trace, &[]).unwrap().render_json();
        let b = explain(&trace, &[]).unwrap().render_json();
        assert_eq!(a, b);
        let value = serde_json::from_str(&a).expect("report JSON parses");
        let serde::Value::Object(entries) = value else { panic!("not an object") };
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            vec![
                "attribution",
                "horizon_secs",
                "jobs",
                "report_version",
                "slots",
                "trace_schema_version"
            ]
        );
    }

    #[test]
    fn self_baseline_attributes_zero_gap() {
        let trace = fixture_trace();
        let report = explain(&trace, std::slice::from_ref(&trace)).unwrap();
        assert_eq!(report.attributions.len(), 1);
        let a = &report.attributions[0];
        assert!(a.gap_secs.abs() < 1e-9, "{a:?}");
        assert!(a.conserves(1e-9));
        assert!(report.render_text(60).contains("slowdown attribution"));
    }

    #[test]
    fn rejects_multi_job_alone_trace() {
        let trace = fixture_trace();
        let mut doubled = fixture_trace();
        let extra = doubled.events[0].clone();
        doubled.events.push(extra);
        let err = explain(&trace, &[doubled]).unwrap_err();
        assert!(err.to_string().contains("exactly one job"), "{err}");
        let empty = Trace { schema_version: 2, events: vec![] };
        let err = explain(&trace, &[empty]).unwrap_err();
        assert!(err.to_string().contains("no job-submitted"), "{err}");
    }
}
