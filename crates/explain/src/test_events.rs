//! Shared test fixture: one event of every [`TraceEventKind`] variant.
//!
//! The construction below and the witness in [`assert_covers_schema`] both
//! match the enum exhaustively (no wildcard arm), so adding a variant to
//! `ssr-trace` fails compilation here until the reader, the fixture and the
//! schema constant are all updated together.

use ssr_dag::{JobId, Priority, StageId};
use ssr_simcore::SimTime;
use ssr_trace::{DenyReason, StageMeta, TraceEvent, TraceEventKind};

/// Compile-time exhaustiveness witness: one arm per variant, no wildcard.
///
/// Returns the schema event name so tests can also check runtime coverage.
pub(crate) fn assert_covers_schema(kind: &TraceEventKind) -> &'static str {
    use TraceEventKind as K;
    match kind {
        K::JobSubmitted { .. } => "job-submitted",
        K::OfferRoundStarted { .. } => "offer-round-started",
        K::OfferRoundEnded { .. } => "offer-round-ended",
        K::OfferDeclined { .. } => "offer-declined",
        K::TaskLaunched { .. } => "task-launched",
        K::TaskFinished { .. } => "task-finished",
        K::CopyKilled { .. } => "copy-killed",
        K::ReservationGranted { .. } => "reservation-granted",
        K::PrereserveFilled { .. } => "prereserve-filled",
        K::ReservationExpired { .. } => "reservation-expired",
        K::ReservationReleased { .. } => "reservation-released",
        K::StaleReservationReleased { .. } => "stale-reservation-released",
        K::BarrierCleared { .. } => "barrier-cleared",
        K::StageCompleted { .. } => "stage-completed",
        K::JobCompleted { .. } => "job-completed",
        K::LocalityUnlocked => "locality-unlocked",
        K::TaskCrashed { .. } => "task-crashed",
        K::ReservationRevoked { .. } => "reservation-revoked",
        K::SlotOffline { .. } => "slot-offline",
        K::SlotOnline { .. } => "slot-online",
    }
}

/// A deterministic event stream containing exactly one event per variant,
/// with optional fields populated (and `None` cases covered by the reader's
/// schema-v1 test).
pub(crate) fn one_of_each() -> Vec<TraceEvent> {
    let job = JobId::new(5);
    let stage0 = StageId::new(0);
    let stage1 = StageId::new(1);
    let at = |s: f64, kind: TraceEventKind| TraceEvent::new(SimTime::from_secs_f64(s), kind);
    vec![
        at(
            0.0,
            TraceEventKind::JobSubmitted {
                job,
                name: "fixture".into(),
                priority: Priority::new(-2),
                stages: vec![
                    StageMeta { tasks: 3, parents: vec![] },
                    StageMeta { tasks: 1, parents: vec![stage0] },
                ],
            },
        ),
        at(0.0, TraceEventKind::OfferRoundStarted { free: 2, running: 1, reserved: 1 }),
        at(
            0.0,
            TraceEventKind::OfferDeclined {
                job,
                reason: DenyReason::ReservationDenied,
                stage: Some(stage0),
            },
        ),
        at(
            0.0,
            TraceEventKind::TaskLaunched {
                slot: 3,
                job,
                stage: stage0,
                partition: 2,
                attempt: 1,
                level: "RACK_LOCAL",
                speculative: true,
                warm: true,
            },
        ),
        at(0.0, TraceEventKind::OfferRoundEnded { assignments: 1 }),
        at(
            1.25,
            TraceEventKind::TaskFinished {
                slot: 3,
                job,
                stage: stage0,
                partition: 2,
                attempt: 1,
                duration_secs: 1.25,
            },
        ),
        at(1.25, TraceEventKind::CopyKilled { slot: 0, job, stage: stage0, partition: 2 }),
        at(
            1.25,
            TraceEventKind::ReservationGranted {
                slot: 3,
                job,
                priority: Priority::new(-2),
                stage: Some(stage1),
                deadline_secs: Some(31.25),
            },
        ),
        at(
            1.5,
            TraceEventKind::PrereserveFilled {
                slot: 0,
                job,
                stage: stage1,
                priority: Priority::new(-2),
                deadline_secs: None,
            },
        ),
        at(2.0, TraceEventKind::LocalityUnlocked),
        at(
            2.25,
            TraceEventKind::TaskCrashed {
                slot: 1,
                job,
                stage: stage0,
                partition: 0,
                attempt: 0,
                requeued: true,
            },
        ),
        at(2.25, TraceEventKind::ReservationRevoked { slot: 2, job }),
        at(2.25, TraceEventKind::SlotOffline { slot: 1, cause: "crash" }),
        at(2.4, TraceEventKind::SlotOnline { slot: 1 }),
        at(2.5, TraceEventKind::ReservationExpired { slot: 0, job }),
        at(3.0, TraceEventKind::StageCompleted { job, stage: stage0 }),
        at(3.0, TraceEventKind::BarrierCleared { job, stage: stage1 }),
        at(3.0, TraceEventKind::StaleReservationReleased { slot: 3, job, stage: stage0 }),
        at(4.0, TraceEventKind::ReservationReleased { slot: 3, job }),
        at(4.0, TraceEventKind::JobCompleted { job }),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn witness_agrees_with_event_names() {
        for e in super::one_of_each() {
            assert_eq!(super::assert_covers_schema(&e.kind), e.kind.name());
        }
    }
}
