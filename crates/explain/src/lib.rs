//! `ssr-explain`: trace-driven slowdown attribution, timeline
//! reconstruction and byte-stable analysis reports.
//!
//! The tracing layer (`ssr-trace`) records every scheduler decision as a
//! JSONL document; this crate closes the loop by reading those documents
//! back and answering the question the paper's evaluation keeps asking:
//! *where did the foreground job's time go?*
//!
//! Three layers build on each other:
//!
//! - [`reader`] parses and schema-validates a JSONL trace back into the
//!   typed [`ssr_trace::TraceEvent`] stream (lossless round-trip, schema
//!   v1 and v2);
//! - [`timeline`] replays the stream into per-slot occupancy segments,
//!   per-job running / reserved-idle / waiting interval sets, per-stage
//!   lifecycle marks, stage critical paths, and an ASCII gantt;
//! - [`attribution`] decomposes each foreground job's contended−alone JCT
//!   gap into additive causes (reservation-denied queueing, locality wait,
//!   barrier ramp-up, speculation overhead, residual), conserving the gap
//!   by construction;
//! - [`report`] bundles all of it into text and sorted-key JSON renderings
//!   that are byte-identical across runs and `--jobs` worker counts.
//!
//! Everything is a pure function of the input traces: no wall clock, no
//! randomness, no hash-order iteration (the workspace determinism contract
//! enforced by `ssr-lint`).
//!
//! # Example
//!
//! ```
//! use ssr_explain::{explain, parse_trace};
//!
//! let doc = "{\"event\":\"trace-start\",\"fields\":{\"schema_version\":2},\"seq\":0,\"time_secs\":0.0}\n";
//! let trace = parse_trace(doc).expect("valid trace");
//! let report = explain(&trace, &[]).expect("no baselines needed");
//! assert!(report.render_text(64).contains("ssr-explain"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribution;
pub mod reader;
pub mod report;
pub mod timeline;

#[cfg(test)]
pub(crate) mod test_events;

pub use attribution::{attribute, blocked_profile, Attribution, AttributionError, BlockedProfile};
pub use reader::{parse_trace, ReadError, Trace, ALL_EVENT_NAMES};
pub use report::{explain, Report, REPORT_VERSION};
pub use timeline::{CriticalHop, Interval, JobTimeline, SlotState, StageTimeline, Timeline};
