//! Timeline reconstruction: turning a flat decision-event stream back into
//! per-slot occupancy, per-job activity intervals and per-stage lifecycle
//! marks.
//!
//! The reconstruction replays the trace through a small slot state machine
//! (free → reserved → running → free …) mirroring the scheduler's own slot
//! pool, then derives interval sets from the resulting segments:
//!
//! - **running** — union of times the job had at least one instance on a
//!   slot (speculative copies included);
//! - **reserved-idle** — union of times at least one slot sat reserved for
//!   the job without running anything;
//! - **waiting** — the job's lifetime minus its running union: time it was
//!   submitted but made no forward progress anywhere.
//!
//! [`Timeline::render_gantt`] draws the slot matrix as fixed-width ASCII
//! (the shape of Fig. 5's sawtooth is directly visible in the per-job
//! lanes); everything renders byte-identically for a given trace.

use std::collections::BTreeMap;

use ssr_dag::{JobId, StageId};
use ssr_simcore::SimTime;
use ssr_trace::{TraceEvent, TraceEventKind};

use crate::reader::Trace;

/// A half-open time interval `[start, end)` in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive start.
    pub start: SimTime,
    /// Exclusive end.
    pub end: SimTime,
}

impl Interval {
    /// The interval's length in seconds.
    pub fn secs(&self) -> f64 {
        self.end.saturating_since(self.start).as_secs_f64()
    }
}

/// Sums interval lengths in seconds.
pub fn total_secs(intervals: &[Interval]) -> f64 {
    // fold, not sum(): f64::sum's identity is -0.0, which would leak a
    // "-0.000" into reports for empty interval sets.
    intervals.iter().map(Interval::secs).fold(0.0, |a, b| a + b)
}

/// Merges possibly-overlapping intervals into a disjoint sorted union.
pub fn union(mut intervals: Vec<Interval>) -> Vec<Interval> {
    intervals.sort_by_key(|iv| (iv.start, iv.end));
    let mut merged: Vec<Interval> = Vec::with_capacity(intervals.len());
    for iv in intervals {
        if iv.end <= iv.start {
            continue;
        }
        match merged.last_mut() {
            Some(last) if iv.start <= last.end => last.end = last.end.max(iv.end),
            _ => merged.push(iv),
        }
    }
    merged
}

/// Subtracts a disjoint sorted union `b` from the single interval `a`.
fn subtract(a: Interval, b: &[Interval]) -> Vec<Interval> {
    let mut out = Vec::new();
    let mut cursor = a.start;
    for iv in b {
        if iv.end <= cursor {
            continue;
        }
        if iv.start >= a.end {
            break;
        }
        if iv.start > cursor {
            out.push(Interval { start: cursor, end: iv.start.min(a.end) });
        }
        cursor = cursor.max(iv.end);
        if cursor >= a.end {
            break;
        }
    }
    if cursor < a.end {
        out.push(Interval { start: cursor, end: a.end });
    }
    out
}

/// What one slot is doing over one segment of time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// Unowned and idle.
    Free,
    /// Held idle under a reservation for the job.
    Reserved(JobId),
    /// Occupied by a task instance of the job.
    Running {
        /// The owning job.
        job: JobId,
        /// Whether the instance is a speculative copy.
        speculative: bool,
    },
}

/// A state change on one slot; the segment lasts until the next change (or
/// the trace horizon).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// When the slot entered this state.
    pub start: SimTime,
    /// The state itself.
    pub state: SlotState,
}

/// Lifecycle marks of one stage, reconstructed from the trace.
#[derive(Debug, Clone)]
pub struct StageTimeline {
    /// The stage.
    pub stage: StageId,
    /// Partition count (0 when read from a schema-v1 trace).
    pub tasks: u32,
    /// Upstream stages (empty for roots or v1 traces).
    pub parents: Vec<StageId>,
    /// When the stage became schedulable: the job's submit time for root
    /// stages, the `barrier-cleared` time otherwise.
    pub runnable: SimTime,
    /// First task launch, if any was observed.
    pub first_launch: Option<SimTime>,
    /// `stage-completed` time, if the trace reaches it.
    pub completed: Option<SimTime>,
}

/// One hop of a job's critical path.
#[derive(Debug, Clone, Copy)]
pub struct CriticalHop {
    /// The stage on the path.
    pub stage: StageId,
    /// When it became schedulable.
    pub runnable: SimTime,
    /// When it completed.
    pub completed: SimTime,
}

/// Reconstructed activity of one job.
#[derive(Debug, Clone)]
pub struct JobTimeline {
    /// The job.
    pub job: JobId,
    /// Job name from `job-submitted`.
    pub name: String,
    /// Submission priority level.
    pub priority: i32,
    /// Submission time.
    pub submitted: SimTime,
    /// Completion time, if the trace reaches it.
    pub completed: Option<SimTime>,
    /// Per-stage lifecycle marks, ordered by stage id.
    pub stages: Vec<StageTimeline>,
    /// Every task instance's occupancy interval (one entry per launch),
    /// with its speculative flag.
    pub instances: Vec<(Interval, bool)>,
    /// Disjoint union of times ≥1 instance of the job was running.
    pub running: Vec<Interval>,
    /// Disjoint union of times ≥1 slot sat reserved-idle for the job.
    pub reserved_idle: Vec<Interval>,
    /// The job's lifetime minus `running`: no instance anywhere.
    pub waiting: Vec<Interval>,
}

impl JobTimeline {
    /// Job completion time minus submission, in seconds (`None` until the
    /// trace reaches `job-completed`).
    pub fn jct_secs(&self) -> Option<f64> {
        self.completed.map(|c| c.saturating_since(self.submitted).as_secs_f64())
    }

    /// Number of instances running at time `t`.
    pub fn running_count(&self, t: SimTime) -> usize {
        self.instances.iter().filter(|(iv, _)| iv.start <= t && t < iv.end).count()
    }

    /// Extracts the job's stage critical path: starting from the completed
    /// stage that finished last (ties broken toward the lowest stage id),
    /// repeatedly steps to the parent that completed last until reaching a
    /// root. Returns `None` when the trace carries no stage DAG metadata
    /// (schema v1) or the final stage never completed.
    pub fn critical_path(&self) -> Option<Vec<CriticalHop>> {
        let by_id: BTreeMap<StageId, &StageTimeline> =
            self.stages.iter().map(|s| (s.stage, s)).collect();
        let last = self
            .stages
            .iter()
            .filter_map(|s| s.completed.map(|c| (c, s)))
            // max_by_key returns the *last* max; reversing the id keeps the
            // lowest stage id on completion-time ties.
            .max_by_key(|(c, s)| (*c, std::cmp::Reverse(s.stage)))?
            .1;
        let mut path = vec![CriticalHop {
            stage: last.stage,
            runnable: last.runnable,
            completed: last.completed.expect("filtered above"),
        }];
        let mut cursor = last;
        while let Some((completed, parent)) = cursor
            .parents
            .iter()
            .filter_map(|p| by_id.get(p))
            .filter_map(|s| s.completed.map(|c| (c, *s)))
            .max_by_key(|(c, s)| (*c, std::cmp::Reverse(s.stage)))
        {
            path.push(CriticalHop {
                stage: parent.stage,
                runnable: parent.runnable,
                completed,
            });
            cursor = parent;
        }
        path.reverse();
        Some(path)
    }
}

/// The reconstructed run: slot occupancy plus per-job activity.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Number of slots in the cluster (from the first offer round's pool
    /// counts, or the highest slot index seen if the trace has no rounds).
    pub slots: usize,
    /// Timestamp of the last event in the trace.
    pub horizon: SimTime,
    /// Per-job activity, ordered by job id.
    pub jobs: Vec<JobTimeline>,
    /// Per-slot state segments, ordered by start time; index = slot.
    pub slot_segments: Vec<Vec<Segment>>,
}

impl Timeline {
    /// Replays a parsed trace into a timeline.
    pub fn reconstruct(trace: &Trace) -> Timeline {
        Builder::default().replay(&trace.events)
    }

    /// The slot's state at time `t` (last transition at or before `t`).
    pub fn slot_state(&self, slot: usize, t: SimTime) -> SlotState {
        let segments = match self.slot_segments.get(slot) {
            Some(s) if !s.is_empty() => s,
            _ => return SlotState::Free,
        };
        match segments.partition_point(|seg| seg.start <= t) {
            0 => SlotState::Free,
            n => segments[n - 1].state,
        }
    }

    /// Cluster-wide pool counts `(free, reserved, running)` at time `t`.
    pub fn occupancy(&self, t: SimTime) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for slot in 0..self.slots {
            match self.slot_state(slot, t) {
                SlotState::Free => counts.0 += 1,
                SlotState::Reserved(_) => counts.1 += 1,
                SlotState::Running { .. } => counts.2 += 1,
            }
        }
        counts
    }

    /// Looks a job up by name.
    pub fn job_named(&self, name: &str) -> Option<&JobTimeline> {
        self.jobs.iter().find(|j| j.name == name)
    }

    /// The single-letter gantt key for the job at `index` in submission-id
    /// order (`A`, `B`, …, wrapping after 26 jobs).
    pub fn job_letter(index: usize) -> char {
        (b'A' + (index % 26) as u8) as char
    }

    /// Renders the run as fixed-width ASCII: one row per slot sampling the
    /// slot state at each column's midpoint (`.` free, `=` reserved-idle,
    /// job letter running — lowercase for speculative copies), followed by
    /// one lane per job showing its running-instance count over time (`.`
    /// idle, digits, `#` for ≥10). Output is byte-identical for a given
    /// trace and width.
    pub fn render_gantt(&self, width: usize) -> String {
        let width = width.max(8);
        let horizon_secs = self.horizon.as_secs_f64();
        let mut out = String::new();
        if self.slots == 0 || horizon_secs <= 0.0 {
            out.push_str("(empty trace: nothing to draw)\n");
            return out;
        }
        let letter_of: BTreeMap<JobId, char> = self
            .jobs
            .iter()
            .enumerate()
            .map(|(i, j)| (j.job, Self::job_letter(i)))
            .collect();
        let col_mid = |i: usize| {
            SimTime::from_secs_f64(horizon_secs * (i as f64 + 0.5) / width as f64)
        };
        out.push_str(&format!(
            "time 0.000s .. {horizon_secs:.3}s   ({width} cols, {:.3}s/col)\n",
            horizon_secs / width as f64
        ));
        for (i, job) in self.jobs.iter().enumerate() {
            out.push_str(&format!(
                "  {} = {} (job {}, prio {})\n",
                Self::job_letter(i),
                job.name,
                job.job.as_u64(),
                job.priority
            ));
        }
        out.push_str("  lowercase = speculative copy, '=' = reserved-idle, '.' = free\n");
        for slot in 0..self.slots {
            let mut row = String::with_capacity(width);
            for i in 0..width {
                row.push(match self.slot_state(slot, col_mid(i)) {
                    SlotState::Free => '.',
                    SlotState::Reserved(_) => '=',
                    SlotState::Running { job, speculative } => {
                        let c = letter_of.get(&job).copied().unwrap_or('?');
                        if speculative {
                            c.to_ascii_lowercase()
                        } else {
                            c
                        }
                    }
                });
            }
            out.push_str(&format!("slot {slot:>3} |{row}|\n"));
        }
        for (i, job) in self.jobs.iter().enumerate() {
            let mut row = String::with_capacity(width);
            for c in 0..width {
                let n = job.running_count(col_mid(c));
                row.push(match n {
                    0 => '.',
                    1..=9 => char::from_digit(n as u32, 10).expect("single digit"),
                    _ => '#',
                });
            }
            out.push_str(&format!("run  {:>3} |{row}|\n", Self::job_letter(i)));
        }
        out
    }
}

/// Per-job scratch state while replaying.
#[derive(Debug, Default)]
struct JobScratch {
    name: String,
    priority: i32,
    submitted: SimTime,
    completed: Option<SimTime>,
    stages: BTreeMap<StageId, StageTimeline>,
    instances: Vec<(Interval, bool)>,
    reserved: Vec<Interval>,
}

/// Trace replay state machine.
#[derive(Debug, Default)]
struct Builder {
    slots: usize,
    jobs: BTreeMap<JobId, JobScratch>,
    /// Current state and segment history per slot.
    segments: Vec<Vec<Segment>>,
    /// Open running instance per slot: (job, start, speculative).
    open_run: BTreeMap<usize, (JobId, SimTime, bool)>,
    /// Open reservation per slot: (job, start).
    open_reservation: BTreeMap<usize, (JobId, SimTime)>,
}

impl Builder {
    fn ensure_slot(&mut self, slot: usize) {
        if slot >= self.slots {
            self.slots = slot + 1;
        }
        while self.segments.len() <= slot {
            self.segments.push(Vec::new());
        }
    }

    fn transition(&mut self, slot: usize, at: SimTime, state: SlotState) {
        self.ensure_slot(slot);
        let segments = &mut self.segments[slot];
        match segments.last_mut() {
            // Same-timestamp transitions collapse (e.g. task-finished then
            // reservation-granted on the same slot in one scheduler step):
            // the last state at a timestamp wins, matching the pool state
            // the scheduler leaves behind.
            Some(last) if last.start == at => last.state = state,
            Some(last) if last.state == state => {}
            _ => segments.push(Segment { start: at, state }),
        }
    }

    fn close_run(&mut self, slot: usize, at: SimTime) {
        if let Some((job, start, speculative)) = self.open_run.remove(&slot) {
            if let Some(scratch) = self.jobs.get_mut(&job) {
                scratch.instances.push((Interval { start, end: at }, speculative));
            }
        }
    }

    fn close_reservation(&mut self, slot: usize, at: SimTime) {
        if let Some((job, start)) = self.open_reservation.remove(&slot) {
            if let Some(scratch) = self.jobs.get_mut(&job) {
                scratch.reserved.push(Interval { start, end: at });
            }
        }
    }

    fn reserve_slot(&mut self, slot: usize, job: JobId, at: SimTime) {
        self.close_run(slot, at);
        self.close_reservation(slot, at);
        self.open_reservation.insert(slot, (job, at));
        self.transition(slot, at, SlotState::Reserved(job));
    }

    fn free_slot(&mut self, slot: usize, at: SimTime) {
        self.close_run(slot, at);
        self.close_reservation(slot, at);
        self.transition(slot, at, SlotState::Free);
    }

    fn replay(mut self, events: &[TraceEvent]) -> Timeline {
        use TraceEventKind as K;
        let horizon = events.last().map(|e| e.time).unwrap_or(SimTime::ZERO);
        for event in events {
            let t = event.time;
            match &event.kind {
                K::JobSubmitted { job, name, priority, stages } => {
                    let scratch = self.jobs.entry(*job).or_default();
                    scratch.name = name.clone();
                    scratch.priority = priority.level();
                    scratch.submitted = t;
                    for (idx, meta) in stages.iter().enumerate() {
                        let stage = StageId::new(idx as u32);
                        scratch.stages.insert(
                            stage,
                            StageTimeline {
                                stage,
                                tasks: meta.tasks,
                                parents: meta.parents.clone(),
                                // Root stages are runnable at submit; others
                                // get their true time from barrier-cleared.
                                runnable: t,
                                first_launch: None,
                                completed: None,
                            },
                        );
                    }
                }
                K::OfferRoundStarted { free, running, reserved } => {
                    let pool = free + running + reserved;
                    if pool > self.slots {
                        self.ensure_slot(pool - 1);
                    }
                }
                K::TaskLaunched { slot, job, stage, speculative, .. } => {
                    let slot = *slot as usize;
                    self.close_run(slot, t);
                    self.close_reservation(slot, t);
                    self.open_run.insert(slot, (*job, t, *speculative));
                    self.transition(slot, t, SlotState::Running { job: *job, speculative: *speculative });
                    let scratch = self.jobs.entry(*job).or_default();
                    let entry = scratch.stages.entry(*stage).or_insert_with(|| StageTimeline {
                        stage: *stage,
                        tasks: 0,
                        parents: Vec::new(),
                        runnable: t,
                        first_launch: None,
                        completed: None,
                    });
                    if entry.first_launch.is_none() {
                        entry.first_launch = Some(t);
                    }
                }
                K::TaskFinished { slot, .. } | K::CopyKilled { slot, .. } => {
                    self.free_slot(*slot as usize, t);
                }
                K::ReservationGranted { slot, job, .. } | K::PrereserveFilled { slot, job, .. } => {
                    self.reserve_slot(*slot as usize, *job, t);
                }
                K::ReservationExpired { slot, .. }
                | K::ReservationReleased { slot, .. }
                | K::StaleReservationReleased { slot, .. } => {
                    self.free_slot(*slot as usize, t);
                }
                K::BarrierCleared { job, stage } => {
                    if let Some(s) = self.jobs.get_mut(job).and_then(|j| j.stages.get_mut(stage)) {
                        s.runnable = t;
                    }
                }
                K::StageCompleted { job, stage } => {
                    if let Some(s) = self.jobs.get_mut(job).and_then(|j| j.stages.get_mut(stage)) {
                        s.completed = Some(t);
                    }
                }
                K::JobCompleted { job } => {
                    if let Some(j) = self.jobs.get_mut(job) {
                        j.completed = Some(t);
                    }
                }
                // A crash closes the victim's run; a revocation closes the
                // reservation. The paired slot-offline event then leaves the
                // slot rendered Free (out-of-service shading is a job-level
                // concern the attribution layer handles).
                K::TaskCrashed { slot, .. } | K::ReservationRevoked { slot, .. } => {
                    self.free_slot(*slot as usize, t);
                }
                K::SlotOffline { slot, .. } => {
                    self.free_slot(*slot as usize, t);
                }
                K::OfferRoundEnded { .. }
                | K::OfferDeclined { .. }
                | K::LocalityUnlocked
                | K::SlotOnline { .. } => {}
            }
        }
        // Close instances and reservations still open at the horizon
        // (truncated traces, e.g. --stop-after runs).
        let open_slots: Vec<usize> = self.open_run.keys().copied().collect();
        for slot in open_slots {
            self.close_run(slot, horizon);
        }
        let open_slots: Vec<usize> = self.open_reservation.keys().copied().collect();
        for slot in open_slots {
            self.close_reservation(slot, horizon);
        }

        let jobs = std::mem::take(&mut self.jobs)
            .into_iter()
            .map(|(job, scratch)| {
                let running = union(scratch.instances.iter().map(|(iv, _)| *iv).collect());
                let lifetime = Interval {
                    start: scratch.submitted,
                    end: scratch.completed.unwrap_or(horizon),
                };
                let waiting = subtract(lifetime, &running);
                JobTimeline {
                    job,
                    name: scratch.name,
                    priority: scratch.priority,
                    submitted: scratch.submitted,
                    completed: scratch.completed,
                    stages: scratch.stages.into_values().collect(),
                    instances: scratch.instances,
                    running,
                    reserved_idle: union(scratch.reserved),
                    waiting,
                }
            })
            .collect();
        Timeline { slots: self.slots, horizon, jobs, slot_segments: self.segments }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_dag::Priority;
    use ssr_trace::StageMeta;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn iv(a: f64, b: f64) -> Interval {
        Interval { start: t(a), end: t(b) }
    }

    /// A hand-written two-stage run on a 2-slot cluster: stage 0 (2 tasks)
    /// runs 0..2 on both slots, slot 1 is then reserved until stage 1's
    /// single task consumes it at t=3 and finishes at t=5.
    fn two_stage_trace() -> Trace {
        use TraceEventKind as K;
        let job = JobId::new(0);
        let s0 = StageId::new(0);
        let s1 = StageId::new(1);
        let events = vec![
            TraceEvent::new(
                t(0.0),
                K::JobSubmitted {
                    job,
                    name: "fg".into(),
                    priority: Priority::new(10),
                    stages: vec![
                        StageMeta { tasks: 2, parents: vec![] },
                        StageMeta { tasks: 1, parents: vec![s0] },
                    ],
                },
            ),
            TraceEvent::new(t(0.0), K::OfferRoundStarted { free: 2, running: 0, reserved: 0 }),
            TraceEvent::new(
                t(0.0),
                K::TaskLaunched { slot: 0, job, stage: s0, partition: 0, attempt: 0, level: "ANY", speculative: false, warm: false },
            ),
            TraceEvent::new(
                t(0.0),
                K::TaskLaunched { slot: 1, job, stage: s0, partition: 1, attempt: 0, level: "ANY", speculative: false, warm: false },
            ),
            TraceEvent::new(t(0.0), K::OfferRoundEnded { assignments: 2 }),
            TraceEvent::new(
                t(2.0),
                K::TaskFinished { slot: 1, job, stage: s0, partition: 1, attempt: 0, duration_secs: 2.0 },
            ),
            TraceEvent::new(
                t(2.0),
                K::ReservationGranted { slot: 1, job, priority: Priority::new(10), stage: Some(s1), deadline_secs: None },
            ),
            TraceEvent::new(
                t(2.5),
                K::TaskFinished { slot: 0, job, stage: s0, partition: 0, attempt: 0, duration_secs: 2.5 },
            ),
            TraceEvent::new(t(2.5), K::StageCompleted { job, stage: s0 }),
            TraceEvent::new(t(2.5), K::BarrierCleared { job, stage: s1 }),
            TraceEvent::new(
                t(3.0),
                K::TaskLaunched { slot: 1, job, stage: s1, partition: 0, attempt: 0, level: "ANY", speculative: false, warm: false },
            ),
            TraceEvent::new(
                t(5.0),
                K::TaskFinished { slot: 1, job, stage: s1, partition: 0, attempt: 0, duration_secs: 2.0 },
            ),
            TraceEvent::new(t(5.0), K::StageCompleted { job, stage: s1 }),
            TraceEvent::new(t(5.0), K::JobCompleted { job }),
        ];
        Trace { schema_version: 2, events }
    }

    #[test]
    fn interval_union_and_subtract() {
        let u = union(vec![iv(3.0, 4.0), iv(0.0, 2.0), iv(1.0, 2.5), iv(4.0, 4.0)]);
        assert_eq!(u, vec![iv(0.0, 2.5), iv(3.0, 4.0)]);
        assert_eq!(subtract(iv(0.0, 5.0), &u), vec![iv(2.5, 3.0), iv(4.0, 5.0)]);
        assert_eq!(subtract(iv(1.0, 2.0), &u), vec![]);
    }

    #[test]
    fn reconstructs_two_stage_run() {
        let tl = Timeline::reconstruct(&two_stage_trace());
        assert_eq!(tl.slots, 2);
        assert_eq!(tl.horizon, t(5.0));
        assert_eq!(tl.jobs.len(), 1);
        let job = &tl.jobs[0];
        assert_eq!(job.name, "fg");
        assert_eq!(job.jct_secs(), Some(5.0));
        // Running: both slots 0..2.5 merged with slot 1's 3..5.
        assert_eq!(job.running, vec![iv(0.0, 2.5), iv(3.0, 5.0)]);
        // Reserved-idle: slot 1 from the grant at 2.0 until consumed at 3.0.
        assert_eq!(job.reserved_idle, vec![iv(2.0, 3.0)]);
        // Waiting: the barrier gap.
        assert_eq!(job.waiting, vec![iv(2.5, 3.0)]);
        assert!((total_secs(&job.running) - 4.5).abs() < 1e-9);
        // Slot states at probe points.
        assert_eq!(tl.slot_state(1, t(1.0)), SlotState::Running { job: job.job, speculative: false });
        assert_eq!(tl.slot_state(1, t(2.2)), SlotState::Reserved(job.job));
        assert_eq!(tl.slot_state(0, t(3.0)), SlotState::Free);
        assert_eq!(tl.occupancy(t(2.2)), (0, 1, 1));
        // Stage marks.
        assert_eq!(job.stages.len(), 2);
        assert_eq!(job.stages[0].first_launch, Some(t(0.0)));
        assert_eq!(job.stages[0].completed, Some(t(2.5)));
        assert_eq!(job.stages[1].runnable, t(2.5));
        assert_eq!(job.stages[1].first_launch, Some(t(3.0)));
    }

    #[test]
    fn critical_path_walks_latest_parents() {
        let tl = Timeline::reconstruct(&two_stage_trace());
        let path = tl.jobs[0].critical_path().expect("v2 trace has a path");
        let stages: Vec<u32> = path.iter().map(|h| h.stage.as_u32()).collect();
        assert_eq!(stages, vec![0, 1]);
        assert_eq!(path[1].completed, t(5.0));
    }

    #[test]
    fn gantt_is_fixed_width_and_stable() {
        let tl = Timeline::reconstruct(&two_stage_trace());
        let a = tl.render_gantt(20);
        let b = tl.render_gantt(20);
        assert_eq!(a, b);
        let slot_rows: Vec<&str> = a.lines().filter(|l| l.starts_with("slot")).collect();
        assert_eq!(slot_rows.len(), 2);
        for row in &slot_rows {
            let body = row.split('|').nth(1).expect("framed row");
            assert_eq!(body.chars().count(), 20);
        }
        // Slot 1 shows run, reserved-idle, then the stage-1 task.
        assert!(slot_rows[1].contains('A'));
        assert!(slot_rows[1].contains('='));
        // The per-job lane shows parallelism 2 during stage 0.
        let lane = a.lines().find(|l| l.starts_with("run ")).expect("job lane");
        assert!(lane.contains('2'), "{lane}");
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let tl = Timeline::reconstruct(&Trace { schema_version: 2, events: vec![] });
        assert_eq!(tl.slots, 0);
        assert!(tl.render_gantt(40).contains("empty trace"));
    }
}
