//! Job-ordering policies: who gets the next slot.
//!
//! The paper enforces isolation under two regimes: strict **priority
//! scheduling** (foreground jobs outrank background jobs) and **fair
//! sharing**, which it casts as *dynamic priority scheduling* — the job
//! with the least allocation is served first. Both are expressed through
//! the [`JobOrder`] trait consulted on every resource offer round.

use std::fmt;

use ssr_dag::{JobId, Priority};
use ssr_simcore::SimTime;

/// A point-in-time view of one schedulable job, used to pick the next job
/// to serve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSnapshot {
    /// The job.
    pub id: JobId,
    /// Its static scheduling priority.
    pub priority: Priority,
    /// Its submission time.
    pub arrival: SimTime,
    /// Slots currently running its tasks (for fair sharing).
    pub running_slots: usize,
    /// Fair-share weight (≥ 1.0; larger earns a larger share).
    pub weight: f64,
}

/// A policy that picks which job receives the next available slot.
///
/// Implementations must be deterministic: ties must be broken by a total
/// order (we use job id) so simulations replay exactly.
pub trait JobOrder: fmt::Debug {
    /// Picks the next job to serve from `candidates` (jobs with at least
    /// one pending task), or `None` if empty.
    fn select(&self, candidates: &[JobSnapshot]) -> Option<JobId>;

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Strict priority scheduling with FIFO tie-breaking — the regime of the
/// paper's §II and §VI-A cluster experiments: the highest-priority job is
/// always served first; among equals, the earliest arrival wins.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoPriority;

impl JobOrder for FifoPriority {
    fn select(&self, candidates: &[JobSnapshot]) -> Option<JobId> {
        candidates
            .iter()
            .min_by(|a, b| {
                b.priority
                    .cmp(&a.priority) // higher priority first
                    .then(a.arrival.cmp(&b.arrival))
                    .then(a.id.cmp(&b.id))
            })
            .map(|s| s.id)
    }

    fn name(&self) -> &'static str {
        "fifo-priority"
    }
}

/// Pure FIFO: earliest arrival first, ignoring priorities.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl JobOrder for Fifo {
    fn select(&self, candidates: &[JobSnapshot]) -> Option<JobId> {
        candidates
            .iter()
            .min_by(|a, b| a.arrival.cmp(&b.arrival).then(a.id.cmp(&b.id)))
            .map(|s| s.id)
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Max-min fair sharing via dynamic priority: the job with the smallest
/// weighted running allocation is served first (the Spark Fair Scheduler
/// behaviour used in the paper's Fig. 13 experiment).
#[derive(Debug, Clone, Copy, Default)]
pub struct Fair;

impl JobOrder for Fair {
    fn select(&self, candidates: &[JobSnapshot]) -> Option<JobId> {
        candidates
            .iter()
            .min_by(|a, b| {
                let sa = a.running_slots as f64 / a.weight.max(1e-9);
                let sb = b.running_slots as f64 / b.weight.max(1e-9);
                sa.total_cmp(&sb)
                    .then(a.arrival.cmp(&b.arrival))
                    .then(a.id.cmp(&b.id))
            })
            .map(|s| s.id)
    }

    fn name(&self) -> &'static str {
        "fair"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(id: u64, prio: i32, arrival: u64, running: usize) -> JobSnapshot {
        JobSnapshot {
            id: JobId::new(id),
            priority: Priority::new(prio),
            arrival: SimTime::from_secs(arrival),
            running_slots: running,
            weight: 1.0,
        }
    }

    #[test]
    fn empty_candidates_yield_none() {
        assert_eq!(FifoPriority.select(&[]), None);
        assert_eq!(Fair.select(&[]), None);
        assert_eq!(Fifo.select(&[]), None);
    }

    #[test]
    fn priority_wins_over_arrival() {
        let c = [snap(1, 0, 0, 0), snap(2, 10, 5, 0)];
        assert_eq!(FifoPriority.select(&c), Some(JobId::new(2)));
    }

    #[test]
    fn equal_priority_falls_back_to_fifo() {
        let c = [snap(1, 5, 10, 0), snap(2, 5, 3, 0)];
        assert_eq!(FifoPriority.select(&c), Some(JobId::new(2)));
    }

    #[test]
    fn equal_everything_breaks_by_id() {
        let c = [snap(7, 5, 3, 0), snap(2, 5, 3, 0)];
        assert_eq!(FifoPriority.select(&c), Some(JobId::new(2)));
        assert_eq!(Fair.select(&c), Some(JobId::new(2)));
    }

    #[test]
    fn fifo_ignores_priority() {
        let c = [snap(1, 0, 1, 0), snap(2, 99, 2, 0)];
        assert_eq!(Fifo.select(&c), Some(JobId::new(1)));
    }

    #[test]
    fn fair_serves_least_allocated() {
        let c = [snap(1, 0, 0, 8), snap(2, 0, 5, 2)];
        assert_eq!(Fair.select(&c), Some(JobId::new(2)));
    }

    #[test]
    fn fair_respects_weights() {
        // Job 1 runs 4 slots at weight 4 (share 1); job 2 runs 2 at weight 1
        // (share 2) -> job 1 is more underserved.
        let mut a = snap(1, 0, 0, 4);
        a.weight = 4.0;
        let b = snap(2, 0, 0, 2);
        assert_eq!(Fair.select(&[a, b]), Some(JobId::new(1)));
    }

    #[test]
    fn fair_converges_to_even_split() {
        // Simulate granting slots one at a time; counts should stay within
        // one of each other.
        let mut running = [0usize, 0usize];
        for _ in 0..100 {
            let c = [snap(1, 0, 0, running[0]), snap(2, 0, 0, running[1])];
            let winner = Fair.select(&c).unwrap();
            running[(winner.as_u64() - 1) as usize] += 1;
            assert!(running[0].abs_diff(running[1]) <= 1);
        }
        assert_eq!(running[0] + running[1], 100);
    }

    #[test]
    fn names() {
        assert_eq!(FifoPriority.name(), "fifo-priority");
        assert_eq!(Fair.name(), "fair");
        assert_eq!(Fifo.name(), "fifo");
    }
}
