//! Progress-based speculative execution — the *status quo* straggler
//! mitigation the paper compares §IV-C against.
//!
//! Production frameworks (Spark speculation, Hadoop LATE, Mantri) watch
//! each task's progress and, once a configurable fraction of a phase has
//! completed, launch an extra copy of any task running far longer than the
//! completed median — on **any** available slot, which generally means a
//! remote read and a cold JVM. The paper's §IV-C strategy differs in all
//! three respects it claims as advantages: no progress estimator, no extra
//! slots (only the job's own reserved ones), and warm copies.
//!
//! This module reproduces the status quo so the comparison is measurable;
//! see the `ablation` harness in `ssr-bench`.

/// Configuration of progress-based speculation, mirroring Spark's
/// `spark.speculation.*` knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeculationConfig {
    /// Fraction of a phase that must have completed before any copy is
    /// considered (`spark.speculation.quantile`, default 0.75).
    pub quantile: f64,
    /// A task is a straggler once its elapsed time exceeds
    /// `multiplier × median(completed durations)`
    /// (`spark.speculation.multiplier`, default 1.5).
    pub multiplier: f64,
}

impl SpeculationConfig {
    /// Spark's default configuration (quantile 0.75, multiplier 1.5).
    pub fn spark_defaults() -> Self {
        SpeculationConfig { quantile: 0.75, multiplier: 1.5 }
    }

    /// Sets the completion quantile, clamped into `[0, 1]`. A quantile
    /// above 1 can never be reached (`completed/parallelism` tops out at 1
    /// exactly when every task has finished), which would silently disable
    /// speculation; below 0 is meaningless. `NaN` falls back to the Spark
    /// default (0.75).
    pub fn with_quantile(mut self, quantile: f64) -> Self {
        self.quantile = if quantile.is_nan() {
            SpeculationConfig::spark_defaults().quantile
        } else {
            quantile.clamp(0.0, 1.0)
        };
        self
    }

    /// Sets the elapsed-over-median multiplier, clamped to ≥ 1. A
    /// multiplier below 1 would brand tasks *faster* than the completed
    /// median as stragglers and copy most of the phase. `NaN` falls back to
    /// the Spark default (1.5).
    pub fn with_multiplier(mut self, multiplier: f64) -> Self {
        self.multiplier = if multiplier.is_nan() {
            SpeculationConfig::spark_defaults().multiplier
        } else if multiplier < 1.0 {
            1.0
        } else {
            multiplier
        };
        self
    }

    /// The elapsed-time threshold (seconds) beyond which a running task is
    /// deemed a straggler, given the phase's completed durations; `None`
    /// while too little of the phase has finished.
    pub fn threshold(&self, completed: &[f64], parallelism: u32) -> Option<f64> {
        if parallelism == 0 {
            return None;
        }
        let fraction = completed.len() as f64 / parallelism as f64;
        if fraction < self.quantile || completed.is_empty() {
            return None;
        }
        let median = ssr_simcore::stats::percentile(completed, 0.5);
        Some(self.multiplier * median)
    }
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        SpeculationConfig::spark_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_spark() {
        let c = SpeculationConfig::spark_defaults();
        assert_eq!(c.quantile, 0.75);
        assert_eq!(c.multiplier, 1.5);
        assert_eq!(SpeculationConfig::default(), c);
    }

    #[test]
    fn threshold_requires_quantile() {
        let c = SpeculationConfig::spark_defaults();
        // 2 of 4 completed < 0.75 quantile.
        assert_eq!(c.threshold(&[1.0, 2.0], 4), None);
        // 3 of 4 completed >= 0.75: median 2.0 x 1.5 = 3.0.
        assert_eq!(c.threshold(&[1.0, 2.0, 3.0], 4), Some(3.0));
    }

    #[test]
    fn threshold_empty_and_zero_parallelism() {
        let c = SpeculationConfig::spark_defaults().with_quantile(0.0);
        assert_eq!(c.threshold(&[], 4), None);
        assert_eq!(c.threshold(&[1.0], 0), None);
    }

    #[test]
    fn builders_apply() {
        let c = SpeculationConfig::spark_defaults().with_quantile(0.5).with_multiplier(2.0);
        // 2 of 4 >= 0.5 quantile; median 1.5 x 2.0 = 3.0.
        assert_eq!(c.threshold(&[1.0, 2.0], 4), Some(3.0));
    }

    #[test]
    fn quantile_clamps_to_unit_interval() {
        assert_eq!(SpeculationConfig::spark_defaults().with_quantile(1.5).quantile, 1.0);
        assert_eq!(SpeculationConfig::spark_defaults().with_quantile(-0.5).quantile, 0.0);
        // Boundaries pass through untouched.
        assert_eq!(SpeculationConfig::spark_defaults().with_quantile(0.0).quantile, 0.0);
        assert_eq!(SpeculationConfig::spark_defaults().with_quantile(1.0).quantile, 1.0);
        // A clamped quantile of 1.0 still triggers once the phase is done.
        let c = SpeculationConfig::spark_defaults().with_quantile(7.0);
        assert_eq!(c.threshold(&[1.0, 2.0, 3.0], 4), None);
        assert_eq!(c.threshold(&[1.0, 2.0, 3.0, 4.0], 4), Some(1.5 * 2.5));
    }

    #[test]
    fn multiplier_clamps_to_at_least_one() {
        assert_eq!(SpeculationConfig::spark_defaults().with_multiplier(0.5).multiplier, 1.0);
        assert_eq!(SpeculationConfig::spark_defaults().with_multiplier(-3.0).multiplier, 1.0);
        assert_eq!(SpeculationConfig::spark_defaults().with_multiplier(1.0).multiplier, 1.0);
        assert_eq!(SpeculationConfig::spark_defaults().with_multiplier(4.0).multiplier, 4.0);
        // Sub-1 multipliers no longer brand median-speed tasks stragglers.
        let c = SpeculationConfig::spark_defaults().with_quantile(0.5).with_multiplier(0.1);
        assert_eq!(c.threshold(&[2.0, 2.0], 4), Some(2.0));
    }

    #[test]
    fn nan_inputs_fall_back_to_spark_defaults() {
        let c = SpeculationConfig::spark_defaults()
            .with_quantile(f64::NAN)
            .with_multiplier(f64::NAN);
        assert_eq!(c, SpeculationConfig::spark_defaults());
        // Infinities are finite-clamped, not defaulted.
        assert_eq!(
            SpeculationConfig::spark_defaults().with_quantile(f64::INFINITY).quantile,
            1.0
        );
        assert_eq!(
            SpeculationConfig::spark_defaults()
                .with_multiplier(f64::NEG_INFINITY)
                .multiplier,
            1.0
        );
    }
}
