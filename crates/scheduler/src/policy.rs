//! The reservation-policy seam (the paper's *ApprovalLogic* plus
//! `HandleTaskCompletion`) and the §III-A naive baselines.
//!
//! A [`ReservationPolicy`] decides, at every task completion, whether the
//! freed slot is **released** to the cluster or **reserved** for the job's
//! downstream computation, and — at every resource offer — whether an
//! assignment onto a reserved slot is **approved**. The paper's
//! contribution, speculative slot reservation (Algorithm 1), implements
//! this trait in the `ssr-core` crate; this module provides the trait, the
//! context handed to policies, and three baselines:
//!
//! * [`WorkConserving`] — the status quo: never reserve anything,
//! * [`TimeoutReservation`] — Spark dynamic-allocation style: blindly hold
//!   every freed slot for a fixed timeout,
//! * [`StaticReservation`] — Mesos/Borg style: a fixed pool of slots
//!   permanently set aside for a priority class.

use std::fmt;

use ssr_cluster::{Reservation, SlotId, SlotPool};
use ssr_dag::{JobId, Priority, StageId, TaskId};
use ssr_simcore::{SimDuration, SimTime};

use crate::jobs::Jobs;

/// What to do with a slot freed by a completed task (Algorithm 1, lines
/// 2–17 decide between these).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotDisposition {
    /// Return the slot to the cluster (work conservation).
    Release,
    /// Hold the slot under the given reservation.
    Reserve(Reservation),
}

/// A request to opportunistically grab extra slots for an upcoming phase
/// (Algorithm 1, lines 14–17: pre-reservation when the downstream
/// parallelism exceeds the current one).
///
/// Requests are not served immediately: the scheduler queues them (one
/// per `(job, stage)`, later requests overwrite earlier ones) and fills
/// them from free slots at the start of every offer round and after
/// completions. When several jobs have outstanding requests, slots go to
/// the **highest-priority** request first; ties prefer the earlier
/// `deadline` (a request with no deadline sorts after any dated one),
/// then the smaller `(job, stage)` id. A partially-filled request stays
/// queued and keeps its place in that order, so a low-priority job can
/// never starve a later-arriving high-priority one out of pre-reserved
/// slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreReserveRequest {
    /// The requesting job.
    pub job: JobId,
    /// The downstream phase the slots are for.
    pub stage: StageId,
    /// Priority the pre-reserved slots inherit.
    pub priority: Priority,
    /// How many additional slots to acquire (the paper's `n - m`).
    pub extra: u32,
    /// Optional expiry for the pre-reservations.
    pub deadline: Option<SimTime>,
    /// Minimum slot size required (§III-C "right size"; 1 for homogeneous
    /// clusters).
    pub min_size: u32,
}

/// Read-only scheduler state handed to policy callbacks.
#[derive(Debug)]
pub struct PolicyCtx<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The slot pool (states, reservations, indexes).
    pub slots: &'a SlotPool,
    /// All admitted jobs.
    pub jobs: &'a Jobs,
}

impl PolicyCtx<'_> {
    /// Number of slots currently reserved for `job`.
    pub fn reserved_count(&self, job: JobId) -> usize {
        self.slots.reserved_for(job).count()
    }
}

/// The pluggable reservation policy — the seam the paper adds to Spark's
/// `TaskSetManager` / `TaskSchedulerImpl` (§V).
pub trait ReservationPolicy: fmt::Debug {
    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Called when `task` completes (or a losing copy is killed), freeing
    /// `slot`; decides whether to release or reserve it. This is the
    /// paper's `HandleTaskCompletion` (Algorithm 1, lines 1–17).
    fn on_task_completed(
        &mut self,
        ctx: &PolicyCtx<'_>,
        task: TaskId,
        slot: SlotId,
    ) -> SlotDisposition;

    /// The ApprovalLogic (Algorithm 1, lines 18–22): may a task of `job`
    /// (at `priority`) be assigned onto a slot held by `reservation`?
    ///
    /// The default reproduces the paper's rule: the reservation is
    /// respected by jobs with lower **or equal** priority, but can be
    /// overridden by strictly higher priorities — and the reserving job
    /// itself may always use its own slots.
    fn approve(
        &self,
        ctx: &PolicyCtx<'_>,
        reservation: &Reservation,
        job: JobId,
        priority: Priority,
    ) -> bool {
        let _ = ctx;
        job == reservation.job() || priority > reservation.priority()
    }

    /// `true` iff this policy's [`approve`](Self::approve) verdict is a
    /// pure function of the candidate's `(job, priority)` and the
    /// reservation's `(job, priority)` — it never consults `ctx`, the
    /// specific slot, or any mutable policy state, and the owning job is
    /// always approved on its own reservations.
    ///
    /// Declaring this lets the scheduler evaluate ApprovalLogic once per
    /// `(owner, priority)` reservation *group* instead of once per
    /// reserved slot, and to skip candidates that cannot match any group
    /// when no free slots remain. The default is conservative (`false`:
    /// one `approve` call per slot); a policy overriding [`approve`] with
    /// slot- or time-dependent logic must leave it that way.
    fn approval_is_priority_based(&self) -> bool {
        false
    }

    /// Called after `task`'s completion was processed; returns a
    /// pre-reservation request if the policy wants extra slots for the
    /// downstream phase (Algorithm 1, lines 14–17). See
    /// [`PreReserveRequest`] for how queued requests compete for free
    /// slots (priority-ordered fill).
    fn prereserve(&mut self, ctx: &PolicyCtx<'_>, task: TaskId) -> Option<PreReserveRequest> {
        let _ = (ctx, task);
        None
    }

    /// `true` if reserved-yet-idle slots should run extra copies of the
    /// phase's ongoing tasks (§IV-C straggler mitigation).
    fn mitigate_stragglers(&self) -> bool {
        false
    }

    /// A fixed slot pool to reserve at scheduler start: `(count,
    /// class_priority)`. Only [`StaticReservation`] uses this.
    fn initial_static_pool(&self, total_slots: u32) -> Option<(u32, Priority)> {
        let _ = total_slots;
        None
    }

    /// Informs the policy which slots form its static pool.
    fn static_pool_assigned(&mut self, slots: &[SlotId]) {
        let _ = slots;
    }

    /// Called when a phase of `job` clears its barrier.
    fn on_stage_ready(&mut self, ctx: &PolicyCtx<'_>, job: JobId, stage: StageId) {
        let _ = (ctx, job, stage);
    }

    /// Called when `job`'s final phase completes.
    fn on_job_completed(&mut self, ctx: &PolicyCtx<'_>, job: JobId) {
        let _ = (ctx, job);
    }
}

/// The sentinel "job" that owns a static reservation pool; no real job
/// ever receives this id.
pub const STATIC_POOL_JOB: JobId = JobId::new(u64::MAX);

/// The status-quo baseline: strictly work conserving, never reserves a
/// slot. This is the configuration under which the paper demonstrates the
/// isolation failure (§II-B).
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkConserving;

impl ReservationPolicy for WorkConserving {
    fn name(&self) -> &'static str {
        "work-conserving"
    }

    fn approval_is_priority_based(&self) -> bool {
        true // uses the default (pure) approval rule
    }

    fn on_task_completed(
        &mut self,
        _ctx: &PolicyCtx<'_>,
        _task: TaskId,
        _slot: SlotId,
    ) -> SlotDisposition {
        SlotDisposition::Release
    }
}

/// Timeout-based reservation (§III-A.2, Spark dynamic allocation): every
/// freed slot is *blindly* held for the reserving job for a fixed timeout —
/// even when no downstream computation exists.
#[derive(Debug, Clone, Copy)]
pub struct TimeoutReservation {
    timeout: SimDuration,
}

impl TimeoutReservation {
    /// Creates the policy with the given hold timeout.
    pub fn new(timeout: SimDuration) -> Self {
        TimeoutReservation { timeout }
    }

    /// The hold timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }
}

impl ReservationPolicy for TimeoutReservation {
    fn name(&self) -> &'static str {
        "timeout-reservation"
    }

    fn approval_is_priority_based(&self) -> bool {
        true // uses the default (pure) approval rule
    }

    fn on_task_completed(
        &mut self,
        ctx: &PolicyCtx<'_>,
        task: TaskId,
        _slot: SlotId,
    ) -> SlotDisposition {
        let priority = ctx
            .jobs
            .get(task.job)
            .map(|j| j.priority())
            .unwrap_or_default();
        // Blind: reserves even after the final phase (the inefficiency the
        // paper calls out).
        SlotDisposition::Reserve(
            Reservation::new(task.job, priority).with_deadline(ctx.now + self.timeout),
        )
    }
}

/// Static slot reservation (§III-A.1, Mesos/Borg): `pool` slots are
/// permanently set aside for jobs of priority ≥ `class`; the pool neither
/// grows under load nor shrinks when idle.
#[derive(Debug, Clone)]
pub struct StaticReservation {
    pool: u32,
    class: Priority,
    pool_slots: Vec<SlotId>,
}

impl StaticReservation {
    /// Reserves `pool` slots for jobs at or above `class`.
    pub fn new(pool: u32, class: Priority) -> Self {
        StaticReservation { pool, class, pool_slots: Vec::new() }
    }

    /// The slots forming the pool (set at scheduler start).
    pub fn pool_slots(&self) -> &[SlotId] {
        &self.pool_slots
    }
}

impl ReservationPolicy for StaticReservation {
    fn name(&self) -> &'static str {
        "static-reservation"
    }

    fn approval_is_priority_based(&self) -> bool {
        // The pool-sentinel branch still only compares priorities against
        // the reservation's owner and priority — pure in the same sense.
        true
    }

    fn initial_static_pool(&self, total_slots: u32) -> Option<(u32, Priority)> {
        Some((self.pool.min(total_slots), self.class))
    }

    fn static_pool_assigned(&mut self, slots: &[SlotId]) {
        self.pool_slots = slots.to_vec();
    }

    fn on_task_completed(
        &mut self,
        ctx: &PolicyCtx<'_>,
        _task: TaskId,
        slot: SlotId,
    ) -> SlotDisposition {
        if self.pool_slots.contains(&slot) {
            // Restore the pool reservation once the class task vacates.
            let _ = ctx;
            SlotDisposition::Reserve(Reservation::new(STATIC_POOL_JOB, self.class))
        } else {
            SlotDisposition::Release
        }
    }

    fn approve(
        &self,
        _ctx: &PolicyCtx<'_>,
        reservation: &Reservation,
        job: JobId,
        priority: Priority,
    ) -> bool {
        if reservation.job() == STATIC_POOL_JOB {
            // Pool slots serve the whole class (>= class priority).
            priority >= reservation.priority()
        } else {
            job == reservation.job() || priority > reservation.priority()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_cluster::ClusterSpec;
    use ssr_dag::JobSpecBuilder;
    use ssr_simcore::dist::constant;

    fn ctx_fixture() -> (SlotPool, Jobs) {
        let slots = SlotPool::new(&ClusterSpec::new(2, 2).unwrap());
        let mut jobs = Jobs::new();
        let spec = JobSpecBuilder::new("j")
            .priority(Priority::new(5))
            .stage("a", 2, constant(1.0))
            .stage("b", 2, constant(1.0))
            .chain()
            .build()
            .unwrap();
        jobs.insert(crate::jobs::JobState::new(JobId::new(1), spec, SimTime::ZERO));
        (slots, jobs)
    }

    fn task() -> TaskId {
        TaskId::new(JobId::new(1), StageId::new(0), 0)
    }

    #[test]
    fn work_conserving_always_releases() {
        let (slots, jobs) = ctx_fixture();
        let ctx = PolicyCtx { now: SimTime::ZERO, slots: &slots, jobs: &jobs };
        let mut p = WorkConserving;
        assert_eq!(p.on_task_completed(&ctx, task(), SlotId::new(0)), SlotDisposition::Release);
        assert!(!p.mitigate_stragglers());
        assert_eq!(p.name(), "work-conserving");
    }

    #[test]
    fn default_approval_rule() {
        let (slots, jobs) = ctx_fixture();
        let ctx = PolicyCtx { now: SimTime::ZERO, slots: &slots, jobs: &jobs };
        let p = WorkConserving;
        let r = Reservation::new(JobId::new(1), Priority::new(5));
        // Owner may always use its own reservation.
        assert!(p.approve(&ctx, &r, JobId::new(1), Priority::new(5)));
        // Equal priority of another job is refused (Algorithm 1: >=).
        assert!(!p.approve(&ctx, &r, JobId::new(2), Priority::new(5)));
        // Lower priority refused, strictly higher approved.
        assert!(!p.approve(&ctx, &r, JobId::new(2), Priority::new(4)));
        assert!(p.approve(&ctx, &r, JobId::new(2), Priority::new(6)));
    }

    #[test]
    fn timeout_policy_reserves_blindly_with_deadline() {
        let (slots, jobs) = ctx_fixture();
        let now = SimTime::from_secs(10);
        let ctx = PolicyCtx { now, slots: &slots, jobs: &jobs };
        let mut p = TimeoutReservation::new(SimDuration::from_secs(60));
        assert_eq!(p.timeout(), SimDuration::from_secs(60));
        match p.on_task_completed(&ctx, task(), SlotId::new(0)) {
            SlotDisposition::Reserve(r) => {
                assert_eq!(r.job(), JobId::new(1));
                assert_eq!(r.priority(), Priority::new(5));
                assert_eq!(r.deadline(), Some(SimTime::from_secs(70)));
            }
            other => panic!("expected reservation, got {other:?}"),
        }
        // Blind even for the final phase.
        let final_task = TaskId::new(JobId::new(1), StageId::new(1), 0);
        assert!(matches!(
            p.on_task_completed(&ctx, final_task, SlotId::new(0)),
            SlotDisposition::Reserve(_)
        ));
    }

    #[test]
    fn static_pool_sizing_and_membership() {
        let mut p = StaticReservation::new(3, Priority::new(10));
        assert_eq!(p.initial_static_pool(100), Some((3, Priority::new(10))));
        assert_eq!(p.initial_static_pool(2), Some((2, Priority::new(10)))); // clamped
        p.static_pool_assigned(&[SlotId::new(0), SlotId::new(1)]);
        assert_eq!(p.pool_slots(), &[SlotId::new(0), SlotId::new(1)]);
    }

    #[test]
    fn static_pool_restores_reservation_on_completion() {
        let (slots, jobs) = ctx_fixture();
        let ctx = PolicyCtx { now: SimTime::ZERO, slots: &slots, jobs: &jobs };
        let mut p = StaticReservation::new(2, Priority::new(10));
        p.static_pool_assigned(&[SlotId::new(0)]);
        match p.on_task_completed(&ctx, task(), SlotId::new(0)) {
            SlotDisposition::Reserve(r) => {
                assert_eq!(r.job(), STATIC_POOL_JOB);
                assert_eq!(r.priority(), Priority::new(10));
                assert_eq!(r.deadline(), None);
            }
            other => panic!("expected pool reservation, got {other:?}"),
        }
        // Non-pool slots are released normally.
        assert_eq!(p.on_task_completed(&ctx, task(), SlotId::new(3)), SlotDisposition::Release);
    }

    #[test]
    fn static_pool_approves_whole_class() {
        let (slots, jobs) = ctx_fixture();
        let ctx = PolicyCtx { now: SimTime::ZERO, slots: &slots, jobs: &jobs };
        let p = StaticReservation::new(2, Priority::new(10));
        let pool_r = Reservation::new(STATIC_POOL_JOB, Priority::new(10));
        assert!(p.approve(&ctx, &pool_r, JobId::new(1), Priority::new(10)));
        assert!(p.approve(&ctx, &pool_r, JobId::new(2), Priority::new(11)));
        assert!(!p.approve(&ctx, &pool_r, JobId::new(2), Priority::new(9)));
        // Ordinary reservations keep the default rule.
        let r = Reservation::new(JobId::new(1), Priority::new(5));
        assert!(!p.approve(&ctx, &r, JobId::new(2), Priority::new(5)));
    }

    #[test]
    fn baselines_declare_priority_based_approval() {
        assert!(WorkConserving.approval_is_priority_based());
        assert!(TimeoutReservation::new(SimDuration::from_secs(1)).approval_is_priority_based());
        assert!(StaticReservation::new(1, Priority::new(1)).approval_is_priority_based());
    }

    #[test]
    fn reserved_count_helper() {
        let (mut slots, jobs) = ctx_fixture();
        slots
            .reserve(SlotId::new(0), Reservation::new(JobId::new(1), Priority::new(5)))
            .unwrap();
        slots
            .reserve(SlotId::new(1), Reservation::new(JobId::new(2), Priority::new(5)))
            .unwrap();
        let ctx = PolicyCtx { now: SimTime::ZERO, slots: &slots, jobs: &jobs };
        assert_eq!(ctx.reserved_count(JobId::new(1)), 1);
        assert_eq!(ctx.reserved_count(JobId::new(9)), 0);
    }
}
